#pragma once

/// \file snapshot.h
/// \brief Point-in-time state images that let recovery skip the WAL prefix
/// (DESIGN.md §9). A snapshot file captures the full application state after
/// applying every record up to and including a sequence number:
///   snap-<seq, 16 hex digits>.snap
/// File = 8-byte magic "EZTSNAP1" | u64 seq | u32 crc32(state) | u32 state_len
/// | state bytes (all integers little-endian). Snapshots are written to a
/// temporary file, fsynced, renamed into place, and the directory fsynced, so
/// a crash mid-write never damages an existing snapshot.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easytime::store {

/// One snapshot file found on disk.
struct SnapshotInfo {
  uint64_t seq = 0;  ///< state covers records with sequence <= seq
  std::string path;
};

/// A successfully loaded snapshot.
struct LoadedSnapshot {
  uint64_t seq = 0;
  std::string state;
  /// Newer snapshot files that failed validation and were skipped to reach
  /// this one (recovery falls back to the previous image, then replays more
  /// of the WAL).
  uint64_t corrupt_skipped = 0;
};

/// \brief Durably writes \p state as the snapshot covering sequence \p seq
/// (tmp file + fsync + rename + directory fsync). Fault point
/// "store.snapshot" fires before any byte is written.
easytime::Status WriteSnapshot(const std::string& dir, uint64_t seq,
                               std::string_view state);

/// Snapshot files in \p dir, sorted by ascending seq.
std::vector<SnapshotInfo> ListSnapshots(const std::string& dir);

/// \brief Loads the newest snapshot that passes magic/CRC validation,
/// deleting corrupt newer ones as it falls back. Returns NotFound when no
/// valid snapshot exists.
easytime::Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir);

/// \brief Deletes all but the newest \p keep snapshot files. Returns the seq
/// of the oldest retained snapshot (0 when fewer than \p keep exist — the
/// caller must not delete WAL segments in that case).
easytime::Result<uint64_t> PruneSnapshots(const std::string& dir, size_t keep);

}  // namespace easytime::store
