#pragma once

/// \file record_store.h
/// \brief Crash-safe record store = snapshot + WAL tail (DESIGN.md §9).
/// Callers append opaque payloads (typically JSON) and periodically Compact()
/// with a full-state image; Open() recovers the newest valid snapshot plus
/// every surviving WAL record after it, tolerating torn/corrupt tails.
///
/// Compaction protocol: write snap-<last_seq>.snap durably, prune to
/// keep_snapshots images, then delete WAL segments fully covered by the
/// OLDEST retained snapshot — never the newest — so a snapshot that later
/// turns out corrupt can still be rebuilt from the previous image + WAL.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "store/wal.h"

namespace easytime::store {

/// Tuning for one store instance.
struct RecordStoreOptions {
  /// Rotate WAL segments at this size.
  size_t segment_bytes = 1 << 20;
  /// fsync the WAL after every append (otherwise callers batch with Sync()).
  bool sync_every_append = false;
  /// Coalesce concurrent durable appends into one fsync per batch (see
  /// WalOptions::group_commit); only meaningful with sync_every_append.
  bool group_commit = false;
  size_t group_commit_max_batch = 64;
  uint32_t group_commit_max_delay_us = 0;
  /// Snapshot images retained by Compact(); must be >= 1. With the default 2,
  /// WAL segments are only deleted once a second snapshot exists, so a
  /// corrupt newest snapshot never loses data.
  size_t keep_snapshots = 2;
};

/// Everything Open() recovered, for the caller to rebuild its state:
/// apply \p snapshot (if \p has_snapshot), then each \p tail record in order.
struct RecordStoreRecovery {
  bool has_snapshot = false;
  std::string snapshot;       ///< newest valid snapshot state
  uint64_t snapshot_seq = 0;  ///< records <= this are inside the snapshot
  /// Surviving WAL records with seq > snapshot_seq, in sequence order.
  std::vector<std::pair<uint64_t, std::string>> tail;
  uint64_t last_seq = 0;
  uint64_t bytes_dropped = 0;      ///< torn/corrupt WAL suffix truncated
  uint64_t segments_dropped = 0;   ///< WAL segments deleted past a corruption
  uint64_t corrupt_snapshots = 0;  ///< newer snapshots skipped as invalid
};

/// \brief The durable store. Append/Sync/Compact are thread-safe with
/// respect to each other (the underlying WAL serializes appends; Compact
/// snapshots the state the caller passes in).
class RecordStore {
 public:
  /// Opens (creating \p dir if needed) and recovers the store; stray
  /// temporary files from an interrupted snapshot write are removed.
  static easytime::Result<std::unique_ptr<RecordStore>> Open(
      const std::string& dir, const RecordStoreOptions& options,
      RecordStoreRecovery* recovery = nullptr);

  /// Appends one record to the WAL, returning its sequence number.
  easytime::Result<uint64_t> Append(std::string_view payload);

  /// Durability point: fsync the active WAL segment.
  easytime::Status Sync();

  /// \brief Writes \p state as a snapshot covering everything appended so
  /// far, prunes old snapshots, and deletes WAL segments the retained
  /// snapshots make redundant. On success the append counter resets.
  easytime::Status Compact(std::string_view state);

  uint64_t last_seq() const { return wal_->last_seq(); }
  uint64_t snapshot_seq() const { return snapshot_seq_; }
  /// Appends since the last successful Compact() (or Open).
  uint64_t appends_since_compaction() const {
    return appends_since_compaction_;
  }
  const std::string& dir() const { return dir_; }

  /// Group-commit counters of the underlying WAL (for tests/benchmarks).
  WalGroupCommitStats group_commit_stats() const {
    return wal_->group_commit_stats();
  }

 private:
  RecordStore(std::string dir, RecordStoreOptions options,
              std::unique_ptr<Wal> wal, uint64_t snapshot_seq);

  const std::string dir_;
  const RecordStoreOptions options_;
  std::unique_ptr<Wal> wal_;
  std::atomic<uint64_t> snapshot_seq_{0};
  std::atomic<uint64_t> appends_since_compaction_{0};
};

}  // namespace easytime::store
