#include "store/crc32.h"

#include <array>

namespace easytime::store {

namespace {

// 8 KiB slice-by-8 tables, generated once at first use. Table 0 is the
// classic byte-at-a-time table; tables 1..7 extend it so the hot loop folds
// eight input bytes per iteration.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~seed;
  while (n >= 8) {
    // Fold the current CRC into the first four bytes, then index all eight
    // tables; byte order is fixed by construction, so this is endian-safe.
    uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                       static_cast<uint32_t>(p[1]) << 8 |
                       static_cast<uint32_t>(p[2]) << 16 |
                       static_cast<uint32_t>(p[3]) << 24);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  return ~c;
}

}  // namespace easytime::store
