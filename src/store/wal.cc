#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "store/crc32.h"

namespace easytime::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'E', 'Z', 'T', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = 16;  // magic + u64 start_seq
constexpr size_t kFrameBytes = 16;   // u32 len + u32 crc + u64 seq
constexpr size_t kMaxPayload = size_t{1} << 28;  // sanity bound per record

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

/// CRC of one record: the sequence number (little-endian) then the payload,
/// so a frame whose seq was bit-flipped fails validation too.
uint32_t RecordCrc(uint64_t seq, std::string_view payload) {
  std::string seq_le;
  seq_le.reserve(8);
  PutU64(&seq_le, seq);
  return Crc32(payload.data(), payload.size(), Crc32(seq_le.data(), 8));
}

std::string SegmentName(uint64_t start_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(start_seq));
  return buf;
}

bool ParseSegmentName(const std::string& name, uint64_t* start_seq) {
  if (name.size() != 4 + 16 + 4 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *start_seq = v;
  return true;
}

easytime::Status WriteFully(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return easytime::Status::IOError(std::string("wal write failed: ") +
                                       std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return easytime::Status::OK();
}

easytime::Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return easytime::Status::IOError("cannot open directory for fsync: " +
                                     dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return easytime::Status::IOError("directory fsync failed: " + dir);
  }
  return easytime::Status::OK();
}

easytime::Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return easytime::Status::IOError("cannot read " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return easytime::Status::IOError("read failed: " + path);
  return content;
}

}  // namespace

// ---------------------------------------------------------------------------
// Segment export/import (replication shipping, DESIGN.md §14)
// ---------------------------------------------------------------------------

easytime::Result<WalSegmentInfo> ValidateWalSegmentImage(
    std::string_view bytes, const std::string& file,
    const WalRecordFn& on_record) {
  uint64_t expect_start = 0;
  if (!ParseSegmentName(file, &expect_start)) {
    return easytime::Status::InvalidArgument(
        "not a WAL segment file name: " + file);
  }
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return easytime::Status::IOError("bad WAL segment magic in " + file);
  }
  if (GetU64(bytes.data() + 8) != expect_start) {
    return easytime::Status::IOError(
        "WAL segment header seq disagrees with file name " + file);
  }
  WalSegmentInfo info;
  info.file = file;
  info.start_seq = expect_start;
  info.file_bytes = bytes.size();
  size_t off = kHeaderBytes;
  size_t valid_end = off;
  uint64_t rec_expect = expect_start;
  while (off + kFrameBytes <= bytes.size()) {
    const char* p = bytes.data() + off;
    uint32_t len = GetU32(p);
    uint32_t crc = GetU32(p + 4);
    uint64_t seq = GetU64(p + 8);
    if (len > kMaxPayload || off + kFrameBytes + len > bytes.size()) break;
    std::string_view payload(p + kFrameBytes, len);
    if (RecordCrc(seq, payload) != crc) break;
    if (seq != rec_expect) break;
    if (on_record) on_record(seq, payload);
    ++info.records;
    rec_expect = seq + 1;
    off += kFrameBytes + len;
    valid_end = off;
  }
  info.last_seq = rec_expect > expect_start ? rec_expect - 1
                                            : expect_start - 1;
  info.valid_bytes = valid_end;
  info.torn = valid_end < bytes.size();
  return info;
}

easytime::Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir) {
  std::vector<WalSegmentInfo> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start = 0;
    if (!entry.is_regular_file() ||
        !ParseSegmentName(entry.path().filename().string(), &start)) {
      continue;
    }
    EASYTIME_ASSIGN_OR_RETURN(std::string content,
                              ReadWholeFile(entry.path().string()));
    auto info_or = ValidateWalSegmentImage(
        content, entry.path().filename().string());
    if (!info_or.ok()) return info_or.status();
    info_or->path = entry.path().string();
    out.push_back(std::move(*info_or));
  }
  if (ec) {
    return easytime::Status::IOError("cannot list WAL directory " + dir +
                                     ": " + ec.message());
  }
  std::sort(out.begin(), out.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.start_seq < b.start_seq;
            });
  return out;
}

easytime::Result<std::string> ExportWalSegment(const std::string& path,
                                               const std::string& file) {
  EASYTIME_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path));
  EASYTIME_ASSIGN_OR_RETURN(WalSegmentInfo info,
                            ValidateWalSegmentImage(content, file));
  content.resize(info.valid_bytes);  // a torn tail never ships
  return content;
}

easytime::Result<WalSegmentInfo> ImportWalSegment(const std::string& dir,
                                                  const std::string& file,
                                                  std::string_view bytes) {
  EASYTIME_ASSIGN_OR_RETURN(WalSegmentInfo info,
                            ValidateWalSegmentImage(bytes, file));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return easytime::Status::IOError("cannot create import directory " + dir +
                                     ": " + ec.message());
  }
  const std::string dest = dir + "/" + file;
  if (fs::exists(dest, ec)) {
    // Idempotent re-ship, but never backwards: a shorter image than what is
    // already durable would roll acknowledged records back on replay.
    EASYTIME_ASSIGN_OR_RETURN(std::string existing, ReadWholeFile(dest));
    auto have = ValidateWalSegmentImage(existing, file);
    if (have.ok() && have->valid_bytes > info.valid_bytes) {
      return easytime::Status::InvalidArgument(
          "stale segment re-ship for " + file + ": import has " +
          std::to_string(info.valid_bytes) + " valid bytes, follower has " +
          std::to_string(have->valid_bytes));
    }
  }
  const std::string tmp = dest + ".ship.tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return easytime::Status::IOError("cannot create " + tmp + ": " +
                                     std::strerror(errno));
  }
  easytime::Status st =
      WriteFully(fd, bytes.data(), static_cast<size_t>(info.valid_bytes));
  if (st.ok() && ::fsync(fd) != 0) {
    st = easytime::Status::IOError("fsync failed for " + tmp);
  }
  ::close(fd);
  if (!st.ok()) {
    fs::remove(tmp, ec);
    return st;
  }
  fs::rename(tmp, dest, ec);
  if (ec) {
    return easytime::Status::IOError("cannot rename " + tmp + ": " +
                                     ec.message());
  }
  EASYTIME_RETURN_IF_ERROR(SyncDir(dir));
  info.path = dest;
  info.file_bytes = info.valid_bytes;
  info.torn = false;
  return info;
}

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  if (committer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      committer_stop_ = true;
    }
    commit_cv_.notify_all();
    committer_.join();  // drains any pending batch before exiting
  }
  std::lock_guard<std::mutex> lock(mu_);
  CloseActiveLocked();
}

easytime::Result<std::unique_ptr<Wal>> Wal::Open(
    const std::string& dir, const WalOptions& options, uint64_t after_seq,
    const ReplayFn& replay, WalRecoveryStats* stats) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return easytime::Status::IOError("cannot create WAL directory " + dir +
                                     ": " + ec.message());
  }
  auto wal = std::unique_ptr<Wal>(new Wal(dir, options));
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start = 0;
    if (entry.is_regular_file() &&
        ParseSegmentName(entry.path().filename().string(), &start)) {
      wal->segments_.push_back(Segment{start, entry.path().string()});
    }
  }
  if (ec) {
    return easytime::Status::IOError("cannot list WAL directory " + dir +
                                     ": " + ec.message());
  }
  std::sort(wal->segments_.begin(), wal->segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.start_seq < b.start_seq;
            });
  WalRecoveryStats local;
  EASYTIME_RETURN_IF_ERROR(
      wal->Recover(after_seq, replay, stats ? stats : &local));
  if (options.group_commit && options.sync_every_append) {
    wal->durable_seq_ = wal->last_seq_;  // recovery leaves nothing pending
    wal->committer_ = std::thread(&Wal::CommitterLoop, wal.get());
  }
  return wal;
}

easytime::Status Wal::Recover(uint64_t after_seq, const ReplayFn& replay,
                              WalRecoveryStats* stats) {
  uint64_t expect = 0;    // seq the next segment must start at
  bool anchored = false;  // expect is meaningful (some segment was scanned)
  bool replay_started = false;
  bool chain_broken = false;
  std::vector<Segment> surviving;
  std::error_code ec;

  for (const Segment& seg : segments_) {
    if (chain_broken) {
      // Everything past a corruption is the bad suffix: drop it.
      uint64_t sz = fs::exists(seg.path, ec) ? fs::file_size(seg.path, ec) : 0;
      stats->bytes_dropped += sz;
      ++stats->segments_dropped;
      fs::remove(seg.path, ec);
      continue;
    }
    ++stats->segments_scanned;
    auto content_or = ReadWholeFile(seg.path);
    if (!content_or.ok()) return content_or.status();
    const std::string& content = *content_or;

    bool header_ok = content.size() >= kHeaderBytes &&
                     std::memcmp(content.data(), kMagic, 8) == 0 &&
                     GetU64(content.data() + 8) == seg.start_seq;
    if (header_ok && anchored && seg.start_seq != expect) {
      // A hole in the chain (e.g. a manually deleted segment): records past
      // it cannot be applied to any recoverable state.
      header_ok = false;
    }
    if (!header_ok) {
      stats->bytes_dropped += content.size();
      ++stats->segments_dropped;
      fs::remove(seg.path, ec);
      chain_broken = true;
      continue;
    }

    size_t off = kHeaderBytes;
    size_t valid_end = off;
    uint64_t rec_expect = seg.start_seq;
    while (off + kFrameBytes <= content.size()) {
      const char* p = content.data() + off;
      uint32_t len = GetU32(p);
      uint32_t crc = GetU32(p + 4);
      uint64_t seq = GetU64(p + 8);
      if (len > kMaxPayload || off + kFrameBytes + len > content.size()) break;
      std::string_view payload(p + kFrameBytes, len);
      if (RecordCrc(seq, payload) != crc) break;
      if (seq != rec_expect) break;
      if (seq > after_seq) {
        if (!replay_started && seq != after_seq + 1) {
          // The first record above the recovered snapshot does not continue
          // it; the remainder is unreachable state.
          break;
        }
        replay_started = true;
        if (replay) replay(seq, std::string(payload));
        ++stats->records_replayed;
      } else {
        ++stats->records_skipped;
      }
      rec_expect = seq + 1;
      off += kFrameBytes + len;
      valid_end = off;
    }
    if (valid_end < content.size()) {
      stats->bytes_dropped += content.size() - valid_end;
      fs::resize_file(seg.path, valid_end, ec);
      if (ec) {
        return easytime::Status::IOError("cannot truncate corrupt WAL tail " +
                                         seg.path + ": " + ec.message());
      }
      chain_broken = true;  // later segments belong to the dropped suffix
    }
    expect = rec_expect;
    anchored = true;
    surviving.push_back(seg);
  }

  segments_ = std::move(surviving);
  last_seq_ = (anchored && expect > 0) ? expect - 1 : 0;
  if (last_seq_ < after_seq) {
    // Every surviving record is already folded into the snapshot the caller
    // recovered; restarting the chain just above it keeps seqs contiguous.
    for (const Segment& seg : segments_) fs::remove(seg.path, ec);
    segments_.clear();
    last_seq_ = after_seq;
  }
  return easytime::Status::OK();
}

easytime::Status Wal::OpenFreshSegmentLocked() {
  const uint64_t start = last_seq_ + 1;
  std::string path = dir_ + "/" + SegmentName(start);
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return easytime::Status::IOError("cannot create WAL segment " + path +
                                     ": " + std::strerror(errno));
  }
  std::string header(kMagic, 8);
  PutU64(&header, start);
  easytime::Status st = WriteFully(fd, header.data(), header.size());
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  active_bytes_ = kHeaderBytes;
  if (!segments_.empty() && segments_.back().start_seq == start) {
    segments_.back().path = path;  // re-created over an empty leftover
  } else {
    segments_.push_back(Segment{start, path});
  }
  return SyncDir(dir_);
}

easytime::Result<uint64_t> Wal::Append(std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  EASYTIME_FAULT_POINT("store.append");
  if (payload.size() > kMaxPayload) {
    return easytime::Status::InvalidArgument(
        "WAL record exceeds the 256 MiB payload bound");
  }
  if (fd_ < 0 || active_bytes_ >= options_.segment_bytes) {
    CloseActiveLocked();
    EASYTIME_RETURN_IF_ERROR(OpenFreshSegmentLocked());
  }
  const uint64_t seq = last_seq_ + 1;
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, RecordCrc(seq, payload));
  PutU64(&frame, seq);
  frame.append(payload.data(), payload.size());
  easytime::Status st = WriteFully(fd_, frame.data(), frame.size());
  if (!st.ok()) {
    // Never leave a half-written frame in front of future appends.
    if (::ftruncate(fd_, static_cast<off_t>(active_bytes_)) != 0) {
      CloseActiveLocked();  // recovery will truncate the torn tail instead
    }
    return st;
  }
  active_bytes_ += frame.size();
  last_seq_ = seq;
  if (options_.sync_every_append) {
    if (GroupCommitActive()) {
      // Hand durability to the committer and block until a batch fsync (or a
      // failure) covers this record. The log mutex is dropped BEFORE parking
      // on the ack cv, so concurrent appenders write their records in the
      // meantime — that is the batch the next fsync acknowledges — and the
      // post-fsync wakeup never serializes behind writers of that batch.
      lock.unlock();
      commit_cv_.notify_one();
      std::unique_lock<std::mutex> ack(ack_mu_);
      ack_cv_.wait(ack, [&] {
        return durable_seq_.load(std::memory_order_acquire) >= seq ||
               failed_seq_.load(std::memory_order_acquire) >= seq;
      });
      // Failure wins over durability: when a segment-close fsync failed, the
      // committer's later fsync of the NEW segment advances durable_seq_ past
      // records living in the FAILED one, so durable_seq_ >= seq alone must
      // never ack a record the failure watermark also covers.
      if (failed_seq_.load(std::memory_order_acquire) >= seq) {
        return commit_status_.ok()
                   ? easytime::Status::IOError("wal group commit failed")
                   : commit_status_;
      }
      return seq;
    }
    EASYTIME_RETURN_IF_ERROR(SyncLocked());
  }
  return seq;
}

void Wal::CommitterLoop() {
  const auto acked = [&] {
    return std::max(durable_seq_.load(std::memory_order_relaxed),
                    failed_seq_.load(std::memory_order_relaxed));
  };
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    commit_cv_.wait(lock, [&] {
      return committer_stop_ || last_seq_ > acked();
    });
    if (last_seq_ <= acked()) {
      if (committer_stop_) return;
      continue;  // spurious / already covered
    }
    if (options_.group_commit_max_delay_us > 0 && !committer_stop_) {
      // Size-or-deadline: give the batch a bounded chance to fill before
      // paying the fsync (mirrors the serve micro-batcher).
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.group_commit_max_delay_us);
      commit_cv_.wait_until(lock, deadline, [&] {
        return committer_stop_ ||
               last_seq_ - acked() >= options_.group_commit_max_batch;
      });
    }
    const uint64_t base = acked();
    const uint64_t target = last_seq_;
    // fsync a dup of the active fd OUTSIDE the mutex: appenders keep writing
    // (forming the next batch) while this batch commits. Records <= target
    // in earlier, rotated segments were fsync'd by CloseActiveLocked.
    const bool had_fd = fd_ >= 0;
    const int dupfd = had_fd ? ::dup(fd_) : -1;
    lock.unlock();
    easytime::Status st = [&]() -> easytime::Status {
      EASYTIME_FAULT_POINT("store.fsync");
      if (had_fd && dupfd < 0) {
        return easytime::Status::IOError("wal group commit: dup failed");
      }
      if (dupfd >= 0 && ::fsync(dupfd) != 0) {
        return easytime::Status::IOError(std::string("wal fsync failed: ") +
                                         std::strerror(errno));
      }
      return easytime::Status::OK();
    }();
    if (dupfd >= 0) ::close(dupfd);
    {
      // Publish under ack_mu_ only — the log mutex stays free for the next
      // batch's writers while this batch's waiters drain. A poisoned log
      // fails the batch even when this fsync succeeded: the chain behind
      // these records may be torn, so recovery could drop them regardless.
      std::lock_guard<std::mutex> ack(ack_mu_);
      if (st.ok() && !commit_poisoned_) {
        if (durable_seq_.load(std::memory_order_relaxed) < target) {
          durable_seq_.store(target, std::memory_order_release);
        }
        ++gc_stats_.batches;
        gc_stats_.records += target - base;
      } else {
        if (failed_seq_.load(std::memory_order_relaxed) < target) {
          failed_seq_.store(target, std::memory_order_release);
        }
        if (!st.ok()) commit_status_ = st;  // else keep the poison's cause
      }
    }
    ack_cv_.notify_all();
    lock.lock();
  }
}

easytime::Status Wal::SyncLocked() {
  EASYTIME_FAULT_POINT("store.fsync");
  if (fd_ < 0) return easytime::Status::OK();
  if (::fsync(fd_) != 0) {
    return easytime::Status::IOError(std::string("wal fsync failed: ") +
                                     std::strerror(errno));
  }
  return easytime::Status::OK();
}

easytime::Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

void Wal::CloseActiveLocked() {
  if (fd_ < 0) return;
  // Fault point "store.segment_close_fsync": lets tests fail exactly the
  // rotation-close fsync while the committer's batch fsyncs keep succeeding.
  easytime::Status close_st = easytime::Status::OK();
  if (::easytime::FaultRegistry::AnyArmed()) {
    close_st = ::easytime::FaultRegistry::Global().Check(
        "store.segment_close_fsync");
  }
  if (close_st.ok() && ::fsync(fd_) != 0) {
    close_st = easytime::Status::IOError(
        std::string("wal fsync on segment close failed: ") +
        std::strerror(errno));
  }
  if (!close_st.ok()) {
    EASYTIME_LOG(Warning) << "wal: fsync on segment close failed: "
                          << close_st.ToString();
    if (GroupCommitActive()) {
      // Waiters whose records sit in this segment must not be acked as
      // durable by a later batch fsync of the NEXT segment — and neither may
      // any LATER record: if this segment's tail is torn on disk, recovery
      // truncates it and drops every subsequent segment as an unreachable
      // suffix. Poison the committer so all batches fail until reopen.
      // Lock order is always mu_ -> ack_mu_ (never the reverse), so taking
      // ack_mu_ here under mu_ cannot deadlock with the committer or with
      // waiters.
      {
        std::lock_guard<std::mutex> ack(ack_mu_);
        commit_poisoned_ = true;
        if (failed_seq_.load(std::memory_order_relaxed) < last_seq_) {
          failed_seq_.store(last_seq_, std::memory_order_release);
        }
        commit_status_ = close_st;
      }
      ack_cv_.notify_all();
    }
  }
  ::close(fd_);
  fd_ = -1;
  active_bytes_ = 0;
}

easytime::Status Wal::RemoveSegmentsCoveredBy(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0 && last_seq_ <= seq) {
    CloseActiveLocked();  // fully covered active segment may go too
  }
  size_t removed = 0;
  while (removed < segments_.size()) {
    const bool is_last = removed + 1 == segments_.size();
    if (is_last && fd_ >= 0) break;  // never delete the open segment
    uint64_t covered_end =
        is_last ? last_seq_ : segments_[removed + 1].start_seq - 1;
    if (covered_end > seq) break;
    std::error_code ec;
    fs::remove(segments_[removed].path, ec);
    if (ec) {
      return easytime::Status::IOError("cannot remove WAL segment " +
                                       segments_[removed].path + ": " +
                                       ec.message());
    }
    ++removed;
  }
  if (removed > 0) {
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<ptrdiff_t>(removed));
    EASYTIME_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return easytime::Status::OK();
}

uint64_t Wal::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

std::vector<std::string> Wal::SegmentPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(segments_.size());
  for (const auto& s : segments_) out.push_back(s.path);
  return out;
}

WalGroupCommitStats Wal::group_commit_stats() const {
  std::lock_guard<std::mutex> lock(ack_mu_);
  return gc_stats_;
}

}  // namespace easytime::store
