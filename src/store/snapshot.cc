#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault.h"
#include "store/crc32.h"

namespace easytime::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'E', 'Z', 'T', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kHeaderBytes = 24;  // magic + u64 seq + u32 crc + u32 len

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::string SnapshotName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016llx.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  if (name.size() != 5 + 16 + 5 || name.compare(0, 5, "snap-") != 0 ||
      name.compare(21, 5, ".snap") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 5; i < 21; ++i) {
    char c = name[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *seq = v;
  return true;
}

easytime::Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return easytime::Status::IOError("cannot open directory for fsync: " +
                                     dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return easytime::Status::IOError("directory fsync failed: " + dir);
  }
  return easytime::Status::OK();
}

}  // namespace

easytime::Status WriteSnapshot(const std::string& dir, uint64_t seq,
                               std::string_view state) {
  EASYTIME_FAULT_POINT("store.snapshot");
  if (state.size() > (size_t{1} << 31)) {
    return easytime::Status::InvalidArgument("snapshot state too large");
  }
  std::string header(kMagic, 8);
  PutU64(&header, seq);
  PutU32(&header, Crc32(state));
  PutU32(&header, static_cast<uint32_t>(state.size()));

  const std::string final_path = dir + "/" + SnapshotName(seq);
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return easytime::Status::IOError("cannot create snapshot tmp " + tmp_path +
                                     ": " + std::strerror(errno));
  }
  auto write_all = [fd](const char* data, size_t n) -> easytime::Status {
    while (n > 0) {
      ssize_t w = ::write(fd, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return easytime::Status::IOError(
            std::string("snapshot write failed: ") + std::strerror(errno));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return easytime::Status::OK();
  };
  easytime::Status st = write_all(header.data(), header.size());
  if (st.ok()) st = write_all(state.data(), state.size());
  if (st.ok() && ::fsync(fd) != 0) {
    st = easytime::Status::IOError(std::string("snapshot fsync failed: ") +
                                   std::strerror(errno));
  }
  ::close(fd);
  if (!st.ok()) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return st;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    easytime::Status rn = easytime::Status::IOError(
        std::string("snapshot rename failed: ") + std::strerror(errno));
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return rn;
  }
  return SyncDir(dir);
}

std::vector<SnapshotInfo> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (entry.is_regular_file() &&
        ParseSnapshotName(entry.path().filename().string(), &seq)) {
      out.push_back(SnapshotInfo{seq, entry.path().string()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotInfo& a, const SnapshotInfo& b) {
              return a.seq < b.seq;
            });
  return out;
}

easytime::Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir) {
  std::vector<SnapshotInfo> snaps = ListSnapshots(dir);
  uint64_t corrupt_skipped = 0;
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    std::ifstream in(it->path, std::ios::binary);
    std::string content;
    if (in) {
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    bool ok = !content.empty() && content.size() >= kHeaderBytes &&
              std::memcmp(content.data(), kMagic, 8) == 0 &&
              GetU64(content.data() + 8) == it->seq;
    if (ok) {
      uint32_t crc = GetU32(content.data() + 16);
      uint32_t len = GetU32(content.data() + 20);
      ok = content.size() == kHeaderBytes + len &&
           Crc32(std::string_view(content.data() + kHeaderBytes, len)) == crc;
    }
    if (!ok) {
      // Fall back to the previous image; the WAL still holds the records
      // this snapshot covered (compaction keeps segments until a snapshot
      // older than this one exists).
      ++corrupt_skipped;
      std::error_code ec;
      fs::remove(it->path, ec);
      continue;
    }
    LoadedSnapshot loaded;
    loaded.seq = it->seq;
    loaded.state = content.substr(kHeaderBytes);
    loaded.corrupt_skipped = corrupt_skipped;
    return loaded;
  }
  return easytime::Status::NotFound("no valid snapshot in " + dir);
}

easytime::Result<uint64_t> PruneSnapshots(const std::string& dir,
                                          size_t keep) {
  std::vector<SnapshotInfo> snaps = ListSnapshots(dir);
  if (snaps.size() < keep || keep == 0) return uint64_t{0};
  const size_t drop = snaps.size() - keep;
  std::error_code ec;
  for (size_t i = 0; i < drop; ++i) {
    fs::remove(snaps[i].path, ec);
    if (ec) {
      return easytime::Status::IOError("cannot remove snapshot " +
                                       snaps[i].path + ": " + ec.message());
    }
  }
  if (drop > 0) {
    EASYTIME_RETURN_IF_ERROR(SyncDir(dir));
  }
  return snaps[drop].seq;
}

}  // namespace easytime::store
