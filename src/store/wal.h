#pragma once

/// \file wal.h
/// \brief Write-ahead log: an ordered chain of CRC32-framed records spread
/// across rotating segment files (DESIGN.md §9). Appends are sequential
/// writes to the active segment; recovery rebuilds the chain by scanning
/// segments in order and truncates away any torn or corrupt suffix, so a
/// crash mid-append loses at most the record being written.
///
/// On-disk layout inside a store directory:
///   wal-<start_seq, 16 hex digits>.log
/// Segment file = 16-byte header (8-byte magic "EZTWAL01" + u64 start_seq,
/// little-endian) followed by records:
///   u32 payload_len | u32 crc32(seq_le || payload) | u64 seq | payload
/// Sequence numbers increase by exactly 1 across the whole chain; a gap, a
/// checksum mismatch, or a short frame ends recovery at that point (the file
/// is truncated to the valid prefix and later segments are deleted).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"

namespace easytime::store {

/// Tuning for one log instance.
struct WalOptions {
  /// Rotate to a fresh segment once the active one reaches this many bytes.
  size_t segment_bytes = 1 << 20;
  /// fsync after every append (strongest durability; otherwise callers batch
  /// durability points with Sync()).
  bool sync_every_append = false;
  /// Group commit: coalesce concurrent durable appends into one fsync. Only
  /// meaningful with sync_every_append. Appenders write their record under
  /// the log mutex as usual, then block until the committer thread's next
  /// batch fsync covers their sequence number, so every Append still returns
  /// only once its record is durable — but one fsync now acknowledges every
  /// record written while the previous fsync was in flight.
  bool group_commit = false;
  /// Batch size at which the committer stops waiting for more appenders.
  size_t group_commit_max_batch = 64;
  /// Extra time the committer may wait for a batch to fill once at least one
  /// record is pending (0 = commit whatever accumulated while the previous
  /// fsync ran — natural batching, lowest latency).
  uint32_t group_commit_max_delay_us = 0;
};

/// Observed group-commit activity (for tests and benchmarks).
struct WalGroupCommitStats {
  uint64_t batches = 0;  ///< fsync batches issued by the committer
  uint64_t records = 0;  ///< records acknowledged by those batches
};

/// What recovery found and repaired while opening a log.
struct WalRecoveryStats {
  uint64_t records_replayed = 0;  ///< records handed to the replay callback
  uint64_t records_skipped = 0;   ///< valid records at or below after_seq
  uint64_t bytes_dropped = 0;     ///< torn/corrupt suffix truncated away
  uint64_t segments_dropped = 0;  ///< segments deleted past a corruption
  uint64_t segments_scanned = 0;
};

/// \brief One validated WAL segment file — the unit of replication shipping
/// (DESIGN.md §14). `valid_bytes` is the longest prefix whose CRC-framed
/// record chain checks out; anything past it is a torn tail from a crash
/// mid-append and must never ship.
struct WalSegmentInfo {
  std::string file;          ///< basename, wal-<start_seq>.log
  std::string path;          ///< full path (empty for in-memory images)
  uint64_t start_seq = 0;    ///< first record's sequence number
  uint64_t last_seq = 0;     ///< last valid record (start_seq - 1 if none)
  uint64_t valid_bytes = 0;  ///< header + valid record prefix
  uint64_t file_bytes = 0;   ///< on-disk size (>= valid_bytes)
  size_t records = 0;        ///< valid records in the prefix
  bool torn = false;         ///< file_bytes > valid_bytes
};

/// Receives each valid record when scanning a segment image.
using WalRecordFn =
    std::function<void(uint64_t seq, std::string_view payload)>;

/// \brief Validates one segment image named \p file (the basename carries
/// the expected start_seq): magic, header seq, and the CRC-framed record
/// chain. Returns the valid-prefix geometry; \p on_record (optional) gets
/// every record inside the valid prefix in order. Fails only on a malformed
/// name/header — a torn record tail is reported, not an error.
easytime::Result<WalSegmentInfo> ValidateWalSegmentImage(
    std::string_view bytes, const std::string& file,
    const WalRecordFn& on_record = nullptr);

/// \brief Lists and validates every WAL segment file in \p dir, sorted by
/// start_seq — the export side of segment shipping. Unreadable files fail;
/// an empty or missing directory returns an empty list.
easytime::Result<std::vector<WalSegmentInfo>> ListWalSegments(
    const std::string& dir);

/// \brief Reads and validates one segment, returning exactly its valid
/// prefix (torn tails are cut before the bytes travel).
easytime::Result<std::string> ExportWalSegment(const std::string& path,
                                               const std::string& file);

/// \brief Follower-side import: validates \p bytes (torn-tail guard —
/// only the valid prefix is kept), then writes the segment durably into
/// \p dir under its canonical name via tmp + fsync + rename. Re-importing
/// a segment overwrites it (shipping is idempotent); an import whose valid
/// prefix is SHORTER than the existing file is rejected so a stale re-ship
/// can never roll durable records back.
easytime::Result<WalSegmentInfo> ImportWalSegment(const std::string& dir,
                                                  const std::string& file,
                                                  std::string_view bytes);

/// \brief The segment-rotating write-ahead log. All methods are thread-safe.
class Wal {
 public:
  /// Receives each recovered record in sequence order during Open.
  using ReplayFn = std::function<void(uint64_t seq, std::string&& payload)>;

  /// \brief Opens (creating \p dir if needed) and recovers the log. Every
  /// surviving record with seq > \p after_seq is passed to \p replay (which
  /// may be null) in order; the torn/corrupt suffix, if any, is truncated
  /// from disk so subsequent appends extend the valid prefix.
  static easytime::Result<std::unique_ptr<Wal>> Open(
      const std::string& dir, const WalOptions& options, uint64_t after_seq,
      const ReplayFn& replay, WalRecoveryStats* stats = nullptr);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Appends one record, returning its sequence number. Fault point
  /// "store.append"; a failed write truncates the segment back so the log
  /// never exposes a half-written record to a later append.
  easytime::Result<uint64_t> Append(std::string_view payload);

  /// Durability point: fsync the active segment ("store.fsync" fault point).
  easytime::Status Sync();

  /// \brief Deletes the longest prefix of segments whose records all have
  /// seq <= \p seq — the compaction path once a snapshot covers them. The
  /// active segment is closed first if it is fully covered (appends then
  /// start a fresh segment).
  easytime::Status RemoveSegmentsCoveredBy(uint64_t seq);

  /// Highest sequence number in the log (0 = empty).
  uint64_t last_seq() const;

  /// Segment files currently on disk, in chain order (for tests/compaction).
  std::vector<std::string> SegmentPaths() const;

  /// Group-commit counters (zeros when group commit is off).
  WalGroupCommitStats group_commit_stats() const;

 private:
  struct Segment {
    uint64_t start_seq = 0;
    std::string path;
  };

  Wal(std::string dir, WalOptions options);

  /// Recovers the segment chain (called once from Open, pre-concurrency).
  easytime::Status Recover(uint64_t after_seq, const ReplayFn& replay,
                           WalRecoveryStats* stats);

  easytime::Status OpenFreshSegmentLocked();
  easytime::Status SyncLocked();
  void CloseActiveLocked();

  /// Committer thread body (group commit): waits for pending records, then
  /// fsyncs OUTSIDE the log mutex on a dup'd fd so the next batch forms
  /// while the current one commits, then acks waiters through durable_seq_.
  void CommitterLoop();
  bool GroupCommitActive() const { return committer_.joinable(); }

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;  ///< sorted by start_seq; back may be active
  int fd_ = -1;                    ///< active segment fd; -1 = none open
  uint64_t active_bytes_ = 0;
  uint64_t last_seq_ = 0;

  // Group-commit state. The committer's pending-work wait runs under mu_
  // (it reads last_seq_), but acks live on their own mutex: appenders waiting
  // for durability park on ack_mu_/ack_cv_, so the post-fsync wakeup herd
  // never contends with appenders writing the NEXT batch under mu_. The
  // watermarks are atomics because the committer publishes them without mu_
  // and both wait predicates read them.
  std::condition_variable commit_cv_;  ///< wakes the committer (paired w/ mu_)
  std::thread committer_;
  bool committer_stop_ = false;  ///< guarded by mu_
  std::atomic<uint64_t> durable_seq_{0};  ///< records <= this are fsync'd
  std::atomic<uint64_t> failed_seq_{0};   ///< records <= this failed a commit
  mutable std::mutex ack_mu_;
  std::condition_variable ack_cv_;  ///< paired with ack_mu_
  easytime::Status commit_status_ = easytime::Status::OK();  ///< ack_mu_
  WalGroupCommitStats gc_stats_;                             ///< ack_mu_
  /// Sticky fail-stop (guarded by ack_mu_): set when a segment-close fsync
  /// fails under group commit. The closed segment's tail may be torn, and
  /// recovery truncates a torn tail and then DROPS every later segment as an
  /// unreachable suffix — so records appended after the failure cannot be
  /// guaranteed durable either, no matter how their own fsync goes. Once set,
  /// every batch is acked as failed until the log is reopened.
  bool commit_poisoned_ = false;
};

}  // namespace easytime::store
