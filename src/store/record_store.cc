#include "store/record_store.h"

#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "store/snapshot.h"

namespace easytime::store {

namespace fs = std::filesystem;

RecordStore::RecordStore(std::string dir, RecordStoreOptions options,
                         std::unique_ptr<Wal> wal, uint64_t snapshot_seq)
    : dir_(std::move(dir)), options_(options), wal_(std::move(wal)) {
  snapshot_seq_.store(snapshot_seq, std::memory_order_relaxed);
}

easytime::Result<std::unique_ptr<RecordStore>> RecordStore::Open(
    const std::string& dir, const RecordStoreOptions& options,
    RecordStoreRecovery* recovery) {
  if (options.keep_snapshots == 0) {
    return easytime::Status::InvalidArgument(
        "RecordStoreOptions::keep_snapshots must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return easytime::Status::IOError("cannot create store directory " + dir +
                                     ": " + ec.message());
  }
  // A crash between snapshot write and rename leaves a *.tmp behind.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        entry.path().extension().string() == ".tmp") {
      fs::remove(entry.path(), ec);
    }
  }

  RecordStoreRecovery local;
  RecordStoreRecovery* rec = recovery ? recovery : &local;
  *rec = RecordStoreRecovery{};

  auto snap_or = LoadLatestSnapshot(dir);
  if (snap_or.ok()) {
    rec->has_snapshot = true;
    rec->snapshot = std::move(snap_or.ValueOrDie().state);
    rec->snapshot_seq = snap_or.ValueOrDie().seq;
    rec->corrupt_snapshots = snap_or.ValueOrDie().corrupt_skipped;
  } else if (!snap_or.status().IsNotFound()) {
    return snap_or.status();
  }

  WalOptions wal_options;
  wal_options.segment_bytes = options.segment_bytes;
  wal_options.sync_every_append = options.sync_every_append;
  wal_options.group_commit = options.group_commit;
  wal_options.group_commit_max_batch = options.group_commit_max_batch;
  wal_options.group_commit_max_delay_us = options.group_commit_max_delay_us;
  WalRecoveryStats stats;
  auto wal_or = Wal::Open(
      dir, wal_options, rec->snapshot_seq,
      [rec](uint64_t seq, std::string&& payload) {
        rec->tail.emplace_back(seq, std::move(payload));
      },
      &stats);
  EASYTIME_RETURN_IF_ERROR(wal_or.status());
  std::unique_ptr<Wal> wal = std::move(wal_or.ValueOrDie());
  rec->last_seq = wal->last_seq();
  rec->bytes_dropped = stats.bytes_dropped;
  rec->segments_dropped = stats.segments_dropped;
  if (rec->bytes_dropped > 0 || rec->corrupt_snapshots > 0) {
    EASYTIME_LOG(Warning) << "store: recovered " << dir << " dropping "
                          << rec->bytes_dropped << " corrupt WAL bytes, "
                          << rec->segments_dropped << " segments, "
                          << rec->corrupt_snapshots << " snapshots";
  }
  return std::unique_ptr<RecordStore>(new RecordStore(
      dir, options, std::move(wal), rec->snapshot_seq));
}

easytime::Result<uint64_t> RecordStore::Append(std::string_view payload) {
  auto seq_or = wal_->Append(payload);
  if (seq_or.ok()) {
    appends_since_compaction_.fetch_add(1, std::memory_order_relaxed);
  }
  return seq_or;
}

easytime::Status RecordStore::Sync() { return wal_->Sync(); }

easytime::Status RecordStore::Compact(std::string_view state) {
  // Make every record the snapshot claims to cover durable first, so a
  // snapshot never references appends the WAL could still lose.
  EASYTIME_RETURN_IF_ERROR(wal_->Sync());
  const uint64_t seq = wal_->last_seq();
  EASYTIME_RETURN_IF_ERROR(WriteSnapshot(dir_, seq, state));
  snapshot_seq_.store(seq, std::memory_order_relaxed);
  appends_since_compaction_.store(0, std::memory_order_relaxed);
  auto oldest_or = PruneSnapshots(dir_, options_.keep_snapshots);
  EASYTIME_RETURN_IF_ERROR(oldest_or.status());
  const uint64_t oldest_retained = oldest_or.ValueOrDie();
  if (oldest_retained > 0) {
    // Only segments already covered by the oldest retained snapshot are
    // redundant; the newest image alone must never gate deletion.
    EASYTIME_RETURN_IF_ERROR(wal_->RemoveSegmentsCoveredBy(oldest_retained));
  }
  return easytime::Status::OK();
}

}  // namespace easytime::store
