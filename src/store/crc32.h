#pragma once

/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to frame
/// every on-disk record in the storage engine (DESIGN.md §9). A checksum
/// mismatch during recovery marks the torn/corrupt suffix of a log, which is
/// dropped while the valid prefix is kept.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace easytime::store {

/// \brief Computes the CRC-32 of \p n bytes at \p data, continuing from
/// \p seed (pass the previous return value to checksum data incrementally;
/// the default starts a fresh checksum). Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace easytime::store
