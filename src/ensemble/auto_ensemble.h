#pragma once

/// \file auto_ensemble.h
/// \brief The Automated Ensemble module (paper §II-C, Fig. 2).
///
/// Offline pretraining: a TS2Vec encoder learns series representations; a
/// classifier learns feature -> method-performance correlations from the
/// benchmark knowledge (soft-label loss).
///
/// Online inference: for a new series, extract features, pick the top-k
/// methods, train them on the train split, learn convex ensemble weights on
/// the validation split, and forecast with the weighted combination.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ensemble/classifier.h"
#include "ensemble/ts2vec.h"
#include "knowledge/knowledge_base.h"
#include "methods/forecaster.h"
#include "tsdata/repository.h"

namespace easytime::ensemble {

/// Online-phase parameters.
struct AutoEnsembleOptions {
  size_t top_k = 3;
  std::string metric = "mae";      ///< supervision metric from the KB
  double val_fraction = 0.2;       ///< inner validation share of the train set
  /// Shrinkage of the learned weights toward the uniform average — the
  /// validation split is short, so raw least-squares weights are
  /// high-variance; blending toward uniform trades a little bias for a lot
  /// of variance (ablated in bench_ablation).
  double weight_shrinkage = 0.3;
  Ts2VecOptions ts2vec;
  ClassifierOptions classifier;
};

/// \brief A fitted ensemble: weighted combination of its member forecasters.
class EnsembleForecaster : public methods::Forecaster {
 public:
  /// \param val_fraction share of the train segment used as the inner
  ///        validation split; <= 0 selects plain uniform averaging
  /// \param weight_shrinkage blend factor toward uniform weights in [0, 1]
  EnsembleForecaster(std::vector<methods::ForecasterPtr> members,
                     std::vector<std::string> member_names,
                     double val_fraction, double weight_shrinkage = 0.3);

  /// Fits members on an inner-train split, learns simplex weights on the
  /// inner-validation split, then refits members on the full train segment.
  easytime::Status Fit(const std::vector<double>& train,
                       const methods::FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "auto_ensemble"; }
  methods::Family family() const override {
    return methods::Family::kMachineLearning;
  }

  const std::vector<double>& weights() const { return weights_; }
  const std::vector<std::string>& member_names() const {
    return member_names_;
  }

 private:
  std::vector<methods::ForecasterPtr> members_;
  std::vector<std::string> member_names_;
  double val_fraction_;
  double weight_shrinkage_;
  std::vector<double> weights_;
  bool fitted_ = false;
};

/// One recommendation: method name + classifier probability.
using Recommendation = std::vector<std::pair<std::string, double>>;

/// \brief The end-to-end Automated Ensemble engine.
class AutoEnsembleEngine {
 public:
  explicit AutoEnsembleEngine(AutoEnsembleOptions options = {});

  /// \brief Offline phase: pretrains TS2Vec on the repository's series and
  /// the classifier on the knowledge base's benchmark results.
  easytime::Status Pretrain(const tsdata::Repository& repo,
                            const knowledge::KnowledgeBase& kb);

  /// Feature vector for a series: TS2Vec representation + characteristic
  /// statistics.
  easytime::Result<std::vector<double>> Features(
      const std::vector<double>& values) const;

  /// \brief Recommends the top-k methods for a new series (Fig. 4, label 4).
  easytime::Result<Recommendation> Recommend(const std::vector<double>& values,
                                             size_t k = 0) const;

  /// \brief Builds an (unfitted) ensemble forecaster from the top-k
  /// recommendation for \p values. Fit it like any other Forecaster.
  easytime::Result<std::unique_ptr<EnsembleForecaster>> BuildEnsemble(
      const std::vector<double>& values) const;

  bool pretrained() const { return pretrained_; }
  const AutoEnsembleOptions& options() const { return options_; }
  const std::vector<std::string>& candidate_methods() const {
    return candidate_methods_;
  }

 private:
  AutoEnsembleOptions options_;
  std::unique_ptr<Ts2VecEncoder> encoder_;
  std::unique_ptr<MethodClassifier> classifier_;
  std::vector<std::string> candidate_methods_;
  bool pretrained_ = false;
};

}  // namespace easytime::ensemble
