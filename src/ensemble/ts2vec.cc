#include "ensemble/ts2vec.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "nn/optimizer.h"

namespace easytime::ensemble {

Ts2VecEncoder::Ts2VecEncoder(const Ts2VecOptions& options)
    : options_(options) {
  Rng rng(options.seed);
  net_.Add(std::make_unique<nn::Linear>(1, options.hidden_dim, &rng));
  size_t dilation = 1;
  for (size_t i = 0; i < options.depth; ++i) {
    net_.Add(std::make_unique<nn::ResidualConvBlock>(
        options.hidden_dim, options.hidden_dim, 3, dilation, &rng));
    dilation *= 2;
  }
  net_.Add(std::make_unique<nn::CausalConv1d>(options.hidden_dim,
                                              options.repr_dim, 1, 1, &rng));
}

void Ts2VecEncoder::Backprop(const nn::Matrix& seq, const nn::Matrix& grad) {
  net_.ForwardInto(seq, &fwd_ws_);  // rebuild layer caches for this sequence
  net_.BackwardInto(grad, &bwd_ws_);
}

std::vector<double> Ts2VecEncoder::Represent(
    const std::vector<double>& values) const {
  // z-normalize for scale invariance.
  double m = Mean(values);
  double sd = std::max(StdDev(values), 1e-9);
  size_t T = std::max<size_t>(values.size(), 1);
  nn::Matrix seq(T, 1);
  for (size_t t = 0; t < values.size(); ++t) {
    seq.at(t, 0) = (values[t] - m) / sd;
  }
  nn::Matrix repr;
  EncodeConst(seq, &repr);
  // Max-pool over time (TS2Vec's instance-level representation).
  std::vector<double> out(repr.cols(), -1e300);
  for (size_t t = 0; t < repr.rows(); ++t) {
    for (size_t d = 0; d < repr.cols(); ++d) {
      out[d] = std::max(out[d], repr.at(t, d));
    }
  }
  return out;
}

easytime::Result<Ts2VecTrainStats> PretrainTs2Vec(
    Ts2VecEncoder* encoder, const std::vector<std::vector<double>>& corpus) {
  if (encoder == nullptr) {
    return Status::InvalidArgument("encoder must not be null");
  }
  if (corpus.empty()) {
    return Status::InvalidArgument("pretraining corpus must be non-empty");
  }
  const Ts2VecOptions& opt = encoder->options();
  Rng rng(opt.seed ^ 0x9e3779b9ULL);

  // z-normalized copies of the corpus.
  std::vector<std::vector<double>> normed;
  normed.reserve(corpus.size());
  for (const auto& s : corpus) {
    if (s.size() < 8) continue;
    double m = Mean(s), sd = std::max(StdDev(s), 1e-9);
    std::vector<double> z(s.size());
    for (size_t i = 0; i < s.size(); ++i) z[i] = (s[i] - m) / sd;
    normed.push_back(std::move(z));
  }
  if (normed.empty()) {
    return Status::InvalidArgument("no series long enough for pretraining");
  }

  nn::Adam optimizer(encoder->Params(), opt.learning_rate);
  nn::ContrastiveOptions copt;
  copt.alpha = opt.alpha;

  Ts2VecTrainStats stats;
  size_t steps_per_epoch =
      std::max<size_t>(1, normed.size() / std::max<size_t>(1, opt.batch_size));
  const size_t B = std::min(opt.batch_size, normed.size());

  ThreadPool& pool = GlobalThreadPool();
  // Step-loop workspaces: the matrices keep their buffers across steps.
  std::vector<nn::Matrix> seq1(B), seq2(B), rep1(B), rep2(B);
  std::vector<nn::Matrix> g1, g2;

  for (size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      std::vector<size_t> batch = rng.SampleIndices(normed.size(), B);

      // Build two masked views of a random crop per series. This stays
      // serial: the crop and mask draws must consume the RNG in batch
      // order.
      for (size_t i = 0; i < B; ++i) {
        const auto& s = normed[batch[i]];
        size_t crop = std::min(opt.crop_length, s.size());
        size_t start = s.size() > crop
                           ? static_cast<size_t>(rng.UniformInt(
                                 0, static_cast<int64_t>(s.size() - crop)))
                           : 0;
        seq1[i].Resize(crop, 1);
        seq2[i].Resize(crop, 1);
        for (size_t t = 0; t < crop; ++t) {
          double v = s[start + t];
          seq1[i].at(t, 0) = rng.Uniform() < opt.mask_prob ? 0.0 : v;
          seq2[i].at(t, 0) = rng.Uniform() < opt.mask_prob ? 0.0 : v;
        }
      }

      // Encode both views of every series in parallel. Each encode is
      // cache-free and writes only its own output matrix, so the schedule
      // cannot affect the results.
      pool.ParallelFor(2 * B, [&](size_t idx) {
        const size_t i = idx / 2;
        if (idx % 2 == 0) {
          encoder->EncodeConst(seq1[i], &rep1[i]);
        } else {
          encoder->EncodeConst(seq2[i], &rep2[i]);
        }
      });

      double loss =
          nn::HierarchicalContrastiveLoss(rep1, rep2, &g1, &g2, copt);
      epoch_loss += loss;

      for (size_t i = 0; i < B; ++i) {
        encoder->Backprop(seq1[i], g1[i]);
        encoder->Backprop(seq2[i], g2[i]);
      }
      optimizer.ClipGradNorm(5.0);
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    stats.epoch_losses.push_back(epoch_loss /
                                 static_cast<double>(steps_per_epoch));
  }
  return stats;
}

}  // namespace easytime::ensemble
