#pragma once

/// \file classifier.h
/// \brief The method classifier of the Automated Ensemble (Fig. 2): an MLP
/// from series features to a probability ranking over forecasting methods,
/// trained with the soft-label loss of SimpleTS ([10] in the paper) — the
/// target distribution is a softmax over (negated, standardized) benchmark
/// errors rather than a one-hot winner, so near-ties supervise smoothly.

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/layers.h"

namespace easytime::ensemble {

/// Classifier hyperparameters.
struct ClassifierOptions {
  size_t hidden = 32;
  size_t epochs = 300;
  double learning_rate = 5e-3;
  double label_temperature = 0.35;  ///< soft-label sharpness
  bool hard_labels = false;         ///< ablation: one-hot winner labels
  uint64_t seed = 99;
};

/// One training example: features -> per-method error (lower = better).
struct ClassifierExample {
  std::vector<double> features;
  std::map<std::string, double> method_errors;
};

/// \brief Probability ranking over methods.
class MethodClassifier {
 public:
  MethodClassifier(std::vector<std::string> method_names, size_t feature_dim,
                   const ClassifierOptions& options);

  /// Trains on the benchmark-derived examples.
  easytime::Status Train(const std::vector<ClassifierExample>& examples);

  /// Probability distribution over methods() for the given features.
  /// Cache-free inference pass; safe to call from multiple threads.
  easytime::Result<std::vector<double>> Predict(
      const std::vector<double>& features) const;

  /// Top-k method names with probabilities, best first.
  easytime::Result<std::vector<std::pair<std::string, double>>> TopK(
      const std::vector<double>& features, size_t k) const;

  const std::vector<std::string>& methods() const { return methods_; }
  size_t feature_dim() const { return feature_dim_; }

  /// \brief Converts per-method errors into a soft target distribution:
  /// softmax(-(err - mean)/std / temperature). Exposed for tests/ablation.
  static std::vector<double> SoftLabel(const std::vector<double>& errors,
                                       double temperature, bool hard);

 private:
  std::vector<std::string> methods_;
  size_t feature_dim_;
  ClassifierOptions options_;
  nn::Sequential net_;
  bool trained_ = false;
};

}  // namespace easytime::ensemble
