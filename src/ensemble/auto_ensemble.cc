#include "ensemble/auto_ensemble.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "common/logging.h"
#include "common/optimize.h"
#include "methods/registry.h"
#include "tsdata/characteristics.h"

namespace easytime::ensemble {

// --------------------------------------------------------- EnsembleForecaster

EnsembleForecaster::EnsembleForecaster(
    std::vector<methods::ForecasterPtr> members,
    std::vector<std::string> member_names, double val_fraction,
    double weight_shrinkage)
    : members_(std::move(members)),
      member_names_(std::move(member_names)),
      val_fraction_(val_fraction),
      weight_shrinkage_(std::clamp(weight_shrinkage, 0.0, 1.0)) {}

easytime::Status EnsembleForecaster::Fit(const std::vector<double>& train,
                                         const methods::FitContext& ctx) {
  if (members_.empty()) {
    return Status::InvalidArgument("ensemble has no members");
  }
  size_t n = train.size();
  // val_fraction <= 0 selects plain uniform averaging (used by ablations).
  size_t val_len = 0;
  if (val_fraction_ > 0.0) {
    val_len = static_cast<size_t>(
        std::round(val_fraction_ * static_cast<double>(n)));
    val_len = std::clamp<size_t>(val_len, std::min<size_t>(4, n / 4), n / 2);
  }

  weights_.assign(members_.size(), 1.0 / static_cast<double>(members_.size()));

  if (val_len >= 2 && n - val_len >= 8) {
    std::vector<double> inner_train(train.begin(),
                                    train.end() - static_cast<long>(val_len));

    // Members are fitted once on the inner-train prefix, then produce
    // forecasts from several rolling origins across the validation span
    // (shorter horizons from more origins give a lower-variance weight
    // estimate than one long forecast). Failures neutralize the member to
    // the inner-train mean rather than aborting the ensemble.
    size_t window = std::max<size_t>(2, val_len / 3);
    methods::FitContext inner_ctx = ctx;
    inner_ctx.horizon = window;
    double fallback = 0.0;
    for (double v : inner_train) fallback += v;
    fallback /= static_cast<double>(inner_train.size());

    std::vector<bool> alive(members_.size(), true);
    for (size_t i = 0; i < members_.size(); ++i) {
      if (!members_[i]->Fit(inner_train, inner_ctx).ok()) {
        alive[i] = false;
        EASYTIME_LOG(Warning) << "ensemble member '" << member_names_[i]
                              << "' failed the validation fit; neutralized";
      }
    }

    std::vector<std::vector<double>> preds(members_.size());
    std::vector<double> target;
    for (size_t start = inner_train.size(); start + window <= n;
         start += window) {
      std::vector<double> history(train.begin(),
                                  train.begin() + static_cast<long>(start));
      target.insert(target.end(),
                    train.begin() + static_cast<long>(start),
                    train.begin() + static_cast<long>(start + window));
      for (size_t i = 0; i < members_.size(); ++i) {
        std::vector<double> fc(window, fallback);
        if (alive[i]) {
          auto res = members_[i]->ForecastFrom(history, window);
          if (res.ok() && res->size() == window) fc = std::move(*res);
        }
        preds[i].insert(preds[i].end(), fc.begin(), fc.end());
      }
    }
    EASYTIME_ASSIGN_OR_RETURN(weights_, LearnSimplexWeights(preds, target));
    // Shrink toward uniform: the validation window is short, so raw learned
    // weights are high-variance.
    double uniform = 1.0 / static_cast<double>(members_.size());
    for (auto& w : weights_) {
      w = (1.0 - weight_shrinkage_) * w + weight_shrinkage_ * uniform;
    }
  }

  // Refit members on the full training segment for final forecasting.
  for (size_t i = 0; i < members_.size(); ++i) {
    Status st = members_[i]->Fit(train, ctx);
    if (!st.ok()) {
      // Neutralize the member: zero weight, renormalize.
      weights_[i] = 0.0;
      double sum = 0.0;
      for (double w : weights_) sum += w;
      if (sum <= 0.0) {
        return Status::Internal("every ensemble member failed to fit");
      }
      for (auto& w : weights_) w /= sum;
    }
  }
  fitted_ = true;
  return Status::OK();
}

easytime::Result<std::vector<double>> EnsembleForecaster::Forecast(
    size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  std::vector<double> out(horizon, 0.0);
  for (size_t i = 0; i < members_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    EASYTIME_ASSIGN_OR_RETURN(std::vector<double> fc,
                              members_[i]->Forecast(horizon));
    for (size_t h = 0; h < horizon; ++h) out[h] += weights_[i] * fc[h];
  }
  return out;
}

easytime::Result<std::vector<double>> EnsembleForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  std::vector<double> out(horizon, 0.0);
  for (size_t i = 0; i < members_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    EASYTIME_ASSIGN_OR_RETURN(std::vector<double> fc,
                              members_[i]->ForecastFrom(history, horizon));
    for (size_t h = 0; h < horizon; ++h) out[h] += weights_[i] * fc[h];
  }
  return out;
}

// --------------------------------------------------------- AutoEnsembleEngine

AutoEnsembleEngine::AutoEnsembleEngine(AutoEnsembleOptions options)
    : options_(std::move(options)) {}

easytime::Status AutoEnsembleEngine::Pretrain(
    const tsdata::Repository& repo, const knowledge::KnowledgeBase& kb) {
  // 1. Pretrain the representation encoder on every channel in the suite.
  encoder_ = std::make_unique<Ts2VecEncoder>(options_.ts2vec);
  std::vector<std::vector<double>> corpus;
  for (const auto* ds : repo.All()) {
    for (const auto& ch : ds->channels()) corpus.push_back(ch.values());
  }
  EASYTIME_RETURN_IF_ERROR(PretrainTs2Vec(encoder_.get(), corpus).status());

  // 2. Candidate set = methods with benchmark results in the KB.
  std::map<std::string, size_t> method_counts;
  for (const auto& r : kb.results()) {
    if (r.metrics.count(options_.metric)) ++method_counts[r.method];
  }
  candidate_methods_.clear();
  for (const auto& [name, count] : method_counts) {
    if (count >= 2) candidate_methods_.push_back(name);
  }
  if (candidate_methods_.size() < 2) {
    return Status::InvalidArgument(
        "knowledge base must contain results (metric '" + options_.metric +
        "') for at least two methods");
  }

  // 3. Train the soft-label classifier: one example per dataset.
  size_t feat_dim = encoder_->repr_dim() + tsdata::kCharacteristicFeatureDim;
  classifier_ = std::make_unique<MethodClassifier>(
      candidate_methods_, feat_dim, options_.classifier);

  std::vector<ClassifierExample> examples;
  for (const auto* ds : repo.All()) {
    auto scores = kb.MethodScores(ds->name(), options_.metric);
    if (scores.size() < 2) continue;
    ClassifierExample ex;
    EASYTIME_ASSIGN_OR_RETURN(ex.features, Features(ds->primary().values()));
    ex.method_errors = std::move(scores);
    examples.push_back(std::move(ex));
  }
  EASYTIME_RETURN_IF_ERROR(classifier_->Train(examples));
  pretrained_ = true;
  EASYTIME_LOG(Info) << "auto-ensemble pretrained: " << examples.size()
                     << " examples, " << candidate_methods_.size()
                     << " candidate methods";
  return Status::OK();
}

easytime::Result<std::vector<double>> AutoEnsembleEngine::Features(
    const std::vector<double>& values) const {
  if (encoder_ == nullptr) {
    return Status::Internal("Features called before Pretrain");
  }
  std::vector<double> f = encoder_->Represent(values);
  std::vector<double> ch = tsdata::CharacteristicFeatureVector(values);
  f.insert(f.end(), ch.begin(), ch.end());
  return f;
}

easytime::Result<Recommendation> AutoEnsembleEngine::Recommend(
    const std::vector<double>& values, size_t k) const {
  EASYTIME_FAULT_POINT("ensemble.recommend");
  if (!pretrained_) {
    return Status::Internal("Recommend called before Pretrain");
  }
  if (k == 0) k = options_.top_k;
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> feats, Features(values));
  return classifier_->TopK(feats, k);
}

easytime::Result<std::unique_ptr<EnsembleForecaster>>
AutoEnsembleEngine::BuildEnsemble(const std::vector<double>& values) const {
  EASYTIME_ASSIGN_OR_RETURN(Recommendation rec,
                            Recommend(values, options_.top_k));
  std::vector<methods::ForecasterPtr> members;
  std::vector<std::string> names;
  for (const auto& [name, prob] : rec) {
    (void)prob;
    EASYTIME_ASSIGN_OR_RETURN(methods::ForecasterPtr m,
                              methods::MethodRegistry::Global().Create(name));
    members.push_back(std::move(m));
    names.push_back(name);
  }
  return std::make_unique<EnsembleForecaster>(
      std::move(members), std::move(names), options_.val_fraction,
      options_.weight_shrinkage);
}

}  // namespace easytime::ensemble
