#include "ensemble/foundation.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/math_util.h"
#include "common/rng.h"
#include "methods/registry.h"
#include "methods/window_util.h"

namespace easytime::ensemble {

/// Shared immutable pretrained state. The encoder's cache-free inference
/// pass lets concurrent zero-shot predictions share one model without
/// locking.
struct FoundationForecaster::Model {
  std::unique_ptr<Ts2VecEncoder> encoder;
  std::vector<std::vector<double>> head;  ///< per-step (repr_dim + 1) coefs
  FoundationOptions options;

  /// Encoder representation of a z-normalized window: last-timestep row.
  std::vector<double> Represent(const std::vector<double>& window) const {
    nn::Matrix seq(window.size(), 1);
    for (size_t t = 0; t < window.size(); ++t) seq.at(t, 0) = window[t];
    nn::Matrix repr;
    encoder->EncodeConst(seq, &repr);
    return repr.Row(repr.rows() - 1);
  }
};

namespace {

/// z-normalizes a window; returns (normalized, mean, std).
std::vector<double> Normalize(const std::vector<double>& w, double* mean,
                              double* stddev) {
  *mean = Mean(w);
  *stddev = std::max(StdDev(w), 1e-9);
  std::vector<double> out(w.size());
  for (size_t i = 0; i < w.size(); ++i) out[i] = (w[i] - *mean) / *stddev;
  return out;
}

}  // namespace

FoundationForecaster::FoundationForecaster(std::shared_ptr<const Model> model)
    : model_(std::move(model)) {}

easytime::Status FoundationForecaster::Fit(const std::vector<double>& train,
                                           const methods::FitContext&) {
  if (model_ == nullptr) {
    return Status::Internal("foundation model not pretrained");
  }
  if (train.size() < 4) {
    return Status::InvalidArgument(
        "foundation forecaster needs at least 4 history points");
  }
  history_ = train;  // zero-shot: conditioning only, no training
  fitted_ = true;
  return Status::OK();
}

std::vector<double> FoundationForecaster::PredictWindow(
    const std::vector<double>& window) const {
  double mean = 0.0, stddev = 1.0;
  std::vector<double> z = Normalize(window, &mean, &stddev);
  std::vector<double> repr = model_->Represent(z);
  std::vector<double> out(model_->head.size());
  for (size_t h = 0; h < out.size(); ++h) {
    const auto& coefs = model_->head[h];
    double v = coefs[0];
    for (size_t j = 0; j < repr.size(); ++j) v += coefs[j + 1] * repr[j];
    out[h] = v * stddev + mean;  // undo the window normalization
  }
  return out;
}

easytime::Result<std::vector<double>> FoundationForecaster::Forecast(
    size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return methods::RecursiveMultiStep(
      history_, model_->options.lookback, model_->options.horizon, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

easytime::Result<std::vector<double>> FoundationForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (model_ == nullptr) {
    return Status::Internal("foundation model not pretrained");
  }
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return methods::RecursiveMultiStep(
      history, model_->options.lookback, model_->options.horizon, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

easytime::Result<std::shared_ptr<const FoundationForecaster::Model>>
PretrainFoundation(const std::vector<std::vector<double>>& corpus,
                   const FoundationOptions& options,
                   const Ts2VecOptions& encoder_options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("pretraining corpus must be non-empty");
  }
  if (options.lookback < 2 || options.horizon < 1) {
    return Status::InvalidArgument("invalid lookback/horizon");
  }

  auto model = std::make_shared<FoundationForecaster::Model>();
  model->options = options;
  model->encoder = std::make_unique<Ts2VecEncoder>(encoder_options);
  EASYTIME_RETURN_IF_ERROR(
      PretrainTs2Vec(model->encoder.get(), corpus).status());

  // Cross-corpus supervised head: encoder(last step of window) -> next
  // `horizon` values, all in per-window z-normalized space.
  Rng rng(options.seed);
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> targets;
  for (const auto& series : corpus) {
    auto wd = methods::MakeWindows(series, options.lookback, options.horizon);
    if (!wd.ok()) continue;  // series too short — skip
    std::vector<size_t> idx(wd->inputs.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    if (idx.size() > options.max_windows_per_series) {
      rng.Shuffle(&idx);
      idx.resize(options.max_windows_per_series);
    }
    for (size_t i : idx) {
      double mean = 0.0, stddev = 1.0;
      std::vector<double> z = Normalize(wd->inputs[i], &mean, &stddev);
      features.push_back(model->Represent(z));
      std::vector<double> y(options.horizon);
      for (size_t h = 0; h < options.horizon; ++h) {
        y[h] = (wd->targets[i][h] - mean) / stddev;
      }
      targets.push_back(std::move(y));
    }
  }
  if (features.size() < 8) {
    return Status::InvalidArgument(
        "corpus too small for foundation pretraining: only " +
        std::to_string(features.size()) + " windows");
  }

  size_t rows = features.size();
  size_t dim = features[0].size();
  size_t cols = dim + 1;
  std::vector<double> x(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    x[r * cols] = 1.0;
    std::copy(features[r].begin(), features[r].end(),
              x.begin() + static_cast<long>(r * cols + 1));
  }
  model->head.resize(options.horizon);
  std::vector<double> y(rows);
  for (size_t h = 0; h < options.horizon; ++h) {
    for (size_t r = 0; r < rows; ++r) y[r] = targets[r][h];
    EASYTIME_ASSIGN_OR_RETURN(model->head[h],
                              LeastSquares(x, y, rows, cols, options.l2));
  }
  return std::shared_ptr<const FoundationForecaster::Model>(std::move(model));
}

namespace {

struct FoundationSlot {
  std::mutex mu;
  std::shared_ptr<const FoundationForecaster::Model> model;
  bool factory_registered = false;
};

FoundationSlot& Slot() {
  static FoundationSlot* slot = new FoundationSlot();
  return *slot;
}

}  // namespace

easytime::Status RegisterFoundationMethod(
    std::shared_ptr<const FoundationForecaster::Model> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("foundation model must not be null");
  }
  auto& slot = Slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.model = std::move(model);
  if (!slot.factory_registered) {
    methods::MethodInfo info;
    info.name = "ts2vec_foundation";
    info.family = methods::Family::kDeepLearning;
    info.description =
        "zero-shot foundation model: pretrained TS2Vec encoder + "
        "cross-corpus ridge head";
    EASYTIME_RETURN_IF_ERROR(methods::MethodRegistry::Global().Register(
        std::move(info),
        [](const Json&) -> Result<methods::ForecasterPtr> {
          auto& s = Slot();
          std::lock_guard<std::mutex> l(s.mu);
          if (s.model == nullptr) {
            return Status::Internal("foundation model was unregistered");
          }
          return methods::ForecasterPtr(new FoundationForecaster(s.model));
        }));
    slot.factory_registered = true;
  }
  return Status::OK();
}

}  // namespace easytime::ensemble
