#pragma once

/// \file foundation.h
/// \brief Foundation-model support for the method layer. The paper's method
/// layer "facilitates the inclusion of statistical learning, machine
/// learning, deep learning, and foundation time series forecasting
/// methods"; this module provides the simplest genuine instance of the
/// class: a model pretrained once on the whole benchmark corpus and applied
/// zero-shot (no per-series training) to new series.
///
/// Architecture: the shared TS2Vec encoder maps the (z-normalized) lookback
/// window to its last-timestep representation; a ridge head trained across
/// every window of every corpus series maps representations to the next
/// `horizon` values. Fit() on a new series does NOT retrain anything — it
/// only records the history to condition on, which is what makes the method
/// a foundation model rather than a local one.

#include <memory>
#include <vector>

#include "common/result.h"
#include "ensemble/ts2vec.h"
#include "methods/forecaster.h"

namespace easytime::ensemble {

/// Pretraining configuration for the foundation forecaster.
struct FoundationOptions {
  size_t lookback = 48;    ///< context window fed to the encoder
  size_t horizon = 24;     ///< pretrained direct-forecast length
  double l2 = 1.0;         ///< ridge penalty of the head
  size_t max_windows_per_series = 32;  ///< training-window subsample cap
  uint64_t seed = 2024;
};

/// \brief A zero-shot forecaster around a shared pretrained encoder.
/// Instances are cheap handles onto immutable shared state, so one
/// pretrained model serves many concurrent evaluations.
class FoundationForecaster : public methods::Forecaster {
 public:
  /// Shared immutable pretrained state (encoder + head).
  struct Model;

  explicit FoundationForecaster(std::shared_ptr<const Model> model);

  /// Records the conditioning history; no training happens here.
  easytime::Status Fit(const std::vector<double>& train,
                       const methods::FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "ts2vec_foundation"; }
  methods::Family family() const override {
    return methods::Family::kDeepLearning;
  }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  std::shared_ptr<const Model> model_;
  std::vector<double> history_;
  bool fitted_ = false;
};

/// \brief Pretrains the foundation model on a corpus of raw series: trains
/// the TS2Vec encoder contrastively, then fits the ridge head on encoder
/// representations across every series.
/// \returns the shared model handle to construct forecasters from
easytime::Result<std::shared_ptr<const FoundationForecaster::Model>>
PretrainFoundation(const std::vector<std::vector<double>>& corpus,
                   const FoundationOptions& options = {},
                   const Ts2VecOptions& encoder_options = {});

/// \brief Registers the pretrained model as method "ts2vec_foundation" in
/// the global method registry, making it available to one-click evaluation,
/// the pipeline, and the Q&A knowledge base like any other method.
/// Idempotent: re-registering swaps the backing model.
easytime::Status RegisterFoundationMethod(
    std::shared_ptr<const FoundationForecaster::Model> model);

}  // namespace easytime::ensemble
