#pragma once

/// \file ts2vec.h
/// \brief TS2Vec-style universal time-series representation learning (Yue et
/// al., AAAI'22), scaled to CPU: an input projection plus a stack of
/// residual dilated causal convolutions, pretrained with the hierarchical
/// contrastive loss on two randomly-masked views of random crops. The paper
/// uses this encoder in the Automated Ensemble's offline phase to map
/// series to features the method classifier consumes.

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nn/contrastive.h"
#include "nn/layers.h"

namespace easytime::ensemble {

/// Encoder and pretraining hyperparameters.
struct Ts2VecOptions {
  size_t repr_dim = 16;       ///< output representation channels
  size_t hidden_dim = 24;     ///< conv channels
  size_t depth = 3;           ///< residual dilated blocks (dilation 2^i)
  size_t crop_length = 64;    ///< training crop length
  size_t batch_size = 8;
  size_t epochs = 12;
  double learning_rate = 1e-3;
  double mask_prob = 0.15;    ///< per-timestep input masking probability
  double alpha = 0.5;         ///< instance-vs-temporal loss weight
  uint64_t seed = 1234;
};

/// \brief The TS2Vec encoder: (T x 1) -> (T x repr_dim).
class Ts2VecEncoder {
 public:
  explicit Ts2VecEncoder(const Ts2VecOptions& options);

  /// Forward pass over a full (z-normalized) sequence.
  nn::Matrix Encode(const nn::Matrix& seq) { return net_.Forward(seq); }

  /// Cache-free forward pass into \p out; safe to call concurrently from
  /// multiple threads (used by the parallel batch encode in pretraining).
  void EncodeConst(const nn::Matrix& seq, nn::Matrix* out) const {
    net_.ForwardConst(seq, out);
  }

  /// Re-runs the forward pass for \p seq and backpropagates \p grad,
  /// accumulating parameter gradients.
  void Backprop(const nn::Matrix& seq, const nn::Matrix& grad);

  /// \brief Instance-level representation of a raw value sequence:
  /// z-normalizes, encodes, and max-pools over time. This is the feature
  /// vector handed to the method classifier. Thread-safe.
  std::vector<double> Represent(const std::vector<double>& values) const;

  std::vector<nn::Param*> Params() { return net_.Params(); }
  size_t repr_dim() const { return options_.repr_dim; }
  const Ts2VecOptions& options() const { return options_; }

 private:
  Ts2VecOptions options_;
  nn::Sequential net_;
  nn::Matrix fwd_ws_, bwd_ws_;  // Backprop scratch, reused across calls
};

/// Pretraining statistics per epoch.
struct Ts2VecTrainStats {
  std::vector<double> epoch_losses;
};

/// \brief Pretrains the encoder on a corpus of series (the offline phase of
/// Fig. 2). Each step samples a batch, crops a window per series, builds two
/// randomly-masked views, and minimizes the hierarchical contrastive loss.
/// View construction stays serial (it owns the RNG call order); the batch
/// encodes run on the shared thread pool, which cannot change the result
/// because each view's encode is independent and cache-free.
easytime::Result<Ts2VecTrainStats> PretrainTs2Vec(
    Ts2VecEncoder* encoder, const std::vector<std::vector<double>>& corpus);

}  // namespace easytime::ensemble
