#include "ensemble/classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace easytime::ensemble {

MethodClassifier::MethodClassifier(std::vector<std::string> method_names,
                                   size_t feature_dim,
                                   const ClassifierOptions& options)
    : methods_(std::move(method_names)),
      feature_dim_(feature_dim),
      options_(options) {
  Rng rng(options.seed);
  net_.Add(std::make_unique<nn::Linear>(feature_dim_, options_.hidden, &rng));
  net_.Add(std::make_unique<nn::ReLU>());
  net_.Add(std::make_unique<nn::Linear>(options_.hidden, options_.hidden, &rng));
  net_.Add(std::make_unique<nn::ReLU>());
  net_.Add(std::make_unique<nn::Linear>(options_.hidden, methods_.size(), &rng));
}

std::vector<double> MethodClassifier::SoftLabel(
    const std::vector<double>& errors, double temperature, bool hard) {
  size_t k = errors.size();
  if (k == 0) return {};
  if (hard) {
    std::vector<double> label(k, 0.0);
    label[ArgMin(errors)] = 1.0;
    return label;
  }
  // Standardize errors, then softmax of the negated scores.
  double m = Mean(errors);
  double sd = std::max(StdDev(errors), 1e-9);
  std::vector<double> neg(k);
  for (size_t i = 0; i < k; ++i) neg[i] = -(errors[i] - m) / sd;
  return Softmax(neg, temperature);
}

easytime::Status MethodClassifier::Train(
    const std::vector<ClassifierExample>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument("no classifier training examples");
  }
  for (const auto& ex : examples) {
    if (ex.features.size() != feature_dim_) {
      return Status::InvalidArgument(
          "feature dim mismatch: expected " + std::to_string(feature_dim_) +
          ", got " + std::to_string(ex.features.size()));
    }
  }

  // Per-example label assembly is independent, so it fans out over the
  // shared pool into index-stable slots; the serial compaction below keeps
  // the original example order. Examples with fewer than 2 method scores
  // are skipped.
  const size_t N = examples.size();
  std::vector<std::vector<double>> labels(N);
  std::vector<char> usable(N, 0);
  GlobalThreadPool().ParallelFor(N, [&](size_t e) {
    const auto& ex = examples[e];
    std::vector<double> errors(methods_.size(),
                               std::numeric_limits<double>::quiet_NaN());
    size_t have = 0;
    for (size_t i = 0; i < methods_.size(); ++i) {
      auto it = ex.method_errors.find(methods_[i]);
      if (it != ex.method_errors.end() && std::isfinite(it->second)) {
        errors[i] = it->second;
        ++have;
      }
    }
    if (have < 2) return;
    // Missing methods get the worst observed error (they never win).
    double worst = -1e300;
    for (double err : errors) {
      if (std::isfinite(err)) worst = std::max(worst, err);
    }
    for (auto& err : errors) {
      if (!std::isfinite(err)) err = worst * 1.5 + 1.0;
    }
    labels[e] = SoftLabel(errors, options_.label_temperature,
                          options_.hard_labels);
    usable[e] = 1;
  });

  size_t rows = 0;
  for (size_t e = 0; e < N; ++e) rows += usable[e];
  if (rows == 0) {
    return Status::InvalidArgument("no usable classifier training examples");
  }

  nn::Matrix x(rows, feature_dim_);
  nn::Matrix y(rows, methods_.size());
  size_t r = 0;
  for (size_t e = 0; e < N; ++e) {
    if (!usable[e]) continue;
    for (size_t c = 0; c < feature_dim_; ++c) {
      x.at(r, c) = examples[e].features[c];
    }
    for (size_t c = 0; c < methods_.size(); ++c) y.at(r, c) = labels[e][c];
    ++r;
  }

  nn::Adam opt(net_.Params(), options_.learning_rate);
  nn::Matrix logits, grad, grad_in, probs_ws;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    net_.ForwardInto(x, &logits);
    nn::SoftCrossEntropyLossInto(logits, y, &grad, &probs_ws);
    net_.BackwardInto(grad, &grad_in);
    opt.ClipGradNorm(5.0);
    opt.Step();
    opt.ZeroGrad();
  }
  trained_ = true;
  return Status::OK();
}

easytime::Result<std::vector<double>> MethodClassifier::Predict(
    const std::vector<double>& features) const {
  if (!trained_) return Status::Internal("Predict called before Train");
  if (features.size() != feature_dim_) {
    return Status::InvalidArgument("feature dim mismatch");
  }
  nn::Matrix x = nn::Matrix::FromVector(features);
  nn::Matrix logits;
  net_.ForwardConst(x, &logits);
  nn::Matrix probs = nn::RowSoftmax(logits);
  return probs.Row(0);
}

easytime::Result<std::vector<std::pair<std::string, double>>>
MethodClassifier::TopK(const std::vector<double>& features, size_t k) const {
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> probs, Predict(features));
  std::vector<size_t> idx(probs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return probs[a] > probs[b]; });
  std::vector<std::pair<std::string, double>> out;
  for (size_t i = 0; i < std::min(k, idx.size()); ++i) {
    out.emplace_back(methods_[idx[i]], probs[idx[i]]);
  }
  return out;
}

}  // namespace easytime::ensemble
