#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>

#include "common/logging.h"

namespace easytime {

namespace {
/// Set for the lifetime of each worker thread; lets ParallelFor detect
/// re-entry from one of its own workers and fall back to inline execution.
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ParallelFor(n, body, Schedule::kStatic);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             Schedule schedule) {
  if (n == 0) return;
  // Inline when there is no parallelism to gain or when called from one of
  // this pool's own workers (blocking a worker on work only other workers
  // can run deadlocks once every worker is inside such a call).
  if (n == 1 || workers_.empty() || InWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Chunked dispatch: participants claim contiguous grains off one atomic
  // counter. One task per worker at most; the caller works too.
  const size_t participants = workers_.size() + 1;
  const size_t grain = std::max<size_t>(1, n / (4 * participants));
  std::atomic<size_t> next{0};
  auto run_chunks = [&next, &body, n, grain, participants, schedule]() {
    if (schedule == Schedule::kGuided) {
      // Guided claiming: take half the remaining range per participant,
      // shrinking toward single iterations as the loop drains.
      size_t cur = next.load(std::memory_order_relaxed);
      for (;;) {
        if (cur >= n) return;
        const size_t chunk =
            std::max<size_t>(1, (n - cur) / (2 * participants));
        if (next.compare_exchange_weak(cur, cur + chunk,
                                       std::memory_order_relaxed)) {
          const size_t end = std::min(n, cur + chunk);
          for (size_t i = cur; i < end; ++i) body(i);
          cur = next.load(std::memory_order_relaxed);
        }
      }
    }
    for (;;) {
      const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) body(i);
    }
  };

  const size_t num_chunks = schedule == Schedule::kGuided
                                ? n  // upper bound; fanout only needs a cap
                                : (n + grain - 1) / grain;
  const size_t fanout = std::min(workers_.size(), num_chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(fanout);
  for (size_t t = 0; t < fanout; ++t) futures.push_back(Submit(run_chunks));

  // The caller participates; hold any exception until the workers drain so
  // no task outlives the shared state on this stack frame.
  std::exception_ptr caller_error;
  try {
    run_chunks();
  } catch (...) {
    caller_error = std::current_exception();
    next.store(n, std::memory_order_relaxed);  // stop remaining chunks early
  }
  std::exception_ptr task_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!task_error) task_error = std::current_exception();
    }
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (task_error) std::rethrow_exception(task_error);
}

size_t GlobalThreadPoolSizeOverride() {
  const char* env = std::getenv("EASYTIME_NUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  // Warn once per process, not once per pool: tests construct many pools
  // and a misconfigured environment should not flood the log.
  static std::once_flag warned;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) {
    std::call_once(warned, [env] {
      EASYTIME_LOG(Warning)
          << "EASYTIME_NUM_THREADS=\"" << env
          << "\" is not a positive integer; using hardware concurrency";
    });
    return 0;
  }
  // A huge value (typo, wrong unit) would spawn thousands of threads and
  // thrash or exhaust the process; clamp to a generous multiple of the
  // machine instead.
  const size_t hw = std::thread::hardware_concurrency();
  const size_t cap = std::max<size_t>(256, 4 * std::max<size_t>(1, hw));
  if (static_cast<size_t>(v) > cap) {
    std::call_once(warned, [env, cap] {
      EASYTIME_LOG(Warning) << "EASYTIME_NUM_THREADS=\"" << env
                            << "\" exceeds the sanity cap; clamping to "
                            << cap;
    });
    return cap;
  }
  return static_cast<size_t>(v);
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(GlobalThreadPoolSizeOverride());
  return pool;
}

}  // namespace easytime
