#include "common/thread_pool.h"

#include <atomic>

namespace easytime {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&body, i]() { body(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace easytime
