#pragma once

/// \file status.h
/// \brief Error model for EasyTime: a lightweight Status value (Arrow/RocksDB
/// idiom). Public APIs return Status (or Result<T>, see result.h) instead of
/// throwing exceptions across module boundaries.

#include <memory>
#include <string>
#include <utility>

namespace easytime {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kTypeError = 9,
  kUnsupported = 10,
  kUnavailable = 11,   ///< transient overload: retry later (admission control)
  kCancelled = 12,     ///< the operation was cancelled by the caller
  kDeadlineExceeded = 13,  ///< the request's deadline passed before completion
  kUnauthenticated = 14,   ///< missing or bad credentials (token auth)
};

/// One past the largest StatusCode value (for iterating the code space).
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kUnauthenticated) + 1;

/// \brief Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A Status is cheap to copy when OK (no allocation); error states carry a
/// code and a message. Use the factory functions (Status::OK(),
/// Status::InvalidArgument(...), ...) to construct.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief The success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// \brief The failure category; kOk when ok().
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// \brief The failure message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnauthenticated() const {
    return code() == StatusCode::kUnauthenticated;
  }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with \p context prepended to the message
  /// ("context: original message"). No-op on OK statuses.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

}  // namespace easytime

/// Propagates a non-OK Status to the caller.
#define EASYTIME_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::easytime::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define EASYTIME_CONCAT_IMPL(a, b) a##b
#define EASYTIME_CONCAT(a, b) EASYTIME_CONCAT_IMPL(a, b)

/// Evaluates an expression producing Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define EASYTIME_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto EASYTIME_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!EASYTIME_CONCAT(_res_, __LINE__).ok())                          \
    return EASYTIME_CONCAT(_res_, __LINE__).status();                  \
  lhs = std::move(EASYTIME_CONCAT(_res_, __LINE__)).ValueOrDie()
