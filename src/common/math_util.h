#pragma once

/// \file math_util.h
/// \brief Numeric building blocks: summary statistics, correlation,
/// autocorrelation, FFT, simple linear algebra (least squares), and moving
/// averages. These back the characteristics extractor, the statistical
/// forecasters, and the metrics layer.

#include <complex>
#include <cstddef>
#include <vector>

#include "common/result.h"

namespace easytime {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); 0 for n < 1.
double Variance(const std::vector<double>& v);

/// Population standard deviation.
double StdDev(const std::vector<double>& v);

/// Median (copies and partially sorts).
double Median(std::vector<double> v);

/// q-th quantile via linear interpolation, q in [0,1].
double Quantile(std::vector<double> v, double q);

/// \brief Inverse CDF of the standard normal distribution (Acklam's
/// rational approximation, |error| < 1.2e-9). p must lie in (0,1); the
/// endpoints return -/+infinity. Backs prediction-interval z-scores:
/// z = NormalQuantile((1 + confidence) / 2).
double NormalQuantile(double p);

/// Pearson correlation of two equal-length vectors; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Sample autocorrelation at \p lag (biased estimator, as in standard ACF).
double Autocorrelation(const std::vector<double>& v, size_t lag);

/// ACF for lags 0..max_lag inclusive.
std::vector<double> AcfUpTo(const std::vector<double>& v, size_t max_lag);

/// Centered moving average with window \p w (edges use shrinking windows);
/// the classic trend estimator used by decomposition.
std::vector<double> MovingAverage(const std::vector<double>& v, size_t w);

/// First difference: out[i] = v[i+1] - v[i].
std::vector<double> Difference(const std::vector<double>& v, size_t order = 1);

/// In-place iterative radix-2 FFT. Size must be a power of two.
Status Fft(std::vector<std::complex<double>>* data, bool inverse = false);

/// Power spectral density of \p v via FFT on the next power-of-two padding
/// (mean removed). Returns |X_k|^2 for k = 0..n/2.
std::vector<double> PowerSpectrum(const std::vector<double>& v);

/// \brief Solves the linear system A x = b for square A via Gaussian
/// elimination with partial pivoting. A is row-major n x n.
Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b,
                                              size_t n);

/// \brief Ordinary least squares: minimizes ||X beta - y||^2 with optional
/// L2 (ridge) regularization. X is row-major (rows x cols).
Result<std::vector<double>> LeastSquares(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         size_t rows, size_t cols,
                                         double l2 = 0.0);

/// Ordinary-least-squares fit of y = a + b * t against t = 0..n-1.
/// Returns {intercept, slope}.
std::pair<double, double> LinearTrendFit(const std::vector<double>& v);

/// Softmax with max-subtraction for stability.
std::vector<double> Softmax(const std::vector<double>& logits,
                            double temperature = 1.0);

/// Index of the maximum element (first on ties); 0 for empty.
size_t ArgMax(const std::vector<double>& v);

/// Index of the minimum element (first on ties); 0 for empty.
size_t ArgMin(const std::vector<double>& v);

/// Next power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

/// Ranks of elements in ascending order (average rank on ties), 1-based —
/// used by Spearman correlation and recommendation quality metrics.
std::vector<double> Ranks(const std::vector<double>& v);

/// Spearman rank correlation.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace easytime
