#pragma once

/// \file rng.h
/// \brief Deterministic random number generation. All stochastic code in
/// EasyTime draws from an explicitly seeded Rng so that tests, dataset
/// generation, NN initialization, and benches are reproducible.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace easytime {

/// \brief A seeded pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of \p v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child generator (for per-task determinism in
  /// parallel code).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace easytime
