#include "common/status.h"

namespace easytime {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "Invalid argument";
    case StatusCode::kNotFound: return "Not found";
    case StatusCode::kAlreadyExists: return "Already exists";
    case StatusCode::kOutOfRange: return "Out of range";
    case StatusCode::kNotImplemented: return "Not implemented";
    case StatusCode::kInternal: return "Internal error";
    case StatusCode::kIOError: return "IO error";
    case StatusCode::kParseError: return "Parse error";
    case StatusCode::kTypeError: return "Type error";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "Deadline exceeded";
    case StatusCode::kUnauthenticated: return "Unauthenticated";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace easytime
