#pragma once

/// \file json.h
/// \brief A small JSON value type + parser + serializer. Used for pipeline
/// configuration files (the paper's "configuration file" the user edits) and
/// the Q&A module's structured chart outputs.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace easytime {

/// \brief A JSON document node (null / bool / number / string / array /
/// object). Objects preserve insertion order of keys.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}                 // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}            // NOLINT
  Json(int n) : type_(Type::kNumber), num_(n) {}               // NOLINT
  Json(int64_t n)                                              // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}       // NOLINT

  /// Creates an empty array node.
  static Json Array();
  /// Creates an empty object node.
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }

  /// Array access.
  const std::vector<Json>& items() const { return arr_; }
  void Append(Json v) { arr_.push_back(std::move(v)); }
  size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? keys_.size() : 0);
  }

  /// Object access: ordered keys.
  const std::vector<std::string>& keys() const { return keys_; }
  bool Has(const std::string& key) const;
  /// Returns the member or a shared null node when absent.
  const Json& Get(const std::string& key) const;
  /// Inserts or overwrites a member.
  void Set(const std::string& key, Json v);

  /// Typed getters with defaults — the idiom for reading config files.
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Serializes; \p indent > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document (strict; trailing garbage is an error).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::string> keys_;
  std::map<std::string, Json> obj_;
};

}  // namespace easytime
