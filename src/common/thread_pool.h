#pragma once

/// \file thread_pool.h
/// \brief Fixed-size worker pool used by the benchmark pipeline to evaluate
/// (method, dataset) pairs in parallel, plus a chunked ParallelFor.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace easytime {

/// \brief How ParallelFor carves the iteration space into grains.
enum class Schedule {
  /// Fixed grain size picked at dispatch (n / (4 * participants)). Lowest
  /// claiming overhead; best when per-index costs are uniform.
  kStatic,
  /// Decreasing grain sizes: each claim takes half of the remaining
  /// iterations divided by the participant count, down to a minimum of 1.
  /// Large chunks early amortize the atomic traffic, small chunks late keep
  /// the tail balanced — the right trade when per-index costs are skewed
  /// (e.g. the pipeline fan-out, where one (method, dataset) pair can cost
  /// 100x another).
  kGuided,
};

/// \brief A simple FIFO thread pool. Tasks are std::function<void()>; use
/// Submit() for futures or ParallelFor for data-parallel loops.
class ThreadPool {
 public:
  /// Creates \p num_threads workers (defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto Submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// \brief Runs body(i) for i in [0, n), distributing across the pool and
  /// blocking until all iterations complete.
  ///
  /// Iterations are claimed in contiguous grains off a shared atomic counter,
  /// so only one task per worker is enqueued regardless of n, and the calling
  /// thread participates in the work instead of idling. When called from
  /// inside one of this pool's own workers the loop executes inline — the
  /// old one-future-per-index implementation would block that worker on
  /// futures no other worker could ever run (deadlock once all workers were
  /// inside such a call).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// ParallelFor with an explicit schedule (see Schedule). The two-argument
  /// overload is kStatic.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   Schedule schedule);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Process-wide shared pool (lazily created, hardware-concurrency
/// sized). Used by the NN kernels and the training loops so they draw from
/// one set of workers instead of each spinning up their own.
///
/// The size can be pinned with the EASYTIME_NUM_THREADS environment variable
/// (a positive integer; malformed or non-positive values are ignored) —
/// serving deployments use it to match the pool to their CPU quota, and the
/// 1-core CI box uses it to keep worker counts deterministic. It is read
/// once, at first use.
ThreadPool& GlobalThreadPool();

/// \brief The EASYTIME_NUM_THREADS override, or 0 when unset/invalid
/// (0 lets ThreadPool fall back to hardware concurrency).
size_t GlobalThreadPoolSizeOverride();

}  // namespace easytime
