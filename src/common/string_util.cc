#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace easytime {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view s, std::string_view needle) {
  std::string a = ToLower(s), b = ToLower(needle);
  return a.find(b) != std::string::npos;
}

Result<double> ParseDouble(std::string_view s) {
  std::string t = Trim(s);
  if (t.empty()) return Status::ParseError("empty string is not a number");
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) {
    return Status::ParseError("not a valid double: '" + t + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string t = Trim(s);
  if (t.empty()) return Status::ParseError("empty string is not an integer");
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    return Status::ParseError("not a valid integer: '" + t + "'");
  }
  return v;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  size_t ncols = header.size();
  std::vector<size_t> width(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < ncols && c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < ncols; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header);
  std::string rule = "|";
  for (size_t c = 0; c < ncols; ++c) rule += std::string(width[c] + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  std::string t = ToLower(text), p = ToLower(pattern);
  // Iterative wildcard match with backtracking on '%'.
  size_t ti = 0, pi = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (ti < t.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == t[ti])) {
      ++ti;
      ++pi;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') ++pi;
  return pi == p.size();
}

}  // namespace easytime

namespace easytime {

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= bytes.size()) {
    uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                 (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                 static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
    i += 3;
  }
  const size_t rem = bytes.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                 (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length must be a multiple of 4");
  }
  static const auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding only in the last quantum's final two slots.
        if (!last || j < 2) {
          return Status::InvalidArgument("base64 padding misplaced");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return Status::InvalidArgument("base64 data after padding");
      }
      int d = value_of(c);
      if (d < 0) {
        return Status::InvalidArgument("invalid base64 character");
      }
      v = (v << 6) | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

}  // namespace easytime
