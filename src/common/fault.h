#pragma once

/// \file fault.h
/// \brief Deterministic fault injection for robustness testing. Named fault
/// points are compiled into production code paths (serve dispatch, pipeline
/// pairs, TCP read/write, ...) and cost a single relaxed atomic load while
/// nothing is armed. Arming a point — programmatically via
/// FaultRegistry::Arm or at process start via the EASYTIME_FAULTS
/// environment variable — makes the point inject errors, latency, or NaN
/// payload corruption at a configured rate, so shutdown drains, retries,
/// circuit breakers, and checkpoint resume can be exercised without real
/// infrastructure failures.
///
/// Env syntax (comma-separated):
///   EASYTIME_FAULTS=point:kind:rate[:param][,point:kind:rate[:param]...]
/// where kind is one of
///   error        inject Status::Internal           (param unused)
///   unavailable  inject Status::Unavailable        (param unused)
///   ioerror      inject Status::IOError            (param unused)
///   delay        sleep inline, then continue       (param = delay ms, default 5)
///   nan          flag payload corruption to caller (param unused)
/// and rate is the per-pass trigger probability in [0, 1].
/// Example: EASYTIME_FAULTS=serve.execute:unavailable:0.1,pipeline.pair:delay:0.5:20

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace easytime {

/// What an armed fault point does when it triggers.
enum class FaultKind {
  kError,  ///< return an error Status (code configurable via FaultSpec::code)
  kDelay,  ///< sleep delay_ms inline, then proceed normally
  kNan,    ///< proceed, but tell the caller to corrupt its payload with NaNs
};

/// Configuration of one armed fault point.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  double rate = 1.0;  ///< per-pass trigger probability in [0, 1]
  StatusCode code = StatusCode::kInternal;  ///< injected code for kError
  std::string message;     ///< injected message ("" = a default is composed)
  double delay_ms = 5.0;   ///< injected latency for kDelay
  int64_t max_triggers = -1;  ///< stop firing after this many hits; -1 = unlimited
};

/// Observed activity of one fault point since it was armed.
struct FaultPointStats {
  uint64_t passes = 0;    ///< times an armed point was evaluated
  uint64_t triggers = 0;  ///< times the fault actually fired
};

/// \brief Process-wide registry of armed fault points.
///
/// Thread safety: all methods are safe to call concurrently; the hot-path
/// gate AnyArmed() is lock-free and the slow path takes one mutex.
class FaultRegistry {
 public:
  /// The process singleton. First access arms any faults named in the
  /// EASYTIME_FAULTS environment variable.
  static FaultRegistry& Global();

  /// \brief Lock-free hot-path gate: false whenever no point is armed, in
  /// which case EASYTIME_FAULT_POINT is a single relaxed load and a
  /// predictable branch.
  static bool AnyArmed() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms) \p point with \p spec. Rejects rates outside [0, 1].
  Status Arm(const std::string& point, FaultSpec spec);

  /// Disarms one point; returns whether it was armed.
  bool Disarm(const std::string& point);

  /// Disarms everything (test teardown).
  void DisarmAll();

  /// Reseeds the trigger RNG so probabilistic runs are reproducible.
  void Reseed(uint64_t seed);

  /// Parses an EASYTIME_FAULTS-syntax list and arms every entry.
  Status ArmFromSpec(const std::string& spec_list);

  /// Parses without arming (exposed for tests of the env-var syntax).
  static Result<std::vector<std::pair<std::string, FaultSpec>>> ParseSpecList(
      const std::string& spec_list);

  /// \brief The slow-path check, called only when AnyArmed(). Sleeps inline
  /// for delay faults; returns the injected Status for error faults; sets
  /// \p *corrupt for NaN faults (callers that pass nullptr ignore them).
  Status Check(const char* point, bool* corrupt = nullptr);

  /// Activity counters for \p point (zeros when not armed).
  FaultPointStats PointStats(const std::string& point) const;

  /// Names of currently armed points.
  std::vector<std::string> ArmedPoints() const;

 private:
  FaultRegistry();

  struct Entry {
    FaultSpec spec;
    FaultPointStats stats;
  };

  // Static so the AnyArmed() gate needs no singleton access on the hot path.
  static std::atomic<int> armed_points_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> points_;
  std::mt19937_64 rng_{0x5eed5eedULL};
};

}  // namespace easytime

/// \brief Injects a fault at a named point inside any function returning
/// Status or Result<T>. Zero-cost (one relaxed atomic load) when nothing is
/// armed; error faults propagate as the function's error return.
#define EASYTIME_FAULT_POINT(name)                                   \
  do {                                                               \
    if (::easytime::FaultRegistry::AnyArmed()) {                     \
      ::easytime::Status _easytime_fault_st =                        \
          ::easytime::FaultRegistry::Global().Check(name);           \
      if (!_easytime_fault_st.ok()) return _easytime_fault_st;       \
    }                                                                \
  } while (0)
