#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <mutex>

namespace easytime {

namespace {

struct LogState {
  std::mutex mu;
  LogLevel level = LogLevel::kInfo;
  std::ofstream file;
  bool use_file = false;
};

LogState& State() {
  static LogState state;
  return state;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string Basename(const std::string& path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

void Logging::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().level = level;
}

LogLevel Logging::GetLevel() {
  std::lock_guard<std::mutex> lock(State().mu);
  return State().level;
}

void Logging::SetLogFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(State().mu);
  auto& s = State();
  if (s.file.is_open()) s.file.close();
  if (path.empty()) {
    s.use_file = false;
    return;
  }
  s.file.open(path, std::ios::app);
  s.use_file = s.file.is_open();
}

void Logging::Emit(LogLevel level, const std::string& file, int line,
                   const std::string& msg) {
  auto& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (static_cast<int>(level) < static_cast<int>(s.level)) return;

  auto now = std::chrono::system_clock::now();
  std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&tt, &tm);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d", tm.tm_hour, tm.tm_min,
                tm.tm_sec);

  std::ostream& out = s.use_file ? static_cast<std::ostream&>(s.file)
                                 : std::cerr;
  out << "[" << ts << " " << LevelName(level) << " " << Basename(file) << ":"
      << line << "] " << msg << "\n";
  out.flush();
}

}  // namespace easytime
