#pragma once

/// \file subprocess.h
/// \brief Child-process spawn/supervise utility for the cluster tier
/// (DESIGN.md §14). The supervisor fork+execs worker binaries, polls their
/// liveness without blocking, and tears them down with an escalating
/// TERM-then-KILL. Nothing here is cluster-specific: it is the common
/// layer's "job pool for processes".
///
/// fork() in a multithreaded parent is safe here because the child calls
/// only async-signal-safe functions (dup2/open/execv/_exit) between fork
/// and exec.

#include <string>
#include <sys/types.h>
#include <vector>

#include "common/result.h"

namespace easytime {

/// \brief One spawned child process. Move-only; the destructor does NOT
/// kill the child (supervision policy belongs to the owner — call
/// Terminate() for that).
class Subprocess {
 public:
  struct Options {
    /// Extra environment entries ("KEY=VALUE") appended to the parent's
    /// environment for the child.
    std::vector<std::string> env;
    /// Redirect the child's stdout/stderr to this file (append mode);
    /// empty inherits the parent's streams.
    std::string log_path;
  };

  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }
  Subprocess& operator=(Subprocess&& other) noexcept {
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    exit_status_ = other.exit_status_;
    other.pid_ = -1;
    return *this;
  }
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// \brief Spawns \p argv[0] with arguments \p argv (argv[0] is the binary
  /// path). Returns InvalidArgument for an empty argv and IOError when the
  /// fork fails; an exec failure surfaces as the child exiting 127 (the
  /// shell convention), observable via Poll().
  static easytime::Result<Subprocess> Spawn(
      const std::vector<std::string>& argv, const Options& options = {});

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  /// \brief Non-blocking liveness check: true while the child has not been
  /// reaped. A child that exited is reaped here (no zombies) and false is
  /// returned from then on.
  bool Alive();

  /// Sends \p sig (default SIGKILL). No-op once reaped.
  easytime::Status Kill(int sig);

  /// \brief Blocks until the child exits (reaping it) or \p timeout_ms
  /// elapses; returns true when the child is gone. 0 polls once.
  bool WaitExit(double timeout_ms);

  /// \brief Graceful stop: SIGTERM, wait up to \p grace_ms, then SIGKILL
  /// and reap. Safe to call on an already-dead child.
  void Terminate(double grace_ms = 2000.0);

  /// Raw wait status from the reap (valid once Alive() turned false).
  int exit_status() const { return exit_status_; }

  /// True when the child was terminated by a signal.
  bool signaled() const;

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  int exit_status_ = 0;
};

}  // namespace easytime
