#include "common/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

extern char** environ;

namespace easytime {

easytime::Result<Subprocess> Subprocess::Spawn(
    const std::vector<std::string>& argv, const Options& options) {
  if (argv.empty()) {
    return Status::InvalidArgument("Subprocess::Spawn needs an argv[0]");
  }
  // Build the exec vectors before forking — only async-signal-safe calls may
  // run between fork and exec in a multithreaded parent.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  std::vector<char*> cenv;
  if (!options.env.empty()) {
    for (char** e = environ; *e != nullptr; ++e) cenv.push_back(*e);
    for (const auto& kv : options.env) {
      cenv.push_back(const_cast<char*>(kv.c_str()));
    }
    cenv.push_back(nullptr);
  }

  int log_fd = -1;
  if (!options.log_path.empty()) {
    log_fd = ::open(options.log_path.c_str(),
                    O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log_fd < 0) {
      return Status::IOError("cannot open subprocess log " +
                             options.log_path + ": " + std::strerror(errno));
    }
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    if (log_fd >= 0) ::close(log_fd);
    return Status::IOError(std::string("fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Async-signal-safe territory until exec.
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    if (cenv.empty()) {
      ::execv(cargv[0], cargv.data());
    } else {
      ::execve(cargv[0], cargv.data(), cenv.data());
    }
    _exit(127);  // exec failed
  }
  if (log_fd >= 0) ::close(log_fd);
  Subprocess p;
  p.pid_ = pid;
  return p;
}

bool Subprocess::Alive() {
  if (pid_ <= 0 || reaped_) return false;
  int status = 0;
  pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) return true;
  if (r == pid_) {
    reaped_ = true;
    exit_status_ = status;
    return false;
  }
  // ECHILD etc.: treat as gone, nothing to reap.
  reaped_ = true;
  return false;
}

easytime::Status Subprocess::Kill(int sig) {
  if (pid_ <= 0 || reaped_) return Status::OK();
  if (::kill(pid_, sig) != 0 && errno != ESRCH) {
    return Status::Internal(std::string("kill failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

bool Subprocess::WaitExit(double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    if (!Alive()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Subprocess::Terminate(double grace_ms) {
  if (pid_ <= 0 || reaped_) return;
  (void)Kill(SIGTERM);
  if (WaitExit(grace_ms)) return;
  (void)Kill(SIGKILL);
  WaitExit(10000.0);
}

bool Subprocess::signaled() const {
  return reaped_ && WIFSIGNALED(exit_status_);
}

}  // namespace easytime
