#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace easytime {

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::Has(const std::string& key) const {
  return obj_.find(key) != obj_.end();
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNullNode;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNullNode : it->second;
}

void Json::Set(const std::string& key, Json v) {
  if (obj_.find(key) == obj_.end()) keys_.push_back(key);
  obj_[key] = std::move(v);
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json& v = Get(key);
  return v.is_number() ? v.AsDouble() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json& v = Get(key);
  return v.is_number() ? v.AsInt() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json& v = Get(key);
  return v.is_bool() ? v.AsBool() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json& v = Get(key);
  return v.is_string() ? v.AsString() : fallback;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

std::string FormatNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that round-trips exactly: most values fit in 12
  // significant digits (keeping output identical to the historical format);
  // the rest widen until strtod gives the same bits back, so persisted
  // metrics reload without drift (DESIGN.md §9).
  char buf[64];
  for (int precision = 12; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += FormatNumber(num_); break;
    case Type::kString: EscapeString(str_, out); break;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) *out += ',';
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < keys_.size(); ++i) {
        if (i) *out += ',';
        newline(depth + 1);
        EscapeString(keys_[i], out);
        *out += indent > 0 ? ": " : ":";
        obj_.at(keys_[i]).DumpTo(out, indent, depth + 1);
      }
      if (!keys_.empty()) newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    EASYTIME_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        EASYTIME_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json(true);
        }
        return Err("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json(false);
        }
        return Err("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json(nullptr);
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid number");
    std::string num = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Err("invalid number");
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad \\u escape digit");
            }
            // UTF-8 encode (BMP only; surrogate pairs not combined).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      EASYTIME_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      EASYTIME_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      SkipWhitespace();
      EASYTIME_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace easytime
