#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace easytime {

std::atomic<int> FaultRegistry::armed_points_{0};

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("EASYTIME_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    // Arm directly (cannot use Global() — we are inside its construction).
    Status st = ArmFromSpec(env);
    if (!st.ok()) {
      // A malformed env var must not take the process down; it is ignored
      // loudly on stderr (logging may not be configured yet).
      std::fprintf(stderr, "EASYTIME_FAULTS ignored: %s\n",
                   st.ToString().c_str());
    }
  }
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

namespace {
// Construct the registry (and parse EASYTIME_FAULTS) at process start. The
// fault-point gate checks the static armed counter before ever touching
// Global(), so without this eager touch an env-armed process would never
// read the variable — the gate would stay closed forever.
[[maybe_unused]] const bool kEnvFaultsLoaded =
    (FaultRegistry::Global(), true);
}  // namespace

Status FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  if (point.empty()) {
    return Status::InvalidArgument("fault point name must be non-empty");
  }
  if (!(spec.rate >= 0.0 && spec.rate <= 1.0)) {
    return Status::InvalidArgument("fault rate must be in [0, 1], got " +
                                   std::to_string(spec.rate));
  }
  if (spec.delay_ms < 0.0) {
    return Status::InvalidArgument("fault delay must be non-negative");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, Entry{spec, {}});
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) == 0) return false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

void FaultRegistry::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
}

Status FaultRegistry::ArmFromSpec(const std::string& spec_list) {
  EASYTIME_ASSIGN_OR_RETURN(auto specs, ParseSpecList(spec_list));
  for (auto& [point, spec] : specs) {
    EASYTIME_RETURN_IF_ERROR(Arm(point, spec));
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, FaultSpec>>>
FaultRegistry::ParseSpecList(const std::string& spec_list) {
  std::vector<std::pair<std::string, FaultSpec>> out;
  for (const std::string& item : Split(spec_list, ',')) {
    std::string entry = Trim(item);
    if (entry.empty()) continue;
    std::vector<std::string> fields = Split(entry, ':');
    if (fields.size() < 3 || fields.size() > 4) {
      return Status::ParseError(
          "fault spec '" + entry +
          "' is not point:kind:rate[:param] (see common/fault.h)");
    }
    FaultSpec spec;
    const std::string kind = ToLower(Trim(fields[1]));
    if (kind == "error") {
      spec.kind = FaultKind::kError;
      spec.code = StatusCode::kInternal;
    } else if (kind == "unavailable") {
      spec.kind = FaultKind::kError;
      spec.code = StatusCode::kUnavailable;
    } else if (kind == "ioerror") {
      spec.kind = FaultKind::kError;
      spec.code = StatusCode::kIOError;
    } else if (kind == "delay") {
      spec.kind = FaultKind::kDelay;
    } else if (kind == "nan") {
      spec.kind = FaultKind::kNan;
    } else {
      return Status::ParseError("unknown fault kind '" + fields[1] +
                                "' in spec '" + entry + "'");
    }
    try {
      spec.rate = std::stod(Trim(fields[2]));
    } catch (...) {
      return Status::ParseError("bad fault rate '" + fields[2] + "' in spec '" +
                                entry + "'");
    }
    if (!(spec.rate >= 0.0 && spec.rate <= 1.0)) {
      return Status::ParseError("fault rate out of [0, 1] in spec '" + entry +
                                "'");
    }
    if (fields.size() == 4) {
      double param = 0.0;
      try {
        param = std::stod(Trim(fields[3]));
      } catch (...) {
        return Status::ParseError("bad fault param '" + fields[3] +
                                  "' in spec '" + entry + "'");
      }
      if (spec.kind == FaultKind::kDelay) {
        spec.delay_ms = param;
      } else {
        spec.max_triggers = static_cast<int64_t>(param);
      }
    }
    std::string point = Trim(fields[0]);
    if (point.empty()) {
      return Status::ParseError("empty fault point name in spec '" + entry +
                                "'");
    }
    out.emplace_back(std::move(point), spec);
  }
  if (out.empty()) {
    return Status::ParseError("fault spec list is empty");
  }
  return out;
}

Status FaultRegistry::Check(const char* point, bool* corrupt) {
  FaultKind kind;
  double delay_ms = 0.0;
  Status injected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    Entry& e = it->second;
    ++e.stats.passes;
    if (e.spec.max_triggers >= 0 &&
        e.stats.triggers >= static_cast<uint64_t>(e.spec.max_triggers)) {
      return Status::OK();  // budget exhausted; point stays armed for stats
    }
    if (e.spec.rate < 1.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(rng_) >= e.spec.rate) return Status::OK();
    }
    ++e.stats.triggers;
    kind = e.spec.kind;
    delay_ms = e.spec.delay_ms;
    if (kind == FaultKind::kError) {
      std::string msg = e.spec.message.empty()
                            ? "injected fault at '" + std::string(point) + "'"
                            : e.spec.message;
      injected = Status(e.spec.code, std::move(msg));
    }
  }
  switch (kind) {
    case FaultKind::kError:
      return injected;
    case FaultKind::kDelay:
      // Sleep outside the lock so concurrent checks don't serialize.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
      return Status::OK();
    case FaultKind::kNan:
      if (corrupt != nullptr) *corrupt = true;
      return Status::OK();
  }
  return Status::OK();
}

FaultPointStats FaultRegistry::PointStats(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? FaultPointStats{} : it->second.stats;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, _] : points_) out.push_back(name);
  return out;
}

}  // namespace easytime
