#pragma once

/// \file bounded_queue.h
/// \brief A closable bounded MPMC queue — the admission-control primitive of
/// the serving layer. Producers use non-blocking TryPush (a full queue means
/// the caller should reject the request, not wait), consumers block on Pop.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace easytime {

/// \brief Fixed-capacity FIFO queue shared between producer and consumer
/// threads. Closing the queue rejects further pushes while letting consumers
/// drain what is already queued — the shape graceful shutdown needs.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Enqueues \p value unless the queue is full or closed.
  /// \returns false on rejection (the value is left untouched in that case
  /// only as far as the queue is concerned — it is not consumed).
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available or the queue is closed and
  /// drained; nullopt signals the consumer should exit.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// \brief Like Pop but gives up after \p timeout; nullopt then means
  /// either "timed out" or "closed and drained" — check closed() to tell.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [this]() { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Rejects future pushes and wakes all blocked consumers. Items already
  /// queued remain poppable (drain semantics).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace easytime
