#pragma once

/// \file csv.h
/// \brief CSV reading/writing with RFC-4180-style quoting. Used by the data
/// layer (dataset loading) and the knowledge base (result persistence).

#include <string>
#include <vector>

#include "common/result.h"

namespace easytime {

/// \brief An in-memory CSV document: a header row plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text. Handles quoted fields, embedded separators,
/// escaped quotes (""), and both \n and \r\n line endings.
/// \param text the raw document
/// \param has_header when true the first row becomes CsvDocument::header
Result<CsvDocument> ParseCsv(const std::string& text, bool has_header = true);

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path,
                                bool has_header = true);

/// Serializes a document (quoting fields when needed).
std::string WriteCsv(const CsvDocument& doc);

/// Writes a document to disk, creating/truncating \p path.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace easytime
