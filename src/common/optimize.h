#pragma once

/// \file optimize.h
/// \brief Derivative-free and constrained optimizers: Nelder–Mead simplex
/// (used to fit ARIMA/ETS/Holt-Winters smoothing parameters) and
/// simplex-constrained weight learning (used to fit ensemble weights on the
/// validation split, Fig. 2 of the paper).

#include <functional>
#include <vector>

#include "common/result.h"

namespace easytime {

/// Options for NelderMead.
struct NelderMeadOptions {
  int max_iterations = 500;
  double tolerance = 1e-8;      ///< stop when simplex f-spread is below this
  double initial_step = 0.1;    ///< per-coordinate initial simplex offset
  /// Cooperative cancellation: polled once per main-loop iteration; when it
  /// returns true the search stops and the result is flagged `stopped` (the
  /// best vertex so far is still returned). Callers wire a DeadlineChecker
  /// here so smoothing-parameter searches abort mid-fit.
  std::function<bool()> should_stop;
};

/// Outcome of a Nelder–Mead run.
struct NelderMeadResult {
  std::vector<double> x;  ///< best point found
  double fx = 0.0;        ///< objective at x
  int iterations = 0;
  bool converged = false;
  bool stopped = false;   ///< should_stop() fired before convergence
};

/// \brief Minimizes \p f starting from \p x0 with the Nelder–Mead simplex.
/// \p f must be defined everywhere (use penalties for constraints).
NelderMeadResult NelderMead(const std::function<double(const std::vector<double>&)>& f,
                            const std::vector<double>& x0,
                            const NelderMeadOptions& options = {});

/// \brief Learns convex-combination weights w (w_i >= 0, sum w = 1) that
/// minimize ||sum_i w_i * preds[i] - target||^2 via exponentiated-gradient
/// descent. This is the ensemble-weight learner: preds[i] is member i's
/// forecast on the validation split.
/// \returns weights of size preds.size()
Result<std::vector<double>> LearnSimplexWeights(
    const std::vector<std::vector<double>>& preds,
    const std::vector<double>& target, int max_iterations = 500,
    double learning_rate = 0.5);

}  // namespace easytime
