#pragma once

/// \file stopwatch.h
/// \brief Wall-clock timing for the reporting layer and benches.

#include <chrono>

namespace easytime {

/// \brief Measures elapsed wall time from construction (or the last Reset).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace easytime
