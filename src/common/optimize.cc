#include "common/optimize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace easytime {

NelderMeadResult NelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  const size_t n = x0.size();
  NelderMeadResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Standard coefficients.
  const double alpha = 1.0;   // reflection
  const double gamma = 2.0;   // expansion
  const double rho = 0.5;     // contraction
  const double sigma = 0.5;   // shrink

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] += (x0[i] != 0.0 ? options.initial_step * std::fabs(x0[i])
                                       : options.initial_step);
  }
  std::vector<double> fv(n + 1);
  for (size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  int iter = 0;
  bool stopped = false;
  for (; iter < options.max_iterations; ++iter) {
    if (options.should_stop && options.should_stop()) {
      stopped = true;
      break;
    }
    // Order simplex by objective.
    std::vector<size_t> order(n + 1);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return fv[a] < fv[b]; });
    std::vector<std::vector<double>> s2(n + 1);
    std::vector<double> f2(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      s2[i] = simplex[order[i]];
      f2[i] = fv[order[i]];
    }
    simplex = std::move(s2);
    fv = std::move(f2);

    if (std::fabs(fv[n] - fv[0]) < options.tolerance) break;

    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](const std::vector<double>& from, double coef) {
      std::vector<double> out(n);
      for (size_t j = 0; j < n; ++j) {
        out[j] = centroid[j] + coef * (from[j] - centroid[j]);
      }
      return out;
    };

    std::vector<double> xr = blend(simplex[n], -alpha);
    double fr = f(xr);
    if (fr < fv[0]) {
      std::vector<double> xe = blend(simplex[n], -gamma);
      double fe = f(xe);
      if (fe < fr) {
        simplex[n] = std::move(xe);
        fv[n] = fe;
      } else {
        simplex[n] = std::move(xr);
        fv[n] = fr;
      }
    } else if (fr < fv[n - 1]) {
      simplex[n] = std::move(xr);
      fv[n] = fr;
    } else {
      std::vector<double> xc = blend(simplex[n], rho);
      double fc = f(xc);
      if (fc < fv[n]) {
        simplex[n] = std::move(xc);
        fv[n] = fc;
      } else {
        // Shrink toward best.
        for (size_t i = 1; i <= n; ++i) {
          for (size_t j = 0; j < n; ++j) {
            simplex[i][j] = simplex[0][j] + sigma * (simplex[i][j] - simplex[0][j]);
          }
          fv[i] = f(simplex[i]);
        }
      }
    }
  }

  size_t best = static_cast<size_t>(
      std::distance(fv.begin(), std::min_element(fv.begin(), fv.end())));
  result.x = simplex[best];
  result.fx = fv[best];
  result.iterations = iter;
  result.stopped = stopped;
  result.converged = !stopped && iter < options.max_iterations;
  return result;
}

Result<std::vector<double>> LearnSimplexWeights(
    const std::vector<std::vector<double>>& preds,
    const std::vector<double>& target, int max_iterations,
    double learning_rate) {
  const size_t k = preds.size();
  if (k == 0) return Status::InvalidArgument("no ensemble members");
  const size_t n = target.size();
  for (const auto& p : preds) {
    if (p.size() != n) {
      return Status::InvalidArgument(
          "ensemble member prediction length mismatch");
    }
  }
  if (n == 0) return Status::InvalidArgument("empty validation target");

  std::vector<double> w(k, 1.0 / static_cast<double>(k));
  double scale = 0.0;
  for (double t : target) scale += t * t;
  scale = std::max(scale / static_cast<double>(n), 1e-9);

  std::vector<double> combo(n);
  for (int it = 0; it < max_iterations; ++it) {
    std::fill(combo.begin(), combo.end(), 0.0);
    for (size_t i = 0; i < k; ++i) {
      for (size_t t = 0; t < n; ++t) combo[t] += w[i] * preds[i][t];
    }
    // Gradient of MSE w.r.t. w_i, normalized by target energy.
    std::vector<double> grad(k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      double g = 0.0;
      for (size_t t = 0; t < n; ++t) {
        g += 2.0 * (combo[t] - target[t]) * preds[i][t];
      }
      grad[i] = g / (static_cast<double>(n) * scale);
    }
    // Exponentiated gradient step keeps w on the simplex.
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      w[i] *= std::exp(-learning_rate * std::clamp(grad[i], -50.0, 50.0));
      sum += w[i];
    }
    if (sum <= 0.0 || !std::isfinite(sum)) {
      std::fill(w.begin(), w.end(), 1.0 / static_cast<double>(k));
      break;
    }
    for (auto& wi : w) wi /= sum;
  }
  return w;
}

}  // namespace easytime
