#pragma once

/// \file deadline.h
/// \brief A wall-clock deadline carried with a request. Serve requests set
/// one from their "deadline_ms" parameter; it propagates through the facade
/// into pipeline::RunHooks and the evaluator's cooperative checks, so a slow
/// request times out with Status::DeadlineExceeded instead of occupying a
/// worker forever. A default-constructed Deadline is infinite (never
/// expires), which keeps it zero-config for callers that don't care.

#include <chrono>
#include <cstdint>
#include <limits>

namespace easytime {

/// \brief Point in time after which work on a request should stop. Cheap to
/// copy; checks are a single steady_clock read.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() : tp_(Clock::time_point::max()) {}

  /// The infinite deadline, spelled explicitly.
  static Deadline Infinite() { return Deadline(); }

  /// Expires \p ms milliseconds from now (non-positive = already expired).
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.tp_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// Expires at \p tp.
  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.tp_ = tp;
    return d;
  }

  bool infinite() const { return tp_ == Clock::time_point::max(); }

  /// True once the deadline has passed (never for an infinite deadline).
  bool expired() const { return !infinite() && Clock::now() >= tp_; }

  /// Milliseconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_ms() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(tp_ - Clock::now())
        .count();
  }

  Clock::time_point time_point() const { return tp_; }

 private:
  Clock::time_point tp_;
};

/// \brief Amortized deadline polling for tight fit loops. Reading the clock
/// on every inner iteration would dominate cheap loop bodies, so the checker
/// only touches the clock every \p stride calls (default 64 — with iteration
/// bodies in the microsecond range this lands well under one clock read per
/// millisecond of work). An infinite deadline short-circuits to a single
/// branch per call, and once expired the checker stays expired, so callers
/// can keep testing it on their unwind path for free.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(const Deadline& deadline, uint32_t stride = 64)
      : deadline_(deadline), stride_(deadline.infinite() ? 0 : stride) {}

  /// True once the deadline has passed; sticky. At most one clock read per
  /// \p stride calls (none at all for an infinite deadline).
  bool Expired() {
    if (stride_ == 0) return false;
    if (expired_) return true;
    if (++count_ < stride_) return false;
    count_ = 0;
    expired_ = deadline_.expired();
    return expired_;
  }

  /// Forces a clock read on the next Expired() call (for loop boundaries
  /// where a fresh answer matters more than amortization).
  void ForceCheck() { count_ = stride_ == 0 ? 0 : stride_ - 1; }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  uint32_t stride_;
  uint32_t count_ = 0;
  bool expired_ = false;
};

}  // namespace easytime
