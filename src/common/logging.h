#pragma once

/// \file logging.h
/// \brief Minimal leveled logging used by the pipeline's "reporting layer".
///
/// Log lines go to stderr by default; the pipeline redirects them into run
/// logs. Severity is filtered by a process-wide level.

#include <sstream>
#include <string>

namespace easytime {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide log configuration.
class Logging {
 public:
  /// Sets the minimum severity that is emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Redirects log output into \p path (append). Empty path -> stderr.
  static void SetLogFile(const std::string& path);

  /// Emits one formatted line (used by the LOG macro; rarely called directly).
  static void Emit(LogLevel level, const std::string& file, int line,
                   const std::string& msg);
};

namespace internal {

/// Stream-collecting helper behind EASYTIME_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logging::Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace easytime

#define EASYTIME_LOG(level)                                            \
  ::easytime::internal::LogMessage(::easytime::LogLevel::k##level,     \
                                   __FILE__, __LINE__)
