#pragma once

/// \file overload.h
/// \brief Process-global brownout flag. The serving layer flips it when
/// admission queues cross their high-water mark (with hysteresis) and layers
/// that cannot depend on serve/ — notably the SQL table functions — consult
/// it to trade accuracy for latency: expensive model fits downgrade to the
/// fast smoothing family, recommend/ask answer from their degraded paths,
/// and every shortcut response is tagged "degraded": true.
///
/// The flag is a relaxed atomic: readers only need an eventually-consistent
/// hint, never an ordering guarantee.

#include <atomic>
#include <cstdint>

namespace easytime {

class OverloadState {
 public:
  /// True while the serving tier is browning out.
  bool brownout() const { return brownout_.load(std::memory_order_relaxed); }

  /// Sets/clears the brownout flag; counts enter transitions.
  void set_brownout(bool on) {
    bool was = brownout_.exchange(on, std::memory_order_relaxed);
    if (on && !was) {
      brownout_enters_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// How many times brownout has been entered (stats/tests).
  uint64_t brownout_enters() const {
    return brownout_enters_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> brownout_{false};
  std::atomic<uint64_t> brownout_enters_{0};
};

/// The process-wide instance. Owned by whoever serves traffic (ForecastServer
/// clears it on Stop so one server's overload never leaks into the next
/// test's run).
OverloadState& GlobalOverload();

}  // namespace easytime
