#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

namespace easytime {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 1) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Acklam's rational approximation in three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double Autocorrelation(const std::vector<double>& v, size_t lag) {
  size_t n = v.size();
  if (lag >= n || n < 2) return 0.0;
  double m = Mean(v);
  double denom = 0.0;
  for (double x : v) denom += (x - m) * (x - m);
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (size_t i = 0; i + lag < n; ++i) num += (v[i] - m) * (v[i + lag] - m);
  return num / denom;
}

std::vector<double> AcfUpTo(const std::vector<double>& v, size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (size_t lag = 0; lag <= max_lag; ++lag) {
    out.push_back(Autocorrelation(v, lag));
  }
  return out;
}

std::vector<double> MovingAverage(const std::vector<double>& v, size_t w) {
  size_t n = v.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  if (w < 1) w = 1;
  size_t half = w / 2;
  // Prefix sums for O(n).
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + v[i];
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i >= half ? i - half : 0;
    size_t hi = std::min(n - 1, i + (w - 1 - half));
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> Difference(const std::vector<double>& v, size_t order) {
  std::vector<double> cur = v;
  for (size_t d = 0; d < order; ++d) {
    if (cur.size() < 2) return {};
    std::vector<double> next(cur.size() - 1);
    for (size_t i = 0; i + 1 < cur.size(); ++i) next[i] = cur[i + 1] - cur[i];
    cur = std::move(next);
  }
  return cur;
}

Status Fft(std::vector<std::complex<double>>* data, bool inverse) {
  size_t n = data->size();
  if (n == 0) return Status::OK();
  if ((n & (n - 1)) != 0) {
    return Status::InvalidArgument("FFT size must be a power of two, got " +
                                   std::to_string(n));
  }
  auto& a = *data;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                 (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0);
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = a[i + k];
        std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
  return Status::OK();
}

std::vector<double> PowerSpectrum(const std::vector<double>& v) {
  if (v.empty()) return {};
  double m = Mean(v);
  size_t padded = NextPowerOfTwo(v.size());
  std::vector<std::complex<double>> data(padded, {0.0, 0.0});
  for (size_t i = 0; i < v.size(); ++i) data[i] = {v[i] - m, 0.0};
  (void)Fft(&data, /*inverse=*/false);
  std::vector<double> spectrum(padded / 2 + 1);
  for (size_t k = 0; k < spectrum.size(); ++k) {
    spectrum[k] = std::norm(data[k]);
  }
  return spectrum;
}

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b,
                                              size_t n) {
  if (a.size() != n * n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      return Status::InvalidArgument("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const std::vector<double>& x,
                                         const std::vector<double>& y,
                                         size_t rows, size_t cols,
                                         double l2) {
  if (x.size() != rows * cols || y.size() != rows) {
    return Status::InvalidArgument("LeastSquares: dimension mismatch");
  }
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("LeastSquares: empty problem");
  }
  // Normal equations: (X^T X + l2 I) beta = X^T y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols; ++i) {
      double xi = x[r * cols + i];
      xty[i] += xi * y[r];
      for (size_t j = i; j < cols; ++j) {
        xtx[i * cols + j] += xi * x[r * cols + j];
      }
    }
  }
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i * cols + j] = xtx[j * cols + i];
    xtx[i * cols + i] += l2;
  }
  auto res = SolveLinearSystem(std::move(xtx), std::move(xty), cols);
  if (!res.ok() && l2 == 0.0) {
    // Degenerate design matrix: retry with a small ridge for robustness.
    return LeastSquares(x, y, rows, cols, 1e-8);
  }
  return res;
}

std::pair<double, double> LinearTrendFit(const std::vector<double>& v) {
  size_t n = v.size();
  if (n == 0) return {0.0, 0.0};
  if (n == 1) return {v[0], 0.0};
  double tm = static_cast<double>(n - 1) / 2.0;
  double ym = Mean(v);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dt = static_cast<double>(i) - tm;
    num += dt * (v[i] - ym);
    den += dt * dt;
  }
  double slope = den > 0.0 ? num / den : 0.0;
  return {ym - slope * tm, slope};
}

std::vector<double> Softmax(const std::vector<double>& logits,
                            double temperature) {
  if (logits.empty()) return {};
  if (temperature <= 0.0) temperature = 1.0;
  double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp((logits[i] - mx) / temperature);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

size_t ArgMax(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return static_cast<size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

size_t ArgMin(const std::vector<double>& v) {
  if (v.empty()) return 0;
  return static_cast<size_t>(
      std::distance(v.begin(), std::min_element(v.begin(), v.end())));
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> Ranks(const std::vector<double>& v) {
  size_t n = v.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

}  // namespace easytime
