#pragma once

/// \file string_util.h
/// \brief String helpers shared across modules (tokenizing, case folding,
/// trimming, numeric parsing, table formatting).

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easytime {

/// Splits \p s on \p delim; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any whitespace run; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Removes leading and trailing whitespace.
std::string Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if \p s contains \p needle (case-insensitive).
bool ContainsIgnoreCase(std::string_view s, std::string_view needle);

/// Strict double parse of the whole string.
Result<double> ParseDouble(std::string_view s);

/// Strict int64 parse of the whole string.
Result<int64_t> ParseInt(std::string_view s);

/// Formats a double with \p precision digits after the point.
std::string FormatDouble(double v, int precision = 4);

/// \brief Renders rows as an aligned ASCII table with a header rule;
/// used by the reporting layer and Q&A structured outputs.
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

/// SQL LIKE pattern match ('%' any run, '_' one char), case-insensitive.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Standard (RFC 4648) base64 with padding — binary payloads (WAL segment
/// bytes) travel inside line-JSON strings on the replication protocol.
std::string Base64Encode(std::string_view bytes);

/// Strict decode: rejects non-alphabet characters, bad padding, and
/// trailing garbage.
Result<std::string> Base64Decode(std::string_view text);

}  // namespace easytime
