#pragma once

/// \file result.h
/// \brief Result<T>: a Status or a value of type T (Arrow's Result idiom).

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace easytime {

/// \brief Holds either a successfully computed T or the Status explaining why
/// the computation failed.
///
/// Typical use:
/// \code
///   Result<Series> LoadSeries(const std::string& path);
///   EASYTIME_ASSIGN_OR_RETURN(Series s, LoadSeries(path));
/// \endcode
template <typename T>
class Result {
 public:
  /// Success: wraps a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  /// Failure: wraps a non-OK status. Calling with an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// \brief The failure status, or OK if a value is present.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// \brief The contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief The contained value or \p fallback when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace easytime
