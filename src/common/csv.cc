#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace easytime {

int CsvDocument::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvDocument> ParseCsv(const std::string& text, bool has_header) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool record_started = false;

  auto end_field = [&]() {
    current.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(current));
    current.clear();
    record_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field_started && !field.empty()) {
          return Status::ParseError("unexpected quote mid-field at offset " +
                                    std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        record_started = true;
        break;
      case ',':
        end_field();
        record_started = true;
        break;
      case '\r':
        break;  // swallowed; \n terminates the record
      case '\n':
        if (record_started || field_started || !current.empty()) {
          end_record();
        }
        break;
      default:
        field += c;
        field_started = true;
        record_started = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (record_started || field_started || !current.empty()) end_record();

  CsvDocument doc;
  size_t start = 0;
  if (has_header) {
    if (records.empty()) return Status::ParseError("missing CSV header");
    doc.header = records[0];
    start = 1;
  }
  for (size_t i = start; i < records.size(); ++i) {
    doc.rows.push_back(std::move(records[i]));
  }
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto res = ParseCsv(ss.str(), has_header);
  if (!res.ok()) return res.status().WithContext(path);
  return res;
}

namespace {

std::string EscapeField(const std::string& f) {
  bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void AppendRow(std::string* out, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) *out += ',';
    *out += EscapeField(row[i]);
  }
  *out += '\n';
}

}  // namespace

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  if (!doc.header.empty()) AppendRow(&out, doc.header);
  for (const auto& row : doc.rows) AppendRow(&out, row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out << WriteCsv(doc);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace easytime
