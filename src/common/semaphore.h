#pragma once

/// \file semaphore.h
/// \brief A counting semaphore (mutex + condvar). Used by the serving layer
/// to cap concurrent TCP connection handlers; TryAcquire doubles as an
/// admission-control check. Close() unblocks waiters for shutdown — without
/// it, a thread parked in Acquire() while every permit is held would hang a
/// graceful stop.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace easytime {

/// \brief Counting semaphore with blocking and non-blocking acquire, plus
/// closable shutdown semantics.
class Semaphore {
 public:
  explicit Semaphore(size_t initial) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// \brief Blocks until a permit is available or the semaphore is closed.
  /// \returns true with a permit taken; false when closed (no permit taken).
  bool Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return closed_ || count_ > 0; });
    if (closed_) return false;
    --count_;
    return true;
  }

  /// Takes a permit if one is available without blocking (false when none
  /// is available or the semaphore is closed).
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || count_ == 0) return false;
    --count_;
    return true;
  }

  /// Returns a permit. Safe (and harmless) after Close().
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++count_;
    }
    cv_.notify_one();
  }

  /// \brief Shuts the semaphore down: every blocked and future Acquire
  /// returns false. Permits already handed out stay valid and may still be
  /// Released. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Currently available permits (diagnostic only — racy by nature).
  size_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
  bool closed_ = false;
};

}  // namespace easytime
