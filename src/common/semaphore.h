#pragma once

/// \file semaphore.h
/// \brief A counting semaphore (mutex + condvar). Used by the serving layer
/// to cap concurrent TCP connection handlers; TryAcquire doubles as an
/// admission-control check.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace easytime {

/// \brief Counting semaphore with blocking and non-blocking acquire.
class Semaphore {
 public:
  explicit Semaphore(size_t initial) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Blocks until a permit is available, then takes it.
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return count_ > 0; });
    --count_;
  }

  /// Takes a permit if one is available without blocking.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Returns a permit.
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++count_;
    }
    cv_.notify_one();
  }

  /// Currently available permits (diagnostic only — racy by nature).
  size_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace easytime
