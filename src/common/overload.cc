#include "common/overload.h"

namespace easytime {

OverloadState& GlobalOverload() {
  static OverloadState state;
  return state;
}

}  // namespace easytime
