#include "eval/evaluator.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "methods/registry.h"
#include "tsdata/characteristics.h"
#include "tsdata/scaler.h"

namespace easytime::eval {

easytime::Result<Strategy> ParseStrategy(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "fixed" || lower == "fixed_window") return Strategy::kFixed;
  if (lower == "rolling") return Strategy::kRolling;
  return Status::NotFound("unknown strategy: " + name);
}

const char* StrategyName(Strategy s) {
  return s == Strategy::kFixed ? "fixed" : "rolling";
}

easytime::Result<EvalConfig> EvalConfig::FromJson(const easytime::Json& j) {
  EvalConfig c;
  if (!j.is_object()) {
    return Status::InvalidArgument("evaluation config must be a JSON object");
  }
  EASYTIME_ASSIGN_OR_RETURN(c.strategy,
                            ParseStrategy(j.GetString("strategy", "fixed")));
  int64_t horizon = j.GetInt("horizon", 24);
  if (horizon <= 0) return Status::InvalidArgument("horizon must be positive");
  c.horizon = static_cast<size_t>(horizon);
  c.stride = static_cast<size_t>(j.GetInt("stride", 0));
  c.scaler = j.GetString("scaler", "zscore");
  c.drop_last = j.GetBool("drop_last", true);
  c.seed = static_cast<uint64_t>(j.GetInt("seed", 42));
  if (j.Has("split")) {
    const auto& s = j.Get("split");
    c.split.train = s.GetDouble("train", c.split.train);
    c.split.val = s.GetDouble("val", c.split.val);
    c.split.test = s.GetDouble("test", c.split.test);
  }
  if (j.Has("metrics")) {
    const auto& m = j.Get("metrics");
    if (!m.is_array()) {
      return Status::InvalidArgument("metrics must be an array of names");
    }
    c.metrics.clear();
    for (const auto& item : m.items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("metric names must be strings");
      }
      if (!MetricRegistry::Global().Contains(item.AsString())) {
        return Status::NotFound("unknown metric: " + item.AsString());
      }
      c.metrics.push_back(item.AsString());
    }
    if (c.metrics.empty()) {
      return Status::InvalidArgument("metrics list must be non-empty");
    }
  }
  return c;
}

easytime::Json EvalConfig::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("strategy", StrategyName(strategy));
  j.Set("horizon", static_cast<int64_t>(horizon));
  j.Set("stride", static_cast<int64_t>(stride));
  easytime::Json s = easytime::Json::Object();
  s.Set("train", split.train);
  s.Set("val", split.val);
  s.Set("test", split.test);
  j.Set("split", std::move(s));
  j.Set("scaler", scaler);
  easytime::Json m = easytime::Json::Array();
  for (const auto& name : metrics) m.Append(name);
  j.Set("metrics", std::move(m));
  j.Set("drop_last", drop_last);
  j.Set("seed", static_cast<int64_t>(seed));
  return j;
}

namespace {

/// Computes metrics in the original scale and merges them into the result as
/// a running mean over windows.
easytime::Status AccumulateMetrics(const EvalConfig& config,
                                   const MetricContext& ctx,
                                   const std::vector<double>& actual,
                                   const std::vector<double>& predicted,
                                   EvalResult* result) {
  EASYTIME_ASSIGN_OR_RETURN(auto values,
                            MetricRegistry::Global().ComputeAll(
                                config.metrics, actual, predicted, ctx));
  double n = static_cast<double>(result->num_windows);
  for (const auto& [name, v] : values) {
    double& slot = result->metrics[name];
    slot = (slot * n + v) / (n + 1.0);
  }
  ++result->num_windows;
  result->last_actual = actual;
  result->last_forecast = predicted;
  return Status::OK();
}

}  // namespace

easytime::Result<EvalResult> Evaluator::EvaluateValues(
    methods::Forecaster* forecaster, const std::vector<double>& values,
    size_t period_hint, const easytime::Deadline& deadline) const {
  if (forecaster == nullptr) {
    return Status::InvalidArgument("forecaster must not be null");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("evaluation deadline expired");
  }
  if (period_hint == 0) {
    period_hint = tsdata::DetectPeriod(values);
  }
  switch (config_.strategy) {
    case Strategy::kFixed:
      return RunFixed(forecaster, values, period_hint, deadline);
    case Strategy::kRolling:
      return RunRolling(forecaster, values, period_hint, deadline);
  }
  return Status::Internal("unreachable");
}

easytime::Result<EvalResult> Evaluator::RunFixed(
    methods::Forecaster* forecaster, const std::vector<double>& values,
    size_t period_hint, const easytime::Deadline& deadline) const {
  EASYTIME_ASSIGN_OR_RETURN(tsdata::SplitBounds bounds,
                            tsdata::ComputeSplit(values.size(), config_.split));
  // Fixed-window protocol: train on train+val, forecast into the test
  // segment once.
  size_t train_end = bounds.val_end;
  size_t test_len = values.size() - train_end;
  size_t h = std::min(config_.horizon, test_len);
  if (h == 0) {
    return Status::InvalidArgument(
        "test segment is empty; adjust split fractions");
  }

  std::vector<double> train(values.begin(),
                            values.begin() + static_cast<long>(train_end));
  std::vector<double> actual(values.begin() + static_cast<long>(train_end),
                             values.begin() + static_cast<long>(train_end + h));

  EASYTIME_ASSIGN_OR_RETURN(auto scaler, tsdata::MakeScaler(config_.scaler));
  EASYTIME_RETURN_IF_ERROR(scaler->Fit(train));
  std::vector<double> train_scaled = scaler->Transform(train);

  methods::FitContext ctx;
  ctx.period_hint = period_hint;
  ctx.horizon = h;
  ctx.seed = config_.seed;

  EvalResult result;
  if (deadline.expired()) {
    return Status::DeadlineExceeded("evaluation deadline expired before fit");
  }
  Stopwatch fit_watch;
  EASYTIME_RETURN_IF_ERROR(forecaster->Fit(train_scaled, ctx));
  result.fit_seconds = fit_watch.ElapsedSeconds();

  if (deadline.expired()) {
    return Status::DeadlineExceeded(
        "evaluation deadline expired before forecast");
  }
  Stopwatch fc_watch;
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> forecast_scaled,
                            forecaster->Forecast(h));
  result.forecast_seconds = fc_watch.ElapsedSeconds();
  if (forecast_scaled.size() != h) {
    return Status::Internal(
        "forecaster returned " + std::to_string(forecast_scaled.size()) +
        " values, expected " + std::to_string(h));
  }
  std::vector<double> forecast = scaler->Inverse(forecast_scaled);

  MetricContext mctx;
  mctx.train = train;
  mctx.period = period_hint;
  EASYTIME_RETURN_IF_ERROR(
      AccumulateMetrics(config_, mctx, actual, forecast, &result));
  return result;
}

easytime::Result<EvalResult> Evaluator::RunRolling(
    methods::Forecaster* forecaster, const std::vector<double>& values,
    size_t period_hint, const easytime::Deadline& deadline) const {
  EASYTIME_ASSIGN_OR_RETURN(tsdata::SplitBounds bounds,
                            tsdata::ComputeSplit(values.size(), config_.split));
  size_t train_end = bounds.val_end;
  size_t h = config_.horizon;
  size_t stride = config_.stride == 0 ? h : config_.stride;
  if (train_end + h > values.size()) {
    return Status::InvalidArgument(
        "test segment shorter than one forecast horizon");
  }

  std::vector<double> train(values.begin(),
                            values.begin() + static_cast<long>(train_end));
  EASYTIME_ASSIGN_OR_RETURN(auto scaler, tsdata::MakeScaler(config_.scaler));
  EASYTIME_RETURN_IF_ERROR(scaler->Fit(train));
  std::vector<double> all_scaled = scaler->Transform(values);
  std::vector<double> train_scaled(
      all_scaled.begin(), all_scaled.begin() + static_cast<long>(train_end));

  methods::FitContext ctx;
  ctx.period_hint = period_hint;
  ctx.horizon = h;
  ctx.seed = config_.seed;

  EvalResult result;
  if (deadline.expired()) {
    return Status::DeadlineExceeded("evaluation deadline expired before fit");
  }
  Stopwatch fit_watch;
  EASYTIME_RETURN_IF_ERROR(forecaster->Fit(train_scaled, ctx));
  result.fit_seconds = fit_watch.ElapsedSeconds();

  MetricContext mctx;
  mctx.train = train;
  mctx.period = period_hint;

  Stopwatch fc_watch;
  for (size_t start = train_end; start < values.size(); start += stride) {
    size_t remaining = values.size() - start;
    size_t win = std::min(h, remaining);
    if (win < h && config_.drop_last) break;
    if (win == 0) break;
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "evaluation deadline expired mid-rolling (" +
          std::to_string(result.num_windows) + " windows done)");
    }

    std::vector<double> history_scaled(
        all_scaled.begin(), all_scaled.begin() + static_cast<long>(start));
    EASYTIME_ASSIGN_OR_RETURN(
        std::vector<double> fc_scaled,
        forecaster->ForecastFrom(history_scaled, win));
    if (fc_scaled.size() != win) {
      return Status::Internal("forecaster returned wrong horizon length");
    }
    std::vector<double> forecast = scaler->Inverse(fc_scaled);
    std::vector<double> actual(
        values.begin() + static_cast<long>(start),
        values.begin() + static_cast<long>(start + win));
    EASYTIME_RETURN_IF_ERROR(
        AccumulateMetrics(config_, mctx, actual, forecast, &result));
  }
  result.forecast_seconds = fc_watch.ElapsedSeconds();
  if (result.num_windows == 0) {
    return Status::InvalidArgument("no complete rolling windows to evaluate");
  }
  return result;
}

easytime::Result<EvalResult> Evaluator::EvaluateDataset(
    const std::string& method_name, const easytime::Json& method_config,
    const tsdata::Dataset& dataset, const easytime::Deadline& deadline) const {
  if (dataset.num_channels() == 0) {
    return Status::InvalidArgument("dataset has no channels");
  }
  EvalResult merged;
  for (size_t c = 0; c < dataset.num_channels(); ++c) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "evaluation deadline expired (" + std::to_string(c) + "/" +
          std::to_string(dataset.num_channels()) + " channels done)");
    }
    EASYTIME_ASSIGN_OR_RETURN(
        methods::ForecasterPtr model,
        methods::MethodRegistry::Global().Create(method_name, method_config));
    const tsdata::Series& chan = dataset.channel(c);
    auto res = EvaluateValues(model.get(), chan.values(), chan.period_hint(),
                              deadline);
    if (!res.ok()) {
      return res.status().WithContext("dataset '" + dataset.name() +
                                      "' channel '" + chan.name() + "'");
    }
    const EvalResult& r = *res;
    double n = static_cast<double>(c);
    for (const auto& [name, v] : r.metrics) {
      double& slot = merged.metrics[name];
      slot = (slot * n + v) / (n + 1.0);
    }
    merged.num_windows += r.num_windows;
    merged.fit_seconds += r.fit_seconds;
    merged.forecast_seconds += r.forecast_seconds;
    merged.last_actual = r.last_actual;
    merged.last_forecast = r.last_forecast;
  }
  return merged;
}

}  // namespace easytime::eval
