#pragma once

/// \file backtest.h
/// \brief Rolling-origin backtesting: the "live data" counterpart of the
/// one-shot evaluation protocol in evaluator.h. A backtest re-fits the
/// method at a ladder of forecast origins near the end of the series
/// (expanding or sliding training window), forecasts `horizon` steps from
/// each origin with prediction intervals, and aggregates accuracy
/// (MASE/sMAPE/...) plus interval coverage across origins.
///
/// Determinism contract: each origin is a pure function of
/// (values, config, origin index) — fresh forecaster, per-origin scaler fit
/// on that origin's training segment — and the aggregate is accumulated in
/// fixed index order after the fan-out joins. Output is therefore
/// bit-identical whether origins run on 1 thread or N (the same contract
/// the SQL group fan-out makes, DESIGN.md §11).
///
/// Resume contract: `BacktestHooks::on_origin` streams each finished origin
/// to the caller (the job layer appends it to the checkpoint store), and
/// `BacktestHooks::completed` splices checkpointed origins back in on
/// resume, skipping their re-evaluation without changing the report.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/result.h"
#include "eval/metrics.h"

namespace easytime::eval {

/// How the training window behaves as the origin advances.
enum class BacktestWindow {
  kExpanding,  ///< train on everything before the origin
  kSliding     ///< train on a fixed-width window ending at the origin
};

/// Parses "expanding" | "sliding".
easytime::Result<BacktestWindow> ParseBacktestWindow(const std::string& name);
const char* BacktestWindowName(BacktestWindow w);

/// \brief Rolling-origin protocol description. Origins are anchored to the
/// end of the series: the last origin forecasts the final `horizon` values,
/// earlier origins step back by `stride`.
struct BacktestConfig {
  std::string method = "theta";
  easytime::Json method_config = easytime::Json::Object();
  size_t origins = 8;    ///< number of forecast origins
  size_t horizon = 24;   ///< steps forecast from each origin
  size_t stride = 0;     ///< origin spacing; 0 = horizon (non-overlapping)
  BacktestWindow window = BacktestWindow::kExpanding;
  size_t window_size = 0;  ///< sliding width; 0 = the first origin's position
                           ///< (all origins then see equal-length trains)
  size_t min_train = 32;   ///< smallest admissible training segment
  double confidence = 0.95;  ///< prediction-interval level
  std::string scaler = "zscore";
  std::vector<std::string> metrics = {"mase", "smape", "mae"};
  uint64_t seed = 42;
  size_t sleep_ms = 0;  ///< artificial per-origin latency (tests/benches)

  static easytime::Result<BacktestConfig> FromJson(const easytime::Json& j);
  easytime::Json ToJson() const;
};

/// \brief One finished origin: metrics in the original scale plus interval
/// coverage (fraction of actuals inside [lower, upper]) and the mean
/// interval width. Round-trips through JSON for checkpoint records.
struct OriginEval {
  size_t index = 0;       ///< position in the origin ladder (0-based)
  size_t origin = 0;      ///< first forecast step (index into the series)
  size_t train_size = 0;  ///< training-segment length used at this origin
  std::map<std::string, double> metrics;
  double coverage = 0.0;
  double interval_width = 0.0;
  double fit_seconds = 0.0;

  easytime::Json ToJson() const;
  static easytime::Result<OriginEval> FromJson(const easytime::Json& j);
};

/// \brief The aggregate report: per-origin results in ladder order plus
/// unweighted means across origins (every origin evaluates the same number
/// of steps, so the mean is also the per-step mean).
struct BacktestReport {
  std::vector<OriginEval> origins;
  std::map<std::string, double> aggregate;
  double coverage = 0.0;
  double mean_interval_width = 0.0;
  size_t resumed = 0;  ///< origins spliced from a checkpoint, not re-run

  easytime::Json ToJson() const;
};

/// \brief Cooperative control surface, mirroring pipeline::RunHooks.
struct BacktestHooks {
  std::function<bool()> cancelled;                  ///< poll to abort
  std::function<void(size_t, size_t)> progress;     ///< (done, total)
  std::function<void(const OriginEval&)> on_origin; ///< checkpoint stream;
                                                    ///< invoked serially
  /// Origins already evaluated by a previous (crashed/killed) run, keyed by
  /// ladder index; spliced into the report without re-evaluation.
  const std::map<size_t, OriginEval>* completed = nullptr;
  easytime::Deadline deadline;
  size_t max_threads = 0;  ///< 0 = shared pool; 1 = strictly sequential
};

/// \brief Computes the origin ladder for a series of length \p n:
/// origin_i = n - horizon - (origins-1-i)*stride, i in [0, origins).
/// Fails with InvalidArgument when the earliest origin would leave fewer
/// than min_train training points (or fall before a sliding window).
easytime::Result<std::vector<size_t>> BacktestOrigins(
    size_t n, const BacktestConfig& config);

/// \brief Runs the rolling-origin backtest over a univariate sequence.
/// period_hint 0 means auto-detect. Fails fast on config/series mismatch;
/// per-origin method failures abort with the lowest-index error (origins
/// are homogeneous — a method that cannot fit one origin is misconfigured).
easytime::Result<BacktestReport> RunBacktest(const std::vector<double>& values,
                                             size_t period_hint,
                                             const BacktestConfig& config,
                                             const BacktestHooks& hooks = {});

}  // namespace easytime::eval
