#pragma once

/// \file metrics.h
/// \brief Evaluation metrics. TFB's evaluation layer "includes
/// well-recognized evaluation metrics and allows for the use of customized
/// metrics"; this module provides the standard set plus a registry for
/// user-defined ones.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace easytime::eval {

/// \brief Extra information some metrics need (MASE scales by the in-sample
/// seasonal-naive error of the training segment).
struct MetricContext {
  std::vector<double> train;  ///< training segment (original scale)
  size_t period = 0;          ///< seasonal period for MASE (0 -> 1)
};

/// Metric signature: (actual, predicted, context) -> value. Lower is better
/// for all built-in metrics except r2.
using MetricFn = std::function<double(const std::vector<double>& actual,
                                      const std::vector<double>& predicted,
                                      const MetricContext& ctx)>;

double Mae(const std::vector<double>& a, const std::vector<double>& p);
double Mse(const std::vector<double>& a, const std::vector<double>& p);
double Rmse(const std::vector<double>& a, const std::vector<double>& p);
/// Mean absolute percentage error (%); skips zero actuals.
double Mape(const std::vector<double>& a, const std::vector<double>& p);
/// Symmetric MAPE (%), the M4 definition.
double Smape(const std::vector<double>& a, const std::vector<double>& p);
/// Weighted absolute percentage error (%).
double Wape(const std::vector<double>& a, const std::vector<double>& p);
/// Mean absolute scaled error against the seasonal-naive in-sample error.
double Mase(const std::vector<double>& a, const std::vector<double>& p,
            const MetricContext& ctx);
/// Coefficient of determination (higher is better).
double R2(const std::vector<double>& a, const std::vector<double>& p);
/// Largest absolute error.
double MaxError(const std::vector<double>& a, const std::vector<double>& p);
/// Median absolute error.
double MedianAe(const std::vector<double>& a, const std::vector<double>& p);

/// \brief Named metric registry with the built-ins pre-registered: mae, mse,
/// rmse, mape, smape, wape, mase, r2, max_error, median_ae.
class MetricRegistry {
 public:
  /// Process-wide registry.
  static MetricRegistry& Global();

  /// Registers a custom metric; fails on duplicate names.
  easytime::Status Register(const std::string& name, MetricFn fn,
                            bool higher_is_better = false);

  /// Computes one metric by name.
  easytime::Result<double> Compute(const std::string& name,
                                   const std::vector<double>& actual,
                                   const std::vector<double>& predicted,
                                   const MetricContext& ctx = {}) const;

  /// Computes several metrics at once.
  easytime::Result<std::map<std::string, double>> ComputeAll(
      const std::vector<std::string>& names,
      const std::vector<double>& actual,
      const std::vector<double>& predicted,
      const MetricContext& ctx = {}) const;

  bool Contains(const std::string& name) const;
  bool HigherIsBetter(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  MetricRegistry();

  struct Entry {
    MetricFn fn;
    bool higher_is_better;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace easytime::eval
