#pragma once

/// \file evaluator.h
/// \brief The evaluation layer: fixed-window and rolling forecasting
/// strategies applied under a consistent protocol — fixed chronological
/// splits, scaler fitted on train only, explicit "drop last" handling, and
/// metrics computed in the original scale. The consistency knobs are exactly
/// the ones the paper lists as sources of unfair comparisons (Challenge 1).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/result.h"
#include "eval/metrics.h"
#include "methods/forecaster.h"
#include "tsdata/series.h"
#include "tsdata/split.h"

namespace easytime::eval {

/// Evaluation strategy.
enum class Strategy { kFixed, kRolling };

/// Parses "fixed" | "rolling".
easytime::Result<Strategy> ParseStrategy(const std::string& name);
const char* StrategyName(Strategy s);

/// \brief Full evaluation protocol description — the programmatic form of
/// the "configuration file" users edit for one-click evaluation.
struct EvalConfig {
  Strategy strategy = Strategy::kFixed;
  size_t horizon = 24;
  size_t stride = 0;  ///< rolling stride; 0 = horizon (non-overlapping)
  tsdata::SplitSpec split;
  std::string scaler = "zscore";
  std::vector<std::string> metrics = {"mae", "mse", "rmse", "smape"};
  bool drop_last = true;  ///< drop the final incomplete rolling window
  uint64_t seed = 42;

  /// Parses from the JSON configuration-file schema (see pipeline/).
  static easytime::Result<EvalConfig> FromJson(const easytime::Json& j);
  easytime::Json ToJson() const;
};

/// \brief Outcome of evaluating one forecaster on one series/dataset.
struct EvalResult {
  std::map<std::string, double> metrics;  ///< averaged over windows/channels
  size_t num_windows = 0;
  double fit_seconds = 0.0;
  double forecast_seconds = 0.0;
  /// Last evaluated window, for visualization: actual and predicted values.
  std::vector<double> last_actual;
  std::vector<double> last_forecast;
};

/// \brief Runs evaluation protocols over series and datasets.
class Evaluator {
 public:
  explicit Evaluator(EvalConfig config) : config_(std::move(config)) {}

  const EvalConfig& config() const { return config_; }

  /// \brief Evaluates \p forecaster on a univariate value sequence.
  /// The forecaster is fitted on the train(+val) segment in scaled space;
  /// metrics are computed in the original scale. The deadline is checked
  /// cooperatively (before fitting and between rolling windows); once it
  /// expires, Status::DeadlineExceeded is returned.
  easytime::Result<EvalResult> EvaluateValues(
      methods::Forecaster* forecaster, const std::vector<double>& values,
      size_t period_hint = 0,
      const easytime::Deadline& deadline = easytime::Deadline()) const;

  /// \brief Evaluates a registered method (by name/config) on a dataset.
  /// Channels are evaluated independently with fresh instances; metrics are
  /// channel-averaged. The deadline is checked between channels as well.
  easytime::Result<EvalResult> EvaluateDataset(
      const std::string& method_name, const easytime::Json& method_config,
      const tsdata::Dataset& dataset,
      const easytime::Deadline& deadline = easytime::Deadline()) const;

 private:
  easytime::Result<EvalResult> RunFixed(methods::Forecaster* forecaster,
                                        const std::vector<double>& values,
                                        size_t period_hint,
                                        const easytime::Deadline& deadline)
      const;
  easytime::Result<EvalResult> RunRolling(methods::Forecaster* forecaster,
                                          const std::vector<double>& values,
                                          size_t period_hint,
                                          const easytime::Deadline& deadline)
      const;

  EvalConfig config_;
};

}  // namespace easytime::eval
