#include "eval/backtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "methods/registry.h"
#include "tsdata/characteristics.h"
#include "tsdata/scaler.h"

namespace easytime::eval {

easytime::Result<BacktestWindow> ParseBacktestWindow(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "expanding") return BacktestWindow::kExpanding;
  if (lower == "sliding") return BacktestWindow::kSliding;
  return Status::InvalidArgument("unknown backtest window: " + name +
                                 " (expected 'expanding' or 'sliding')");
}

const char* BacktestWindowName(BacktestWindow w) {
  return w == BacktestWindow::kExpanding ? "expanding" : "sliding";
}

easytime::Result<BacktestConfig> BacktestConfig::FromJson(
    const easytime::Json& j) {
  BacktestConfig c;
  if (!j.is_object()) {
    return Status::InvalidArgument("backtest config must be a JSON object");
  }
  c.method = j.GetString("method", c.method);
  if (!methods::MethodRegistry::Global().Contains(c.method)) {
    return Status::NotFound("unknown method: " + c.method);
  }
  if (j.Has("method_config")) {
    if (!j.Get("method_config").is_object()) {
      return Status::InvalidArgument("method_config must be an object");
    }
    c.method_config = j.Get("method_config");
  }
  int64_t origins = j.GetInt("origins", static_cast<int64_t>(c.origins));
  if (origins <= 0) return Status::InvalidArgument("origins must be positive");
  c.origins = static_cast<size_t>(origins);
  int64_t horizon = j.GetInt("horizon", static_cast<int64_t>(c.horizon));
  if (horizon <= 0) return Status::InvalidArgument("horizon must be positive");
  c.horizon = static_cast<size_t>(horizon);
  int64_t stride = j.GetInt("stride", 0);
  if (stride < 0) return Status::InvalidArgument("stride must be >= 0");
  c.stride = static_cast<size_t>(stride);
  EASYTIME_ASSIGN_OR_RETURN(
      c.window, ParseBacktestWindow(j.GetString("window", "expanding")));
  int64_t ws = j.GetInt("window_size", 0);
  if (ws < 0) return Status::InvalidArgument("window_size must be >= 0");
  c.window_size = static_cast<size_t>(ws);
  int64_t min_train = j.GetInt("min_train", static_cast<int64_t>(c.min_train));
  if (min_train <= 0) {
    return Status::InvalidArgument("min_train must be positive");
  }
  c.min_train = static_cast<size_t>(min_train);
  c.confidence = j.GetDouble("confidence", c.confidence);
  if (!(c.confidence > 0.0 && c.confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  c.scaler = j.GetString("scaler", c.scaler);
  if (j.Has("metrics")) {
    const auto& m = j.Get("metrics");
    if (!m.is_array()) {
      return Status::InvalidArgument("metrics must be an array of names");
    }
    c.metrics.clear();
    for (const auto& item : m.items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("metric names must be strings");
      }
      if (!MetricRegistry::Global().Contains(item.AsString())) {
        return Status::NotFound("unknown metric: " + item.AsString());
      }
      c.metrics.push_back(item.AsString());
    }
    if (c.metrics.empty()) {
      return Status::InvalidArgument("metrics list must be non-empty");
    }
  }
  c.seed = static_cast<uint64_t>(j.GetInt("seed", 42));
  int64_t sleep_ms = j.GetInt("sleep_ms", 0);
  if (sleep_ms < 0 || sleep_ms > 5000) {
    return Status::InvalidArgument("sleep_ms must be in [0, 5000]");
  }
  c.sleep_ms = static_cast<size_t>(sleep_ms);
  return c;
}

easytime::Json BacktestConfig::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("method", method);
  j.Set("method_config", method_config);
  j.Set("origins", static_cast<int64_t>(origins));
  j.Set("horizon", static_cast<int64_t>(horizon));
  j.Set("stride", static_cast<int64_t>(stride));
  j.Set("window", BacktestWindowName(window));
  j.Set("window_size", static_cast<int64_t>(window_size));
  j.Set("min_train", static_cast<int64_t>(min_train));
  j.Set("confidence", confidence);
  j.Set("scaler", scaler);
  easytime::Json m = easytime::Json::Array();
  for (const auto& name : metrics) m.Append(name);
  j.Set("metrics", std::move(m));
  j.Set("seed", static_cast<int64_t>(seed));
  if (sleep_ms > 0) j.Set("sleep_ms", static_cast<int64_t>(sleep_ms));
  return j;
}

easytime::Json OriginEval::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("index", static_cast<int64_t>(index));
  j.Set("origin", static_cast<int64_t>(origin));
  j.Set("train_size", static_cast<int64_t>(train_size));
  easytime::Json m = easytime::Json::Object();
  for (const auto& [name, v] : metrics) m.Set(name, v);
  j.Set("metrics", std::move(m));
  j.Set("coverage", coverage);
  j.Set("interval_width", interval_width);
  j.Set("fit_seconds", fit_seconds);
  return j;
}

easytime::Result<OriginEval> OriginEval::FromJson(const easytime::Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("origin record must be an object");
  }
  OriginEval o;
  o.index = static_cast<size_t>(j.GetInt("index", 0));
  o.origin = static_cast<size_t>(j.GetInt("origin", 0));
  o.train_size = static_cast<size_t>(j.GetInt("train_size", 0));
  if (j.Has("metrics")) {
    const auto& m = j.Get("metrics");
    if (!m.is_object()) {
      return Status::InvalidArgument("origin metrics must be an object");
    }
    for (const auto& name : m.keys()) {
      const auto& v = m.Get(name);
      if (!v.is_number()) {
        return Status::InvalidArgument("origin metric values must be numbers");
      }
      o.metrics[name] = v.AsDouble();
    }
  }
  o.coverage = j.GetDouble("coverage", 0.0);
  o.interval_width = j.GetDouble("interval_width", 0.0);
  o.fit_seconds = j.GetDouble("fit_seconds", 0.0);
  return o;
}

easytime::Json BacktestReport::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  easytime::Json arr = easytime::Json::Array();
  for (const auto& o : origins) arr.Append(o.ToJson());
  j.Set("origins", std::move(arr));
  easytime::Json agg = easytime::Json::Object();
  for (const auto& [name, v] : aggregate) agg.Set(name, v);
  j.Set("aggregate", std::move(agg));
  j.Set("coverage", coverage);
  j.Set("mean_interval_width", mean_interval_width);
  j.Set("resumed", static_cast<int64_t>(resumed));
  return j;
}

easytime::Result<std::vector<size_t>> BacktestOrigins(
    size_t n, const BacktestConfig& config) {
  size_t stride = config.stride == 0 ? config.horizon : config.stride;
  size_t span = config.horizon + (config.origins - 1) * stride;
  if (n < span + config.min_train) {
    return Status::InvalidArgument(
        "series too short for backtest: length " + std::to_string(n) +
        " < min_train " + std::to_string(config.min_train) + " + span " +
        std::to_string(span) + " (origins*stride+horizon)");
  }
  size_t first = n - span;
  if (config.window == BacktestWindow::kSliding && config.window_size > 0) {
    if (config.window_size < config.min_train) {
      return Status::InvalidArgument("window_size smaller than min_train");
    }
    if (config.window_size > first) {
      return Status::InvalidArgument(
          "window_size " + std::to_string(config.window_size) +
          " exceeds the earliest origin position " + std::to_string(first));
    }
  }
  std::vector<size_t> origins(config.origins);
  for (size_t i = 0; i < config.origins; ++i) origins[i] = first + i * stride;
  return origins;
}

namespace {

/// Evaluates one origin: deterministic function of (values, config, index).
easytime::Result<OriginEval> EvaluateOrigin(const std::vector<double>& values,
                                            size_t period_hint,
                                            const BacktestConfig& config,
                                            const std::vector<size_t>& origins,
                                            size_t index) {
  const size_t origin = origins[index];
  size_t train_begin = 0;
  if (config.window == BacktestWindow::kSliding) {
    // window_size 0 = "first origin's position": every origin then trains on
    // the same number of points, making metric drift across origins a pure
    // data effect rather than a train-size effect.
    size_t ws = config.window_size > 0 ? config.window_size : origins.front();
    train_begin = origin - ws;
  }
  std::vector<double> train(
      values.begin() + static_cast<long>(train_begin),
      values.begin() + static_cast<long>(origin));
  std::vector<double> actual(
      values.begin() + static_cast<long>(origin),
      values.begin() + static_cast<long>(origin + config.horizon));

  EASYTIME_ASSIGN_OR_RETURN(auto scaler, tsdata::MakeScaler(config.scaler));
  EASYTIME_RETURN_IF_ERROR(scaler->Fit(train));
  std::vector<double> train_scaled = scaler->Transform(train);

  methods::FitContext ctx;
  ctx.period_hint = period_hint;
  ctx.horizon = config.horizon;
  ctx.seed = config.seed;

  EASYTIME_ASSIGN_OR_RETURN(methods::ForecasterPtr model,
                            methods::MethodRegistry::Global().Create(
                                config.method, config.method_config));
  Stopwatch fit_watch;
  EASYTIME_ASSIGN_OR_RETURN(
      methods::IntervalForecast fc,
      model->ForecastWithIntervals(train_scaled, ctx, config.confidence));
  double fit_seconds = fit_watch.ElapsedSeconds();
  if (fc.point.size() != config.horizon) {
    return Status::Internal("forecaster returned wrong horizon length");
  }

  std::vector<double> point = scaler->Inverse(fc.point);
  std::vector<double> lower = scaler->Inverse(fc.lower);
  std::vector<double> upper = scaler->Inverse(fc.upper);
  for (size_t h = 0; h < point.size(); ++h) {
    // Affine scalers preserve interval order, but keep the invariant robust
    // to any future non-monotone scaler.
    if (lower[h] > upper[h]) std::swap(lower[h], upper[h]);
  }

  OriginEval out;
  out.index = index;
  out.origin = origin;
  out.train_size = train.size();
  out.fit_seconds = fit_seconds;

  MetricContext mctx;
  mctx.train = train;
  mctx.period = period_hint;
  EASYTIME_ASSIGN_OR_RETURN(out.metrics,
                            MetricRegistry::Global().ComputeAll(
                                config.metrics, actual, point, mctx));
  size_t inside = 0;
  double width = 0.0;
  for (size_t h = 0; h < actual.size(); ++h) {
    if (actual[h] >= lower[h] && actual[h] <= upper[h]) ++inside;
    width += upper[h] - lower[h];
  }
  out.coverage = static_cast<double>(inside) / actual.size();
  out.interval_width = width / actual.size();

  if (config.sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config.sleep_ms));
  }
  return out;
}

}  // namespace

easytime::Result<BacktestReport> RunBacktest(const std::vector<double>& values,
                                             size_t period_hint,
                                             const BacktestConfig& config,
                                             const BacktestHooks& hooks) {
  if (!methods::MethodRegistry::Global().Contains(config.method)) {
    return Status::NotFound("unknown method: " + config.method);
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<size_t> origins,
                            BacktestOrigins(values.size(), config));
  if (period_hint == 0) period_hint = tsdata::DetectPeriod(values);

  const size_t total = origins.size();
  struct Slot {
    OriginEval eval;
    Status status = Status::OK();
    bool spliced = false;
    bool ran = false;
  };
  std::vector<Slot> slots(total);

  // Splice checkpointed origins in before the fan-out so resumed indices
  // never reach a worker.
  std::vector<size_t> todo;
  todo.reserve(total);
  size_t resumed = 0;
  for (size_t i = 0; i < total; ++i) {
    if (hooks.completed != nullptr) {
      auto it = hooks.completed->find(i);
      if (it != hooks.completed->end()) {
        slots[i].eval = it->second;
        slots[i].spliced = true;
        ++resumed;
        continue;
      }
    }
    todo.push_back(i);
  }

  std::mutex emit_mu;  // serializes on_origin / progress
  std::atomic<size_t> done{resumed};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_hit{false};

  auto run_origin = [&](size_t t) {
    const size_t i = todo[t];
    if (cancelled.load(std::memory_order_relaxed) ||
        (hooks.cancelled && hooks.cancelled())) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    if (deadline_hit.load(std::memory_order_relaxed) ||
        hooks.deadline.expired()) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    auto res = EvaluateOrigin(values, period_hint, config, origins, i);
    Slot& slot = slots[i];
    if (res.ok()) {
      slot.eval = *res;
      slot.ran = true;
      std::lock_guard<std::mutex> lock(emit_mu);
      if (hooks.on_origin) hooks.on_origin(slot.eval);
      if (hooks.progress) {
        hooks.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                       total);
      }
    } else {
      slot.status = res.status();
      if (slot.status.IsDeadlineExceeded()) {
        deadline_hit.store(true, std::memory_order_relaxed);
      }
    }
  };

  // A thread budget of one means no pool at all (strictly sequential);
  // otherwise the calling thread works alongside budget-1 pool workers, the
  // same arithmetic the pipeline applies under the job pool.
  if (hooks.max_threads == 1) {
    for (size_t t = 0; t < todo.size(); ++t) run_origin(t);
  } else {
    size_t pool_workers = 0;  // 0 = hardware concurrency / env override
    if (hooks.max_threads > 0) pool_workers = hooks.max_threads - 1;
    ThreadPool pool(pool_workers);
    pool.ParallelFor(todo.size(), run_origin, Schedule::kGuided);
  }

  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("backtest cancelled");
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("backtest exceeded its deadline");
  }
  // Homogeneous origins: any per-origin failure is a config/method problem,
  // reported deterministically as the lowest-index error.
  for (size_t i = 0; i < total; ++i) {
    if (!slots[i].status.ok()) {
      return slots[i].status.WithContext("backtest origin " +
                                         std::to_string(i));
    }
  }

  BacktestReport report;
  report.origins.reserve(total);
  report.resumed = resumed;
  // Fixed index-order accumulation: the aggregate is bit-identical no matter
  // how the fan-out interleaved.
  for (size_t i = 0; i < total; ++i) {
    const OriginEval& o = slots[i].eval;
    double n = static_cast<double>(i);
    for (const auto& name : config.metrics) {
      auto it = o.metrics.find(name);
      double v = it == o.metrics.end() ? 0.0 : it->second;
      double& slot = report.aggregate[name];
      slot = (slot * n + v) / (n + 1.0);
    }
    report.coverage = (report.coverage * n + o.coverage) / (n + 1.0);
    report.mean_interval_width =
        (report.mean_interval_width * n + o.interval_width) / (n + 1.0);
    report.origins.push_back(o);
  }
  return report;
}

}  // namespace easytime::eval
