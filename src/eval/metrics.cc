#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace easytime::eval {

namespace {

bool SameSize(const std::vector<double>& a, const std::vector<double>& p) {
  return !a.empty() && a.size() == p.size();
}

}  // namespace

double Mae(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - p[i]);
  return acc / static_cast<double>(a.size());
}

double Mse(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - p[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double Rmse(const std::vector<double>& a, const std::vector<double>& p) {
  return std::sqrt(Mse(a, p));
}

double Mape(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i]) < 1e-9) continue;
    acc += std::fabs((a[i] - p[i]) / a[i]);
    ++n;
  }
  return n == 0 ? std::nan("") : 100.0 * acc / static_cast<double>(n);
}

double Smape(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double denom = (std::fabs(a[i]) + std::fabs(p[i])) / 2.0;
    if (denom < 1e-9) continue;
    acc += std::fabs(a[i] - p[i]) / denom;
  }
  return 100.0 * acc / static_cast<double>(a.size());
}

double Wape(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - p[i]);
    den += std::fabs(a[i]);
  }
  return den < 1e-12 ? std::nan("") : 100.0 * num / den;
}

double Mase(const std::vector<double>& a, const std::vector<double>& p,
            const MetricContext& ctx) {
  if (!SameSize(a, p)) return std::nan("");
  size_t m = std::max<size_t>(1, ctx.period);
  if (ctx.train.size() <= m) return std::nan("");
  double scale = 0.0;
  size_t cnt = 0;
  for (size_t i = m; i < ctx.train.size(); ++i) {
    scale += std::fabs(ctx.train[i] - ctx.train[i - m]);
    ++cnt;
  }
  scale /= static_cast<double>(cnt);
  if (scale < 1e-12) scale = 1e-12;
  return Mae(a, p) / scale;
}

double R2(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double mean = Mean(a);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ss_res += (a[i] - p[i]) * (a[i] - p[i]);
    ss_tot += (a[i] - mean) * (a[i] - mean);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double MaxError(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  double mx = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(a[i] - p[i]));
  }
  return mx;
}

double MedianAe(const std::vector<double>& a, const std::vector<double>& p) {
  if (!SameSize(a, p)) return std::nan("");
  std::vector<double> err(a.size());
  for (size_t i = 0; i < a.size(); ++i) err[i] = std::fabs(a[i] - p[i]);
  return Median(std::move(err));
}

MetricRegistry::MetricRegistry() {
  auto simple = [this](const std::string& name,
                       double (*fn)(const std::vector<double>&,
                                    const std::vector<double>&),
                       bool higher = false) {
    (void)Register(
        name,
        [fn](const std::vector<double>& a, const std::vector<double>& p,
             const MetricContext&) { return fn(a, p); },
        higher);
  };
  simple("mae", &Mae);
  simple("mse", &Mse);
  simple("rmse", &Rmse);
  simple("mape", &Mape);
  simple("smape", &Smape);
  simple("wape", &Wape);
  (void)Register("mase",
                 [](const std::vector<double>& a, const std::vector<double>& p,
                    const MetricContext& ctx) { return Mase(a, p, ctx); });
  simple("r2", &R2, /*higher=*/true);
  simple("max_error", &MaxError);
  simple("median_ae", &MedianAe);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

easytime::Status MetricRegistry::Register(const std::string& name, MetricFn fn,
                                          bool higher_is_better) {
  if (name.empty()) {
    return Status::InvalidArgument("metric name must be non-empty");
  }
  if (entries_.count(name)) {
    return Status::AlreadyExists("metric already registered: " + name);
  }
  order_.push_back(name);
  entries_.emplace(name, Entry{std::move(fn), higher_is_better});
  return Status::OK();
}

easytime::Result<double> MetricRegistry::Compute(
    const std::string& name, const std::vector<double>& actual,
    const std::vector<double>& predicted, const MetricContext& ctx) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown metric: " + name);
  }
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument(
        "metric '" + name + "': length mismatch (" +
        std::to_string(actual.size()) + " vs " +
        std::to_string(predicted.size()) + ")");
  }
  if (actual.empty()) {
    return Status::InvalidArgument("metric '" + name + "': empty input");
  }
  return it->second.fn(actual, predicted, ctx);
}

easytime::Result<std::map<std::string, double>> MetricRegistry::ComputeAll(
    const std::vector<std::string>& names, const std::vector<double>& actual,
    const std::vector<double>& predicted, const MetricContext& ctx) const {
  std::map<std::string, double> out;
  for (const auto& name : names) {
    EASYTIME_ASSIGN_OR_RETURN(double v, Compute(name, actual, predicted, ctx));
    out[name] = v;
  }
  return out;
}

bool MetricRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

bool MetricRegistry::HigherIsBetter(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.higher_is_better;
}

std::vector<std::string> MetricRegistry::Names() const { return order_; }

}  // namespace easytime::eval
