#include "core/easytime.h"

#include <cmath>
#include <mutex>

#include "common/fault.h"
#include "common/logging.h"
#include "methods/registry.h"
#include "tsdata/dataset_store.h"

namespace easytime::core {

EasyTime::Options::Options() {
  // A compact default: enough datasets to exercise every domain, a method
  // set spanning the three families, and a rolling protocol for the KB.
  suite.univariate_per_domain = 2;
  suite.multivariate_total = 3;
  suite.min_length = 320;
  suite.max_length = 512;

  seed_eval.strategy = eval::Strategy::kFixed;
  seed_eval.horizon = 24;
  seed_eval.metrics = {"mae", "rmse", "smape", "mase"};

  seed_methods = {"naive",   "seasonal_naive", "drift", "ses",
                  "holt",    "holt_winters_add", "theta", "ar",
                  "lag_linear", "dlinear", "knn", "gbdt", "mlp"};
}

easytime::Result<std::unique_ptr<EasyTime>> EasyTime::Create(
    const Options& options) {
  auto system = std::unique_ptr<EasyTime>(new EasyTime());
  system->options_ = options;

  // With persistence configured, warm starts load the generated benchmark
  // datasets back from the store instead of regenerating them (the dominant
  // cost of a cold Create).
  const std::string dataset_store_dir =
      options.store_dir.empty() ? std::string()
                                : options.store_dir + "/datasets";
  bool datasets_restored = false;
  if (!dataset_store_dir.empty()) {
    auto restored_or = tsdata::LoadRepositoryFromStore(
        dataset_store_dir, options.suite, &system->repository_);
    if (restored_or.ok()) {
      datasets_restored = *restored_or;
    } else {
      // A damaged dataset cache must never prevent startup: regenerate, and
      // PersistRepository below replaces the bad store wholesale.
      EASYTIME_LOG(Warning) << "EasyTime: ignoring unusable dataset store at "
                            << dataset_store_dir << " ("
                            << restored_or.status().ToString()
                            << "); regenerating the benchmark suite";
    }
  }
  if (datasets_restored) {
    EASYTIME_LOG(Info) << "EasyTime: restored " << system->repository_.size()
                       << " benchmark datasets from " << dataset_store_dir;
  } else {
    EASYTIME_RETURN_IF_ERROR(system->repository_.AddSuite(options.suite));
    EASYTIME_LOG(Info) << "EasyTime: generated " << system->repository_.size()
                       << " benchmark datasets";
    if (!dataset_store_dir.empty()) {
      EASYTIME_RETURN_IF_ERROR(tsdata::PersistRepository(
          dataset_store_dir, options.suite, system->repository_));
    }
  }

  // Streamed observations are user data the generator cannot reproduce:
  // replay the append log over the (deterministic) base suite before the
  // knowledge layers see the repository, so seeding, restore-sync, and
  // ensemble pretraining all observe the fully-extended series.
  tsdata::AppendLog::ReplayStats append_replay;
  if (!options.store_dir.empty()) {
    tsdata::AppendLogOptions log_options;
    log_options.dir = options.store_dir + "/appends";
    log_options.sync_every_append = options.store_sync_every_append;
    log_options.compact_every = options.append_compact_every;
    EASYTIME_ASSIGN_OR_RETURN(
        system->append_log_,
        tsdata::AppendLog::Open(log_options, &system->repository_,
                                &append_replay));
  }

  // With persistence configured, a populated store restores the knowledge
  // base (snapshot + WAL tail) and the seeding evaluation is skipped.
  knowledge::KnowledgeStore::OpenInfo open_info;
  if (!options.store_dir.empty()) {
    knowledge::KnowledgeStore::Options store_options;
    store_options.dir = options.store_dir;
    store_options.compact_every = options.store_compact_every;
    store_options.sync_every_append = options.store_sync_every_append;
    EASYTIME_ASSIGN_OR_RETURN(
        system->store_,
        knowledge::KnowledgeStore::Open(store_options, &system->kb_,
                                        &open_info));
    system->restored_from_store_ = open_info.restored;
  }

  if (system->restored_from_store_) {
    EASYTIME_LOG(Info) << "EasyTime: opened warm from " << options.store_dir
                       << " (" << open_info.datasets << " datasets, "
                       << open_info.results
                       << " results); seeding evaluation skipped";
    // The KB snapshot can predate the append log's newest records (series
    // metadata is only checkpointed with evaluation commits): re-sync any
    // dataset whose restored length lags the replayed series.
    if (append_replay.applied > 0) {
      for (const auto* ds : system->repository_.All()) {
        auto meta = system->kb_.GetDataset(ds->name());
        if (meta.ok() && (*meta)->length != ds->length()) {
          (void)system->kb_.UpdateDatasetData(*ds);
        }
      }
    }
  } else {
    // Seed the knowledge base by running the pipeline.
    pipeline::BenchmarkConfig config;
    config.eval = options.seed_eval;
    for (const auto& name : options.seed_methods) {
      config.methods.push_back(pipeline::MethodSpec{name, Json::Object()});
    }
    pipeline::PipelineRunner runner(&system->repository_, config);
    EASYTIME_ASSIGN_OR_RETURN(pipeline::BenchmarkReport report, runner.Run());

    for (const auto* ds : system->repository_.All()) {
      system->kb_.AddDataset(*ds);
    }
    system->kb_.AddAllMethods();
    system->kb_.AddReport(report);
  }

  if (options.pretrain_ensemble) {
    system->ensemble_ = ensemble::AutoEnsembleEngine(options.ensemble);
    EASYTIME_RETURN_IF_ERROR(
        system->ensemble_.Pretrain(system->repository_, system->kb_));
  }
  if (options.pretrain_foundation) {
    std::vector<std::vector<double>> corpus;
    for (const auto* ds : system->repository_.All()) {
      for (const auto& ch : ds->channels()) corpus.push_back(ch.values());
    }
    EASYTIME_ASSIGN_OR_RETURN(
        auto foundation_model,
        ensemble::PretrainFoundation(corpus, options.foundation,
                                     options.ensemble.ts2vec));
    EASYTIME_RETURN_IF_ERROR(
        ensemble::RegisterFoundationMethod(foundation_model));
    system->kb_.AddAllMethods();  // pick up the new method's metadata
    EASYTIME_LOG(Info) << "foundation method 'ts2vec_foundation' registered";
  }
  if (system->store_ && !system->restored_from_store_) {
    // Persist the freshly seeded knowledge as the store's first snapshot so
    // the next Create opens warm.
    EASYTIME_RETURN_IF_ERROR(system->store_->Checkpoint(system->kb_));
  }
  EASYTIME_RETURN_IF_ERROR(system->RefreshQa());
  return system;
}

easytime::Status EasyTime::RefreshQa() {
  EASYTIME_ASSIGN_OR_RETURN(qa_, qa::QaEngine::Create(kb_));
  return Status::OK();
}

easytime::Result<size_t> EasyTime::IngestReplicatedResults(
    std::vector<knowledge::ResultEntry> entries) {
  if (entries.empty()) return static_cast<size_t>(0);
  std::unique_lock lock(mu_);
  // Rebuild-through-Restore keeps the whole batch at one version bump (the
  // recovery contract) instead of N AddReport-style bumps.
  std::vector<knowledge::DatasetMeta> datasets(kb_.datasets().begin(),
                                               kb_.datasets().end());
  std::vector<knowledge::MethodMeta> methods(kb_.methods().begin(),
                                             kb_.methods().end());
  std::vector<knowledge::ResultEntry> results(kb_.results().begin(),
                                              kb_.results().end());
  const size_t added = entries.size();
  for (auto& e : entries) results.push_back(std::move(e));
  kb_.Restore(std::move(datasets), std::move(methods), std::move(results));
  EASYTIME_RETURN_IF_ERROR(RefreshQa());
  return added;
}

easytime::Result<pipeline::BenchmarkReport> EasyTime::RunAndCommit(
    pipeline::BenchmarkConfig config, const pipeline::RunHooks& hooks) {
  // Run phase under a shared lock: the pipeline only reads the repository,
  // so queries (and other evaluations) proceed concurrently.
  pipeline::BenchmarkReport report;
  {
    std::shared_lock lock(mu_);
    pipeline::PipelineRunner runner(&repository_, std::move(config));
    EASYTIME_ASSIGN_OR_RETURN(report, runner.Run(hooks));
  }
  // Commit phase under the exclusive lock: append to the knowledge base and
  // swap in a rebuilt Q&A engine atomically with respect to queries.
  std::unique_lock lock(mu_);
  kb_.AddReport(report);
  if (store_) {
    // The KB mutation precedes the store append so a compaction triggered
    // here snapshots state that covers every appended record.
    std::vector<knowledge::ResultEntry> entries;
    for (const auto* rec : report.Successful()) {
      knowledge::ResultEntry entry;
      entry.dataset = rec->dataset;
      entry.method = rec->method;
      entry.strategy = rec->strategy;
      entry.horizon = rec->horizon;
      entry.metrics = rec->metrics;
      entry.fit_seconds = rec->fit_seconds;
      entry.forecast_seconds = rec->forecast_seconds;
      entries.push_back(std::move(entry));
    }
    EASYTIME_RETURN_IF_ERROR(store_->AppendResults(entries, kb_));
  }
  EASYTIME_RETURN_IF_ERROR(RefreshQa());
  return report;
}

easytime::Result<pipeline::BenchmarkReport> EasyTime::OneClickEvaluate(
    const easytime::Json& config_json) {
  return OneClickEvaluate(config_json, pipeline::RunHooks{});
}

easytime::Result<pipeline::BenchmarkReport> EasyTime::OneClickEvaluate(
    const easytime::Json& config_json, const pipeline::RunHooks& hooks) {
  EASYTIME_ASSIGN_OR_RETURN(pipeline::BenchmarkConfig config,
                            pipeline::BenchmarkConfig::FromJson(config_json));
  return RunAndCommit(std::move(config), hooks);
}

easytime::Result<pipeline::BenchmarkReport> EasyTime::EvaluateMethodEverywhere(
    const std::string& method_name, const easytime::Json& method_config) {
  if (!methods::MethodRegistry::Global().Contains(method_name)) {
    return Status::NotFound("unknown method: " + method_name);
  }
  pipeline::BenchmarkConfig config;
  config.eval = options_.seed_eval;
  config.methods.push_back(pipeline::MethodSpec{method_name, method_config});
  return RunAndCommit(std::move(config), pipeline::RunHooks{});
}

easytime::Result<EasyTime::AppendOutcome> EasyTime::AppendObservations(
    const std::string& dataset,
    const std::vector<std::vector<double>>& channels,
    std::optional<size_t> expected_start) {
  if (FaultRegistry::AnyArmed()) {
    EASYTIME_RETURN_IF_ERROR(FaultRegistry::Global().Check("core.append"));
  }
  // Validate the batch shape up front: nothing below may fail after the
  // record has been durably logged.
  if (channels.empty() || channels[0].empty()) {
    return Status::InvalidArgument("append must carry at least one value");
  }
  const size_t batch = channels[0].size();
  for (const auto& ch : channels) {
    if (ch.size() != batch) {
      return Status::InvalidArgument(
          "append channels have unequal lengths; channels must stay aligned");
    }
    for (double v : ch) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("appended values must be finite");
      }
    }
  }

  // Per-dataset serialization: WAL order equals offset order within one
  // dataset (the append log's replay contract), while appends to different
  // datasets still overlap and share group-commit fsyncs.
  std::mutex* dataset_mu;
  {
    std::lock_guard<std::mutex> lock(append_index_mu_);
    dataset_mu = &append_mus_[dataset];
  }
  std::lock_guard<std::mutex> serialize(*dataset_mu);

  size_t start = 0;
  {
    std::shared_lock lock(mu_);
    EASYTIME_ASSIGN_OR_RETURN(const tsdata::Dataset* ds,
                              repository_.Get(dataset));
    if (channels.size() != ds->num_channels()) {
      return Status::InvalidArgument(
          "append carries " + std::to_string(channels.size()) +
          " channels; dataset '" + dataset + "' has " +
          std::to_string(ds->num_channels()));
    }
    start = ds->length();
  }
  if (expected_start.has_value() && *expected_start != start) {
    if (*expected_start < start) {
      return Status::InvalidArgument(
          "duplicate append: start " + std::to_string(*expected_start) +
          " is already ingested (series length " + std::to_string(start) +
          ")");
    }
    return Status::InvalidArgument(
        "out-of-order append: start " + std::to_string(*expected_start) +
        " leaves a gap (series length " + std::to_string(start) + ")");
  }

  // Durability point: the batch is on disk before anyone can observe it.
  if (append_log_) {
    tsdata::AppendRecord record;
    record.dataset = dataset;
    record.start = start;
    record.channels = channels;
    EASYTIME_RETURN_IF_ERROR(append_log_->Append(record));
  }

  knowledge::KnowledgeBase::DataUpdate update;
  {
    std::unique_lock lock(mu_);
    EASYTIME_ASSIGN_OR_RETURN(tsdata::Dataset* ds,
                              repository_.GetMutable(dataset));
    EASYTIME_RETURN_IF_ERROR(ds->AppendObservations(channels));
    update = kb_.UpdateDatasetData(*ds);
  }

  AppendOutcome out;
  out.appended = batch;
  out.length = start + batch;
  out.characteristics_refreshed = update.characteristics_refreshed;
  out.data_version = update.data_version;
  return out;
}

easytime::Result<tsdata::Series> EasyTime::SeriesSnapshot(
    const std::string& dataset, size_t channel) const {
  std::shared_lock lock(mu_);
  EASYTIME_ASSIGN_OR_RETURN(const tsdata::Dataset* ds,
                            repository_.Get(dataset));
  if (channel >= ds->num_channels()) {
    return Status::InvalidArgument(
        "dataset '" + dataset + "' has " +
        std::to_string(ds->num_channels()) + " channels; no channel " +
        std::to_string(channel));
  }
  return ds->channel(channel);
}

easytime::Result<ensemble::Recommendation> EasyTime::Recommend(
    const std::string& dataset_name, size_t k) const {
  std::shared_lock lock(mu_);
  EASYTIME_ASSIGN_OR_RETURN(const tsdata::Dataset* ds,
                            repository_.Get(dataset_name));
  return ensemble_.Recommend(ds->primary().values(), k);
}

easytime::Result<ensemble::Recommendation> EasyTime::RecommendForValues(
    const std::vector<double>& values, size_t k) const {
  std::shared_lock lock(mu_);
  return ensemble_.Recommend(values, k);
}

easytime::Result<EasyTime::EnsembleEvaluation> EasyTime::EvaluateWithEnsemble(
    const std::string& dataset_name, const eval::EvalConfig& config) const {
  std::shared_lock lock(mu_);
  EASYTIME_ASSIGN_OR_RETURN(const tsdata::Dataset* ds,
                            repository_.Get(dataset_name));
  const std::vector<double>& values = ds->primary().values();

  EASYTIME_ASSIGN_OR_RETURN(auto ens, ensemble_.BuildEnsemble(values));
  eval::Evaluator evaluator(config);

  EnsembleEvaluation out;
  EASYTIME_ASSIGN_OR_RETURN(out.ensemble,
                            evaluator.EvaluateValues(ens.get(), values));
  out.weights = ens->weights();

  for (const auto& name : ens->member_names()) {
    EASYTIME_ASSIGN_OR_RETURN(methods::ForecasterPtr m,
                              methods::MethodRegistry::Global().Create(name));
    EASYTIME_ASSIGN_OR_RETURN(eval::EvalResult r,
                              evaluator.EvaluateValues(m.get(), values));
    out.members.emplace_back(name, std::move(r));
  }
  return out;
}

easytime::Result<qa::QaResponse> EasyTime::Ask(const std::string& question) {
  std::shared_lock lock(mu_);
  if (!qa_) return Status::Internal("Q&A engine not initialized");
  return qa_->Ask(question);
}

easytime::Result<qa::QaResponse> EasyTime::AskSql(
    const std::string& sql, const easytime::Deadline& deadline) {
  std::shared_lock lock(mu_);
  if (!qa_) return Status::Internal("Q&A engine not initialized");
  return qa_->AskSql(sql, deadline);
}

}  // namespace easytime::core
