#pragma once

/// \file easytime.h
/// \brief The EasyTime system facade — the public API mirroring the paper's
/// four modules (Fig. 1): the TFB benchmark substrate, One-Click Evaluation,
/// the Automated Ensemble, and natural-language Q&A.
///
/// Typical use:
/// \code
///   easytime::core::EasyTime::Options opt;        // defaults are sensible
///   EASYTIME_ASSIGN_OR_RETURN(auto system, easytime::core::EasyTime::Create(opt));
///   auto report = system->OneClickEvaluate(config_json);
///   auto rec    = system->Recommend("traffic_u0");
///   auto resp   = system->Ask("top-5 methods by mae on traffic datasets?");
/// \endcode

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "ensemble/auto_ensemble.h"
#include "ensemble/foundation.h"
#include "eval/evaluator.h"
#include "knowledge/knowledge_base.h"
#include "knowledge/knowledge_store.h"
#include "pipeline/runner.h"
#include "qa/qa_engine.h"
#include "tsdata/append_log.h"
#include "tsdata/repository.h"

namespace easytime::core {

/// \brief The assembled EasyTime system.
///
/// Thread safety (the contract the serving layer builds on): after Create
/// returns, Recommend/RecommendForValues/EvaluateWithEnsemble/Ask/AskSql may
/// be called concurrently from any number of threads. The evaluation entry
/// points run their pipeline under a shared lock too — only the short
/// commit phase (knowledge-base append + Q&A rebuild) takes the facade's
/// exclusive lock, so long evaluations do not stall concurrent reads.
/// Mutating the repository via repository() is only safe before concurrent
/// use begins; once serving, AppendObservations is the one sanctioned way to
/// grow a stored series (exclusive lock + durable append log).
class EasyTime {
 public:
  /// System bring-up options.
  struct Options {
    tsdata::SuiteSpec suite;            ///< benchmark data suite to generate
    eval::EvalConfig seed_eval;         ///< protocol for seeding the KB
    std::vector<std::string> seed_methods;  ///< empty = a fast default set
    ensemble::AutoEnsembleOptions ensemble;
    bool pretrain_ensemble = true;      ///< run the offline phase at startup
    /// Pretrain and register the zero-shot "ts2vec_foundation" method on the
    /// generated corpus (the method layer's foundation-model slot).
    bool pretrain_foundation = false;
    ensemble::FoundationOptions foundation;

    /// \brief Durable knowledge persistence (DESIGN.md §9). When set, Create
    /// opens a storage engine in this directory: an empty store is seeded by
    /// the pipeline run and snapshotted; a populated one restores the
    /// knowledge base (snapshot + WAL tail) and SKIPS the seeding
    /// evaluation, and every committed evaluation report is appended to the
    /// WAL durably. Empty = in-memory only (the historical behavior).
    std::string store_dir;
    /// Compact the store (snapshot + delete covered WAL segments) after
    /// this many appended reports; 0 disables automatic compaction.
    size_t store_compact_every = 32;
    /// fsync every store append (strongest durability; slower commits).
    bool store_sync_every_append = true;
    /// Compact the streaming append log after this many appended batches;
    /// 0 disables automatic compaction.
    size_t append_compact_every = 256;

    Options();
  };

  /// \brief Builds the system: generates the benchmark suite, runs the
  /// pipeline to seed the knowledge base, pretrains the Automated Ensemble,
  /// and stands up the Q&A engine.
  static easytime::Result<std::unique_ptr<EasyTime>> Create(
      const Options& options);

  // ----- module 1/2: benchmark + one-click evaluation ----------------------

  /// The dataset repository (add user datasets here before evaluating).
  tsdata::Repository* repository() { return &repository_; }
  const tsdata::Repository& repository() const { return repository_; }

  /// The accumulated benchmark knowledge.
  const knowledge::KnowledgeBase& knowledge() const { return kb_; }

  /// True when Create restored the knowledge base from a populated store
  /// instead of running the seeding pipeline (the serving layer uses this
  /// to warm its result cache at startup).
  bool restored_from_store() const { return restored_from_store_; }

  /// The durable backing store, or null when store_dir was empty.
  knowledge::KnowledgeStore* knowledge_store() { return store_.get(); }

  /// \brief One-click evaluation from a configuration JSON (the paper's
  /// "edit the configuration file, then one click"). Results are appended
  /// to the knowledge base.
  easytime::Result<pipeline::BenchmarkReport> OneClickEvaluate(
      const easytime::Json& config_json);

  /// OneClickEvaluate with pipeline hooks (cancellation + progress) — the
  /// serving layer's async evaluation jobs use this. A cancelled run leaves
  /// the knowledge base untouched and returns Status::Cancelled.
  easytime::Result<pipeline::BenchmarkReport> OneClickEvaluate(
      const easytime::Json& config_json, const pipeline::RunHooks& hooks);

  /// One-click "run this method on all datasets".
  easytime::Result<pipeline::BenchmarkReport> EvaluateMethodEverywhere(
      const std::string& method_name,
      const easytime::Json& method_config = easytime::Json::Object());

  // ----- streaming ingestion (DESIGN.md §13) --------------------------------

  /// What an accepted append did.
  struct AppendOutcome {
    size_t appended = 0;  ///< observations added per channel
    size_t length = 0;    ///< new series length
    bool characteristics_refreshed = false;
    uint64_t data_version = 0;  ///< KnowledgeBase::DataVersion after
  };

  /// \brief Durably appends a batch of observations to a stored dataset:
  /// one inner vector per channel, equal non-zero lengths, finite values.
  /// \p expected_start (when set) is the index the first appended value must
  /// land on — a stale offset is rejected with InvalidArgument (lower =
  /// duplicate/already-ingested, higher = out-of-order/gap), giving
  /// at-most-once semantics to retrying producers. The batch is WAL-logged
  /// (ack-after-durable, group-commit across datasets) before the in-memory
  /// series and the KB's per-series metadata are updated. Same-dataset
  /// appends serialize on a per-dataset mutex; different datasets proceed
  /// concurrently, as do all readers (queries hold the shared lock).
  easytime::Result<AppendOutcome> AppendObservations(
      const std::string& dataset,
      const std::vector<std::vector<double>>& channels,
      std::optional<size_t> expected_start = std::nullopt);

  /// \brief Copies one channel of a stored dataset under the shared lock —
  /// the safe way to read series values that may be growing concurrently
  /// (returns the Series copy so period hints travel with the values).
  easytime::Result<tsdata::Series> SeriesSnapshot(const std::string& dataset,
                                                  size_t channel = 0) const;

  /// The streaming append log, or null when store_dir was empty.
  tsdata::AppendLog* append_log() { return append_log_.get(); }

  // ----- module 3: automated ensemble --------------------------------------

  /// \brief Recommends top-k methods for a repository dataset (Fig. 4).
  easytime::Result<ensemble::Recommendation> Recommend(
      const std::string& dataset_name, size_t k = 0) const;

  /// Recommends for raw user-provided values (the "Upload Dataset" path).
  easytime::Result<ensemble::Recommendation> RecommendForValues(
      const std::vector<double>& values, size_t k = 0) const;

  /// \brief Builds and evaluates an automated ensemble on a dataset,
  /// returning its metrics alongside each member's individual metrics —
  /// the comparison the demo frontend displays (Fig. 4, labels 9/10).
  struct EnsembleEvaluation {
    eval::EvalResult ensemble;
    std::vector<std::pair<std::string, eval::EvalResult>> members;
    std::vector<double> weights;
  };
  easytime::Result<EnsembleEvaluation> EvaluateWithEnsemble(
      const std::string& dataset_name, const eval::EvalConfig& config) const;

  /// The pretrained ensemble engine (for advanced use).
  const ensemble::AutoEnsembleEngine& ensemble_engine() const {
    return ensemble_;
  }

  // ----- module 4: natural-language Q&A -------------------------------------

  /// Answers a natural-language question over the benchmark knowledge.
  easytime::Result<qa::QaResponse> Ask(const std::string& question);

  /// \brief Runs raw SQL through the verified retrieval path. The deadline
  /// bounds long-running table functions (TS_FORECAST/TS_FORECAST_BY).
  easytime::Result<qa::QaResponse> AskSql(
      const std::string& sql,
      const easytime::Deadline& deadline = easytime::Deadline());

  // ----- replication (DESIGN.md §14) ----------------------------------------

  /// \brief Applies result rows decoded from a shipped WAL segment to a live
  /// follower: merges them into the knowledge base through a single
  /// KnowledgeBase::Restore (one version bump per batch) and rebuilds the
  /// Q&A engine, all under the exclusive facade lock. Deliberately does NOT
  /// touch this process's own store — the shipped segment bytes are already
  /// imported durably by the replication plane; writing them again through
  /// the store would fork the sequence space. Deduplication is the caller's
  /// job (the follower tracks its applied-sequence watermark). Returns the
  /// number of rows merged.
  easytime::Result<size_t> IngestReplicatedResults(
      std::vector<knowledge::ResultEntry> entries);

 private:
  EasyTime() = default;

  /// Rebuilds the Q&A engine after the knowledge base changes.
  easytime::Status RefreshQa();

  /// Runs a parsed benchmark config and commits the report (shared lock for
  /// the run, exclusive lock for the commit).
  easytime::Result<pipeline::BenchmarkReport> RunAndCommit(
      pipeline::BenchmarkConfig config, const pipeline::RunHooks& hooks);

  /// Guards the module graph: shared for queries, exclusive for the commit
  /// phase of evaluations (kb_ append + qa_ swap).
  mutable std::shared_mutex mu_;
  tsdata::Repository repository_;
  knowledge::KnowledgeBase kb_;
  std::unique_ptr<knowledge::KnowledgeStore> store_;
  std::unique_ptr<tsdata::AppendLog> append_log_;
  /// Per-dataset append serialization (keeps WAL order == offset order per
  /// dataset; see append_log.h). Guarded by append_index_mu_; the mutexes
  /// themselves live in a node-stable map and are never removed.
  std::mutex append_index_mu_;
  std::map<std::string, std::mutex> append_mus_;
  bool restored_from_store_ = false;
  ensemble::AutoEnsembleEngine ensemble_;
  std::unique_ptr<qa::QaEngine> qa_;
  Options options_;
};

}  // namespace easytime::core
