#pragma once

/// \file client.h
/// \brief Loopback TCP client for TcpServer with reconnect + retry. One
/// request line out, one response line back; a dropped connection (the
/// server restarting, an injected serve.tcp.* fault) counts as transient:
/// the client reconnects and retries under the RetryPolicy before giving
/// up with Unavailable.

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "serve/retry.h"

namespace easytime::serve {

/// \brief A line-protocol TCP client. Not thread-safe: callers serialize or
/// give each thread its own client.
class TcpClient {
 public:
  /// \param port a TcpServer's bound port on 127.0.0.1
  /// \param auth_token credential for token-authenticated listeners; empty
  /// falls back to EASYTIME_AUTH_TOKEN, and if that is also unset no
  /// handshake is sent. With a token, Connect() authenticates before the
  /// first request — transparently across reconnects — and a rejected
  /// token surfaces as a non-retryable Unauthenticated error.
  TcpClient(uint16_t port, RetryPolicy retry = RetryPolicy(),
            std::string auth_token = "");
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// \brief Sends one raw request line (no newline), returns the raw
  /// response line. Reconnects and retries on connection failures.
  easytime::Result<std::string> SendLine(const std::string& line);

  /// \brief One unretried attempt, with transmission accounting for
  /// at-most-once forwarding (the cluster router's append path). On return,
  /// *\p request_sent tells whether any request byte may have reached the
  /// server: false = the failure happened while connecting/authenticating,
  /// so the request was certainly not executed and a retry is safe; true =
  /// the outcome is ambiguous (the server may have executed the request
  /// even though the reply was lost) and the caller must not blindly retry.
  easytime::Result<std::string> SendLineOnce(const std::string& line,
                                             bool* request_sent);

  /// \brief Typed call: builds the request envelope, sends it, and unwraps
  /// the response into the "result" payload or the error status.
  easytime::Result<easytime::Json> Call(const std::string& endpoint,
                                        const easytime::Json& params);

  /// Drops the current connection (the next call reconnects).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  easytime::Status Connect();
  /// One attempt: write the line, read one response line. Connection-level
  /// failures come back as Unavailable (retryable).
  easytime::Result<std::string> SendOnce(const std::string& line);
  /// Raw write-then-read-one-line on the open socket (no connect, no retry).
  easytime::Result<std::string> WriteAndReadLine(const std::string& line);

  uint16_t port_;
  RetryPolicy retry_;
  std::string auth_token_;
  int fd_ = -1;
  std::string read_buffer_;  ///< bytes past the last consumed line
};

}  // namespace easytime::serve
