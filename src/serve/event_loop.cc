#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "serve/request.h"

namespace easytime::serve {

namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

}  // namespace

EventLoopServer::EventLoopServer(ForecastServer* server, Options options)
    : handler_([server](const std::string& line) {
        return server->HandleLine(line);
      }),
      max_request_bytes_(server->options().max_request_bytes),
      options_(options) {}

EventLoopServer::EventLoopServer(LineHandler handler, size_t max_request_bytes,
                                 Options options)
    : handler_(std::move(handler)),
      max_request_bytes_(max_request_bytes),
      options_(options) {}

EventLoopServer::~EventLoopServer() { Stop(); }

size_t EventLoopServer::LineByteCap() const {
  if (options_.max_line_bytes > 0) return options_.max_line_bytes;
  return max_request_bytes_ * 2 + 1024;
}

easytime::Status EventLoopServer::Start() {
  if (running_.load()) return Status::OK();
  if (stopped_.load()) {
    return Status::Unavailable("event loop was stopped; create a new one");
  }

  auth_token_ = options_.auth_token;
  if (auth_token_.empty()) {
    if (const char* env = std::getenv("EASYTIME_AUTH_TOKEN")) {
      auth_token_ = env;
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  auto fail = [this](const std::string& what) {
    std::string err = std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Internal(what + ": " + err);
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind(127.0.0.1:" + std::to_string(options_.port) + ")");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname()");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen()");

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return fail("epoll_create1()");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd()");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return fail("epoll_ctl(wake)");
  }

  handlers_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, options_.num_handler_threads));
  running_.store(true);
  loop_thread_ = std::thread([this]() { LoopThread(); });
  return Status::OK();
}

void EventLoopServer::Stop() {
  if (!running_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The pool destructor runs any still-queued handler tasks; their
  // completions land in the mailbox and are simply discarded. It must go
  // before the fds so a late PostCompletion never writes a recycled fd.
  handlers_.reset();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
  running_.store(false);
}

void EventLoopServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // A full eventfd counter (impossible here) or a race with close is
  // harmless: the loop polls with a bounded timeout anyway.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoopServer::PostCompletion(Completion c) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    mailbox_.push_back(std::move(c));
  }
  WakeLoop();
}

EventLoopServer::Stats EventLoopServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void EventLoopServer::LoopThread() {
  std::vector<epoll_event> events(64);
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const Clock::time_point now = Clock::now();

    if (stopping_.load() && !draining) {
      draining = true;
      drain_deadline =
          now + std::chrono::microseconds(
                    static_cast<int64_t>(options_.drain_timeout_ms * 1000.0));
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accept_paused_ = true;  // and never resumed
      for (auto& [id, conn] : conns_) {
        // Drain contract: the dispatched request finishes and its response
        // flushes; framed-but-undispatched pipelined lines are abandoned.
        conn.lines.clear();
        conn.eof = true;
        conn.reading_paused = true;
        UpdateInterest(conn);
        CloseIfDrained(conn);
      }
      CloseDead();
    }
    if (draining) {
      if (conns_.empty()) break;
      if (now >= drain_deadline) {
        for (auto& [id, conn] : conns_) conn.dead = true;
        CloseDead();
        break;
      }
    }

    int timeout_ms = 500;
    if (draining) {
      timeout_ms = 10;
    } else if (options_.idle_timeout_ms > 0.0 && !conns_.empty()) {
      timeout_ms = std::clamp(
          static_cast<int>(options_.idle_timeout_ms / 4.0), 5, 100);
    }

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      EASYTIME_LOG(Warning) << "epoll_wait: " << std::strerror(errno);
      break;
    }

    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (id == kListenId) {
        if (!draining) HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;  // the mailbox is drained below
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (conn.dead) continue;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        conn.dead = true;
        continue;
      }
      if (ev & EPOLLIN) HandleReadable(conn);
      if (conn.dead) continue;
      if (ev & EPOLLOUT) {
        FlushWrite(conn);
        if (!conn.dead) {
          UpdateInterest(conn);
          CloseIfDrained(conn);
        }
      }
    }

    DrainMailbox();
    CloseDead();
    if (!draining) SweepIdle(Clock::now());
    CloseDead();
  }
}

void EventLoopServer::HandleAccept() {
  for (;;) {
    if (conns_.size() >= options_.max_connections) {
      PauseAccept();
      return;
    }
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or a transient accept error
    }
    // Without TCP_NODELAY a pipelined client's responses are held hostage
    // by Nagle + delayed ACK (~40ms each): line-delimited request/response
    // traffic always wants small writes out immediately.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.id = id;
    conn.fd = fd;
    conn.last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    conn.armed_events = EPOLLIN;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
}

void EventLoopServer::PauseAccept() {
  if (accept_paused_) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_paused_ = true;
}

void EventLoopServer::ResumeAccept() {
  if (!accept_paused_ || stopping_.load()) return;
  if (conns_.size() >= options_.max_connections) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
    accept_paused_ = false;
  }
}

void EventLoopServer::HandleReadable(Conn& conn) {
  // Bounded per event so one firehose peer cannot starve the others; the
  // level-triggered epoll re-notifies for whatever is left.
  char chunk[16384];
  for (int rounds = 0; rounds < 4; ++rounds) {
    ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.inbuf.append(chunk, static_cast<size_t>(n));
      conn.last_activity = Clock::now();
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      conn.reading_paused = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;  // reset or unexpected socket error
    return;
  }
  FrameLines(conn);
  MaybeDispatch(conn);
  UpdateInterest(conn);
  CloseIfDrained(conn);
}

void EventLoopServer::FrameLines(Conn& conn) {
  size_t newline;
  while ((newline = conn.inbuf.find('\n')) != std::string::npos) {
    std::string line = conn.inbuf.substr(0, newline);
    conn.inbuf.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    conn.lines.push_back(std::move(line));
  }
  if (conn.inbuf.size() > LineByteCap() && !conn.close_after_flush) {
    // Unterminated oversized line: a protocol violation. Undispatched
    // pipelined lines are abandoned — the peer is misbehaving — and the
    // connection gets one error response before closing.
    conn.inbuf.clear();
    conn.inbuf.shrink_to_fit();
    conn.lines.clear();
    if (!conn.inflight) {
      conn.outbuf += MakeErrorResponse(
                         -1, Status::InvalidArgument(
                                 "request line exceeds size limit"))
                         .Dump();
      conn.outbuf += '\n';
    }
    conn.close_after_flush = true;
    conn.reading_paused = true;
    FlushWrite(conn);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    return;
  }
  // Pipelining backpressure: stop reading while the peer has a deep
  // backlog of unexecuted requests or unflushed responses.
  if (conn.lines.size() >= options_.max_pipeline_depth ||
      conn.outbuf.size() - conn.out_off > options_.max_write_buffer_bytes) {
    conn.reading_paused = true;
  }
}

bool EventLoopServer::CheckAuth(Conn& conn) {
  if (auth_token_.empty() || conn.authed) return true;
  if (conn.lines.empty()) return false;  // handshake frame not here yet
  std::string line = std::move(conn.lines.front());
  conn.lines.pop_front();
  int64_t error_id = -1;
  auto parsed = ParseRequest(line, max_request_bytes_, &error_id);
  // Length-insensitive comparison isn't attempted here: the listener is
  // loopback-only, so the token guards against accidental cross-process
  // traffic, not a timing adversary.
  const bool ok = parsed.ok() && parsed->endpoint == "auth" &&
                  !auth_token_.empty() &&
                  parsed->params.GetString("token", "") == auth_token_;
  if (!ok) {
    // One Unauthenticated error, then the connection closes — the same
    // answer-and-hang-up shape as the oversized-line protocol violation.
    // Pipelined lines sent ahead of a valid handshake are abandoned.
    conn.lines.clear();
    conn.outbuf +=
        MakeErrorResponse(parsed.ok() ? parsed->id : error_id,
                          Status::Unauthenticated(
                              "this listener requires an \"auth\" first frame "
                              "with a valid token"))
            .Dump();
    conn.outbuf += '\n';
    conn.close_after_flush = true;
    conn.reading_paused = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.auth_failures;
    }
    FlushWrite(conn);
    return false;
  }
  conn.authed = true;
  easytime::Json result = easytime::Json::Object();
  result.Set("authenticated", true);
  conn.outbuf += MakeOkResponse(parsed->id, std::move(result)).Dump();
  conn.outbuf += '\n';
  FlushWrite(conn);
  return !conn.dead;  // pipelined requests behind the handshake may proceed
}

void EventLoopServer::MaybeDispatch(Conn& conn) {
  if (conn.inflight || conn.close_after_flush || conn.lines.empty()) return;
  if (stopping_.load()) return;
  if (!CheckAuth(conn)) return;
  if (conn.lines.empty()) return;  // the handshake was the only frame
  std::string line = std::move(conn.lines.front());
  conn.lines.pop_front();
  conn.inflight = true;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_dispatched;
  }
  const uint64_t id = conn.id;
  handlers_->Submit([this, id, line = std::move(line)]() {
    Completion done;
    done.id = id;
    // Chaos-level connection faults, same points as the old front-end: a
    // failed read/write drops the connection mid-stream the way a flaky
    // network would.
    if (FaultRegistry::AnyArmed() &&
        !FaultRegistry::Global().Check("serve.tcp.read").ok()) {
      done.drop = true;
    } else {
      done.response = handler_(line);
      done.response += '\n';
      if (FaultRegistry::AnyArmed() &&
          !FaultRegistry::Global().Check("serve.tcp.write").ok()) {
        done.drop = true;
        done.response.clear();
      }
    }
    PostCompletion(std::move(done));
  });
}

void EventLoopServer::DrainMailbox() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    batch.swap(mailbox_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.id);
    if (it == conns_.end()) continue;  // connection died while computing
    Conn& conn = it->second;
    conn.inflight = false;
    if (conn.dead) continue;
    if (done.drop) {
      conn.dead = true;
      continue;
    }
    conn.outbuf += done.response;
    conn.last_activity = Clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_written;
    }
    FlushWrite(conn);
    if (conn.dead) continue;
    MaybeDispatch(conn);
    UpdateInterest(conn);
    CloseIfDrained(conn);
  }
}

void EventLoopServer::FlushWrite(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                       conn.outbuf.size() - conn.out_off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn.want_write = true;
      break;
    }
    conn.dead = true;  // peer hung up mid-response
    return;
  }
  if (conn.out_off >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    conn.want_write = false;
  } else if (conn.out_off > (1u << 20)) {
    conn.outbuf.erase(0, conn.out_off);  // keep the backlog compact
    conn.out_off = 0;
  }
  // Backpressure release: resume reading once the backlog is halfway gone.
  if (conn.reading_paused && !conn.eof && !conn.close_after_flush &&
      !stopping_.load() &&
      conn.outbuf.size() - conn.out_off <= options_.max_write_buffer_bytes / 2 &&
      conn.lines.size() < std::max<size_t>(1, options_.max_pipeline_depth / 2)) {
    conn.reading_paused = false;
  }
}

void EventLoopServer::UpdateInterest(Conn& conn) {
  uint32_t want = 0;
  if (!conn.reading_paused) want |= EPOLLIN;
  if (conn.want_write) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.armed_events = want;
  }
}

void EventLoopServer::CloseIfDrained(Conn& conn) {
  if (conn.dead || conn.inflight) return;
  const bool flushed = conn.out_off >= conn.outbuf.size();
  if (conn.close_after_flush && flushed) {
    conn.dead = true;
    return;
  }
  if (conn.eof && conn.lines.empty() && flushed) conn.dead = true;
}

void EventLoopServer::CloseDead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (!it->second.dead) {
      ++it;
      continue;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    it = conns_.erase(it);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
  }
  ResumeAccept();
}

void EventLoopServer::SweepIdle(Clock::time_point now) {
  if (options_.idle_timeout_ms <= 0.0) return;
  for (auto& [id, conn] : conns_) {
    if (conn.dead || conn.inflight) continue;
    if (conn.out_off < conn.outbuf.size()) continue;  // still flushing
    double idle_ms =
        std::chrono::duration<double, std::milli>(now - conn.last_activity)
            .count();
    if (idle_ms >= options_.idle_timeout_ms) {
      conn.dead = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.idle_closed;
    }
  }
}

}  // namespace easytime::serve
