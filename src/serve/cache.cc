#include "serve/cache.h"

namespace easytime::serve {

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  for (const auto& tag : it->tags) {
    auto t = tag_index_.find(tag);
    if (t == tag_index_.end()) continue;
    t->second.erase(it->key);
    if (t->second.empty()) tag_index_.erase(t);
  }
  index_.erase(it->key);
  lru_.erase(it);
}

std::optional<std::string> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.expires && Clock::now() >= entry.expires_at) {
    EraseLocked(it->second);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return entry.payload;
}

void ResultCache::Insert(const std::string& key, std::string payload,
                         const std::vector<std::string>& tags) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  Entry entry;
  entry.key = key;
  entry.payload = std::move(payload);
  entry.tags = tags;
  if (options_.ttl_seconds > 0.0) {
    entry.expires = true;
    entry.expires_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options_.ttl_seconds));
  }
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  for (const auto& tag : tags) tag_index_[tag].insert(key);
  ++stats_.insertions;
  while (lru_.size() > options_.capacity) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

size_t ResultCache::InvalidateTag(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto t = tag_index_.find(tag);
  if (t == tag_index_.end()) return 0;
  // EraseLocked mutates the tag's key set; drain a copy.
  std::set<std::string> keys = std::move(t->second);
  tag_index_.erase(t);
  size_t dropped = 0;
  for (const auto& key : keys) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    EraseLocked(it->second);
    ++dropped;
  }
  stats_.tag_invalidations += dropped;
  stats_.invalidations += dropped;
  return dropped;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  tag_index_.clear();
  ++stats_.flushes;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace easytime::serve
