#include "serve/cache.h"

namespace easytime::serve {

std::optional<std::string> ResultCache::Lookup(const std::string& key,
                                               uint64_t current_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  const bool expired = entry.expires && Clock::now() >= entry.expires_at;
  if (expired || entry.version != current_version) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return entry.payload;
}

void ResultCache::Insert(const std::string& key, std::string payload,
                         uint64_t version) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.payload = std::move(payload);
  entry.version = version;
  if (options_.ttl_seconds > 0.0) {
    entry.expires = true;
    entry.expires_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options_.ttl_seconds));
  }
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace easytime::serve
