#include "serve/request.h"

#include <algorithm>
#include <vector>

namespace easytime::serve {

easytime::Result<Request> ParseRequest(const std::string& line,
                                       size_t max_bytes,
                                       int64_t* error_id) {
  if (error_id) *error_id = -1;
  if (max_bytes > 0 && line.size() > max_bytes) {
    return Status::InvalidArgument(
        "request exceeds the " + std::to_string(max_bytes) +
        "-byte limit (" + std::to_string(line.size()) + " bytes)");
  }
  EASYTIME_ASSIGN_OR_RETURN(easytime::Json doc, easytime::Json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  if (doc.Has("id")) {
    const easytime::Json& id = doc.Get("id");
    if (!id.is_number()) {
      return Status::InvalidArgument("request \"id\" must be a number");
    }
    req.id = id.AsInt();
    if (error_id) *error_id = req.id;
  }
  req.endpoint = doc.GetString("endpoint", "");
  if (req.endpoint.empty()) {
    return Status::InvalidArgument(
        "request is missing the \"endpoint\" field");
  }
  if (doc.Has("params")) {
    const easytime::Json& params = doc.Get("params");
    if (!params.is_object()) {
      return Status::InvalidArgument("request \"params\" must be an object");
    }
    req.params = params;
  } else {
    req.params = easytime::Json::Object();
  }
  return req;
}

namespace {

void CanonicalDump(const easytime::Json& node, std::string* out) {
  switch (node.type()) {
    case easytime::Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : node.items()) {
        if (!first) out->push_back(',');
        first = false;
        CanonicalDump(item, out);
      }
      out->push_back(']');
      return;
    }
    case easytime::Json::Type::kObject: {
      std::vector<std::string> keys = node.keys();
      std::sort(keys.begin(), keys.end());
      out->push_back('{');
      bool first = true;
      for (const auto& key : keys) {
        if (!first) out->push_back(',');
        first = false;
        *out += easytime::Json(key).Dump();
        out->push_back(':');
        CanonicalDump(node.Get(key), out);
      }
      out->push_back('}');
      return;
    }
    default:
      // Scalars already serialize deterministically.
      *out += node.Dump();
      return;
  }
}

}  // namespace

std::string CanonicalKey(const std::string& endpoint,
                         const easytime::Json& params) {
  std::string key = endpoint;
  key.push_back('\n');
  CanonicalDump(params, &key);
  return key;
}

const char* ErrorCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnauthenticated: return "Unauthenticated";
  }
  return "Unknown";
}

easytime::Json MakeOkResponse(int64_t id, easytime::Json result) {
  easytime::Json resp = easytime::Json::Object();
  if (id >= 0) resp.Set("id", id);
  resp.Set("ok", true);
  resp.Set("result", std::move(result));
  return resp;
}

easytime::Json MakeErrorResponse(int64_t id, const Status& status) {
  easytime::Json resp = easytime::Json::Object();
  if (id >= 0) resp.Set("id", id);
  resp.Set("ok", false);
  easytime::Json err = easytime::Json::Object();
  err.Set("code", ErrorCodeToken(status.code()));
  err.Set("message", status.message());
  resp.Set("error", std::move(err));
  return resp;
}

}  // namespace easytime::serve
