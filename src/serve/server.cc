#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "methods/registry.h"

namespace easytime::serve {

namespace {

bool IsFastEndpoint(const std::string& endpoint) {
  return endpoint == "forecast" || endpoint == "recommend" ||
         endpoint == "ask" || endpoint == "sql" || endpoint == "append";
}

}  // namespace

ForecastServer::ForecastServer(core::EasyTime* system, Options options)
    : system_(system),
      options_(options),
      cache_(ResultCache::Options{options.cache_capacity,
                                  options.cache_ttl_seconds}),
      jobs_(system, JobManager::Options{options.evaluate_queue_capacity,
                                        options.checkpoint_dir,
                                        /*checkpoint_every=*/1,
                                        options.evaluate_concurrency}),
      // The admission controller owns the logical capacity; reservations
      // can overshoot it by one class's share while borrowing, so the
      // physical queue gets 2x headroom and TryPush failure stays a
      // should-not-happen backstop rather than the admission path.
      fast_queue_(2 * std::max<size_t>(1, options.fast_queue_capacity)) {}

ForecastServer::ForecastServer(core::EasyTime* system)
    : ForecastServer(system, Options()) {}

ForecastServer::~ForecastServer() { Stop(); }

void ForecastServer::Start() {
  if (running_.exchange(true)) return;
  const size_t workers = std::max<size_t>(1, options_.num_worker_threads);
  pool_ = std::make_unique<ThreadPool>(workers);
  AdmissionController::Options admission_opts;
  admission_opts.queue_capacity = options_.fast_queue_capacity;
  admission_opts.workers = workers;
  admission_opts.weights = options_.endpoint_weights;
  admission_opts.brownout_enter_fraction = options_.brownout_enter_fraction;
  admission_opts.brownout_exit_fraction = options_.brownout_exit_fraction;
  admission_opts.overload = &easytime::GlobalOverload();
  admission_ = std::make_unique<AdmissionController>(
      admission_opts,
      [this](AdmissionController::Unit unit) {
        pool_->Submit(std::move(unit));
      });
  batcher_ = std::make_unique<MicroBatcher>(
      MicroBatcher::Options{
          options_.batch_max,
          std::chrono::microseconds(
              static_cast<int64_t>(options_.batch_wait_ms * 1000.0))},
      [this](std::vector<FastTask> batch) {
        // One micro-batch = one scheduling unit in the forecast class.
        admission_->Enqueue(
            "forecast", [this, batch = std::move(batch)]() mutable {
              ExecuteBatch(std::move(batch));
            });
      });
  jobs_.Start();
  if (options_.warm_cache && options_.cache_capacity > 0 &&
      system_->restored_from_store()) {
    WarmCache();
  }
  dispatcher_ = std::thread([this]() { DispatchLoop(); });
  accepting_.store(true);
}

void ForecastServer::WarmCache() {
  // Default-parameter recommend responses for every stored dataset; the
  // canonical key matches what a {"dataset": name} request computes, so the
  // first post-restart recommends are cache hits. Warmed entries carry the
  // dataset tag like organic ones — an append right after restart must drop
  // them too.
  size_t warmed = 0;
  for (const auto& meta : system_->knowledge().datasets()) {
    easytime::Json params = easytime::Json::Object();
    params.Set("dataset", meta.name);
    auto result = ExecuteRecommend(params);
    if (!result.ok()) continue;
    cache_.Insert(CanonicalKey("recommend", params), result->Dump(),
                  {meta.name});
    ++warmed;
  }
  EASYTIME_LOG(Info) << "serve: warmed recommend cache for " << warmed
                     << " stored datasets";
}

void ForecastServer::Stop() {
  if (!running_.load() || stopped_.exchange(true)) return;
  accepting_.store(false);
  // Drain order matters: close the fast queue so the dispatcher hands every
  // queued request (and every open batch bucket) to the admission run
  // queues and exits, spill those run queues into the pool (DrainAll), then
  // destroy the pool — its destructor runs all remaining tasks, fulfilling
  // every outstanding promise — and finally drain the async lane. The
  // global brownout flag is cleared so one server's overload never leaks
  // into the next server (or test) in this process.
  fast_queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (admission_) admission_->DrainAll();
  pool_.reset();
  jobs_.Shutdown();
  easytime::GlobalOverload().set_brownout(false);
  running_.store(false);
}

bool ForecastServer::IsCacheable(const std::string& endpoint) {
  // forecast/recommend are pure functions of (repository, request); ask is
  // not cached because follow-up questions depend on conversation history.
  return endpoint == "forecast" || endpoint == "recommend";
}

std::vector<std::string> ForecastServer::CacheTags(
    const easytime::Json& params) {
  // Tag cached entries with the stored dataset they were computed from so a
  // streaming append to that dataset can invalidate exactly them. Inline
  // "values" requests read no mutable state — untagged, TTL/LRU only.
  std::string dataset = params.GetString("dataset", "");
  if (dataset.empty()) return {};
  return {std::move(dataset)};
}

std::string ForecastServer::BatchKey(const Request& req) {
  // Same method + same hyperparameters batch together.
  easytime::Json key = easytime::Json::Object();
  key.Set("method", req.params.GetString("method", ""));
  if (req.params.Has("config")) key.Set("config", req.params.Get("config"));
  return CanonicalKey("batch", key);
}

void ForecastServer::RegisterControlEndpoint(const std::string& name,
                                             ControlFn fn) {
  control_endpoints_[name] = std::move(fn);
}

std::string ForecastServer::HandleLine(const std::string& line) {
  int64_t error_id = -1;
  auto parsed = ParseRequest(line, options_.max_request_bytes, &error_id);
  if (!parsed.ok()) {
    RecordStats("_protocol", false, false, false, 0.0);
    return MakeErrorResponse(error_id, parsed.status()).Dump();
  }
  return Dispatch(std::move(*parsed)).Dump();
}

easytime::Result<easytime::Json> ForecastServer::Call(
    const std::string& endpoint, const easytime::Json& params) {
  Request req;
  req.endpoint = endpoint;
  req.params = params;
  easytime::Json resp = Dispatch(std::move(req));
  if (resp.GetBool("ok", false)) return resp.Get("result");
  const easytime::Json& err = resp.Get("error");
  // Surface the original code where possible; Internal otherwise.
  std::string code = err.GetString("code", "Internal");
  std::string message = err.GetString("message", "unknown serving error");
  for (int c = 0; c < kNumStatusCodes; ++c) {
    if (code == ErrorCodeToken(static_cast<StatusCode>(c))) {
      return Status(static_cast<StatusCode>(c), std::move(message));
    }
  }
  return Status::Internal(std::move(message));
}

easytime::Result<easytime::Json> ForecastServer::CallWithRetry(
    const std::string& endpoint, const easytime::Json& params,
    const RetryPolicy& policy) {
  return RetryCall(policy,
                   [&]() { return Call(endpoint, params); });
}

easytime::Json ForecastServer::Dispatch(Request req) {
  Stopwatch watch;
  const std::string endpoint = req.endpoint;

  if (FaultRegistry::AnyArmed()) {
    Status fs = FaultRegistry::Global().Check("serve.dispatch");
    if (!fs.ok()) {
      RecordStats(endpoint, false, false, false, watch.ElapsedSeconds());
      return MakeErrorResponse(req.id, fs);
    }
  }

  // Optional per-request deadline ("deadline_ms" in params). Parsed up
  // front so an already-absurd value is rejected before any queueing.
  // Strings, booleans, NaN, and infinities are all malformed — NaN in
  // particular would slip through a plain `<= 0` check and silently run
  // with a nonsense deadline.
  easytime::Deadline deadline;
  if (req.params.Has("deadline_ms")) {
    const easytime::Json& dm = req.params.Get("deadline_ms");
    if (!dm.is_number()) {
      RecordStats(endpoint, false, false, false, watch.ElapsedSeconds());
      return MakeErrorResponse(
          req.id, Status::InvalidArgument("\"deadline_ms\" must be a number"));
    }
    double ms = dm.AsDouble();
    if (!std::isfinite(ms) || ms <= 0.0) {
      RecordStats(endpoint, false, false, false, watch.ElapsedSeconds());
      return MakeErrorResponse(
          req.id, Status::InvalidArgument(
                      "\"deadline_ms\" must be a positive finite number"));
    }
    deadline = easytime::Deadline::AfterMillis(ms);
  }

  // ----- control plane: always served inline, even under load -------------
  if (endpoint == "ping") {
    easytime::Json result = easytime::Json::Object();
    result.Set("pong", true);
    RecordStats(endpoint, true, false, false, watch.ElapsedSeconds());
    return MakeOkResponse(req.id, std::move(result));
  }
  if (endpoint == "stats") {
    easytime::Json result = StatsJson();
    RecordStats(endpoint, true, false, false, watch.ElapsedSeconds());
    return MakeOkResponse(req.id, std::move(result));
  }
  if (endpoint == "flush_cache") {
    // The drop-everything escape hatch (DESIGN.md §13): appends invalidate
    // per-dataset tags, but an operator who distrusts the cache wholesale
    // can still nuke it. Inline like the rest of the control plane.
    const size_t dropped = cache_.size();
    cache_.Clear();
    easytime::Json result = easytime::Json::Object();
    result.Set("flushed", static_cast<int64_t>(dropped));
    RecordStats(endpoint, true, false, false, watch.ElapsedSeconds());
    return MakeOkResponse(req.id, std::move(result));
  }
  if (endpoint == "job_status" || endpoint == "cancel") {
    if (!req.params.Has("job") || !req.params.Get("job").is_number()) {
      RecordStats(endpoint, false, false, false, watch.ElapsedSeconds());
      return MakeErrorResponse(
          req.id, Status::InvalidArgument("missing numeric \"job\" id"));
    }
    uint64_t job_id = static_cast<uint64_t>(req.params.Get("job").AsInt());
    auto result = endpoint == "cancel" ? jobs_.Cancel(job_id)
                                       : jobs_.StatusJson(job_id);
    RecordStats(endpoint, result.ok(), false, false, watch.ElapsedSeconds());
    if (!result.ok()) return MakeErrorResponse(req.id, result.status());
    return MakeOkResponse(req.id, std::move(*result));
  }
  if (auto it = control_endpoints_.find(endpoint);
      it != control_endpoints_.end()) {
    // Registered extensions (the shard worker's replication plane) ride the
    // inline control path: they must answer even when the fast lanes shed.
    auto result = it->second(req.params);
    RecordStats(endpoint, result.ok(), false, false, watch.ElapsedSeconds());
    if (!result.ok()) return MakeErrorResponse(req.id, result.status());
    return MakeOkResponse(req.id, std::move(*result));
  }

  // ----- async lane: evaluation + backtest jobs ----------------------------
  if (endpoint == "evaluate" || endpoint == "backtest") {
    if (!accepting_.load()) {
      RecordStats(endpoint, false, true, false, watch.ElapsedSeconds());
      return MakeErrorResponse(req.id,
                               Status::Unavailable("server is not accepting"));
    }
    easytime::Json job_config = req.params;
    // The endpoint picks the job type; an explicit "type" in the params
    // must agree (a backtest config submitted to "evaluate" is a client
    // bug, not something to silently reinterpret).
    if (job_config.Has("type") &&
        job_config.GetString("type", "") != endpoint) {
      RecordStats(endpoint, false, false, false, watch.ElapsedSeconds());
      return MakeErrorResponse(
          req.id, Status::InvalidArgument(
                      "job \"type\" conflicts with the \"" + endpoint +
                      "\" endpoint"));
    }
    job_config.Set("type", endpoint);
    auto job_id = jobs_.Submit(job_config);
    const bool rejected = !job_id.ok() && job_id.status().IsUnavailable();
    RecordStats(endpoint, job_id.ok(), rejected, false,
                watch.ElapsedSeconds());
    if (!job_id.ok()) return MakeErrorResponse(req.id, job_id.status());
    easytime::Json result = easytime::Json::Object();
    result.Set("job", static_cast<int64_t>(*job_id));
    result.Set("state", "queued");
    return MakeOkResponse(req.id, std::move(result));
  }

  // ----- fast lane ---------------------------------------------------------
  if (!IsFastEndpoint(endpoint)) {
    RecordStats("_protocol", false, false, false, watch.ElapsedSeconds());
    return MakeErrorResponse(
        req.id, Status::NotFound("unknown endpoint: " + endpoint));
  }
  if (!accepting_.load() || !running_.load()) {
    RecordStats(endpoint, false, true, false, watch.ElapsedSeconds());
    return MakeErrorResponse(
        req.id, Status::Unavailable("server is not accepting requests"));
  }

  FastTask task;
  task.request = std::move(req);
  task.deadline = deadline;
  if (IsCacheable(endpoint)) {
    task.cache_key = CanonicalKey(endpoint, task.request.params);
    auto hit = cache_.Lookup(task.cache_key);
    if (hit) {
      auto payload = easytime::Json::Parse(*hit);
      if (payload.ok()) {
        const double secs = watch.ElapsedSeconds();
        RecordStats(endpoint, true, false, true, secs);
        easytime::Json resp =
            MakeOkResponse(task.request.id, std::move(*payload));
        resp.Set("cached", true);
        resp.Set("seconds", secs);
        return resp;
      }
    }
  }

  // Per-endpoint admission: claim a weighted queue slot (released in
  // Fulfill). A class over its reservation with no shared headroom left is
  // shed here, so a burst on one endpoint cannot starve the others.
  if (!admission_->TryAdmit(endpoint)) {
    RecordStats(endpoint, false, true, false, watch.ElapsedSeconds());
    return MakeErrorResponse(
        req.id,
        Status::Unavailable("endpoint \"" + endpoint +
                            "\" is over its admission quota; retry later"));
  }

  task.promise = std::make_shared<std::promise<easytime::Json>>();
  std::future<easytime::Json> future = task.promise->get_future();
  if (!fast_queue_.TryPush(std::move(task))) {
    admission_->Finish(endpoint);
    RecordStats(endpoint, false, true, false, watch.ElapsedSeconds());
    return MakeErrorResponse(
        req.id, Status::Unavailable(
                    "fast lane at capacity (" +
                    std::to_string(fast_queue_.capacity()) +
                    " queued requests); retry later"));
  }
  return future.get();
}

void ForecastServer::DispatchLoop() {
  for (;;) {
    std::optional<FastTask> task;
    auto deadline = batcher_->NextDeadline();
    if (deadline) {
      auto now = MicroBatcher::Clock::now();
      auto wait = *deadline > now
                      ? std::chrono::duration_cast<std::chrono::microseconds>(
                            *deadline - now)
                      : std::chrono::microseconds(0);
      task = fast_queue_.PopFor(wait);
    } else {
      task = fast_queue_.Pop();
    }

    if (task) {
      if (options_.enable_batching && task->request.endpoint == "forecast") {
        batcher_->Add(BatchKey(task->request), std::move(*task));
      } else {
        // Hand the unit to the per-class run queues; Enqueue never blocks,
        // so a saturated class cannot head-of-line-block this loop.
        const std::string cls = task->request.endpoint;
        admission_->Enqueue(cls, [this, t = std::move(*task)]() mutable {
          ExecuteSingle(std::move(t));
        });
      }
    }
    batcher_->FlushExpired(MicroBatcher::Clock::now());

    if (!task && fast_queue_.closed() && fast_queue_.size() == 0) {
      batcher_->FlushAll();  // drain open buckets into the pool
      return;
    }
  }
}

void ForecastServer::Fulfill(FastTask& task,
                             const easytime::Result<easytime::Json>& result,
                             bool from_batch, size_t batch_size,
                             double seconds) {
  // Release the admission slot claimed in Dispatch — every admitted task
  // reaches Fulfill exactly once (shed and full-queue paths never get here).
  admission_->Finish(task.request.endpoint);
  RecordStats(task.request.endpoint, result.ok(), false, false, seconds);
  if (!result.ok()) {
    if (result.status().IsDeadlineExceeded()) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    }
    task.promise->set_value(
        MakeErrorResponse(task.request.id, result.status()));
    return;
  }
  const bool degraded = result.ValueOrDie().GetBool("degraded", false);
  if (degraded) degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  // Degraded answers must not outlive the overload that produced them: a
  // cached brownout response would keep serving the cheap fallback long
  // after the system recovered.
  if (!task.cache_key.empty() && !degraded) {
    cache_.Insert(task.cache_key, result.ValueOrDie().Dump(),
                  CacheTags(task.request.params));
  }
  easytime::Json resp = MakeOkResponse(task.request.id, result.ValueOrDie());
  resp.Set("cached", false);
  resp.Set("seconds", seconds);
  if (from_batch) {
    resp.Set("batched", true);
    resp.Set("batch_size", static_cast<int64_t>(batch_size));
  }
  task.promise->set_value(std::move(resp));
}

void ForecastServer::ExecuteSingle(FastTask task) {
  Stopwatch watch;
  if (task.deadline.expired()) {
    // The request waited out its budget in the queue; don't burn a worker on
    // an answer nobody is waiting for.
    Fulfill(task,
            Status::DeadlineExceeded("request deadline expired while queued"),
            /*from_batch=*/false, 1, watch.ElapsedSeconds());
    return;
  }
  auto result = ExecuteFast(task.request, task.deadline);
  Fulfill(task, result, /*from_batch=*/false, 1, watch.ElapsedSeconds());
}

void ForecastServer::ExecuteBatch(std::vector<FastTask> batch) {
  Stopwatch watch;
  if (FaultRegistry::AnyArmed()) {
    Status fs = FaultRegistry::Global().Check("serve.batch");
    if (!fs.ok()) {
      // An injected batch failure fails every member — clients still get a
      // terminal response.
      for (auto& t : batch) {
        Fulfill(t, fs, /*from_batch=*/true, batch.size(),
                watch.ElapsedSeconds());
      }
      return;
    }
  }
  // Answer expired members up front; only live requests reach the executor.
  std::vector<FastTask> live;
  live.reserve(batch.size());
  for (auto& t : batch) {
    if (t.deadline.expired()) {
      Fulfill(t,
              Status::DeadlineExceeded(
                  "request deadline expired while queued"),
              /*from_batch=*/true, batch.size(), watch.ElapsedSeconds());
    } else {
      live.push_back(std::move(t));
    }
  }
  batch = std::move(live);
  if (batch.empty()) return;
  // Deduplicate identical requests: one computation fans out to all the
  // clients that asked for it.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    groups[CanonicalKey(batch[i].request.endpoint, batch[i].request.params)]
        .push_back(i);
  }
  std::vector<const std::vector<size_t>*> unique;
  unique.reserve(groups.size());
  for (const auto& [key, indices] : groups) unique.push_back(&indices);

  std::vector<easytime::Result<easytime::Json>> results(
      unique.size(), easytime::Result<easytime::Json>(
                         Status::Internal("batch slot not executed")));
  // One data-parallel dispatch for the whole batch: the global pool's
  // chunked ParallelFor spreads distinct requests across workers.
  GlobalThreadPool().ParallelFor(unique.size(), [&](size_t g) {
    const FastTask& rep = batch[(*unique[g])[0]];
    results[g] = ExecuteFast(rep.request, rep.deadline);
  });

  const double seconds = watch.ElapsedSeconds();
  for (size_t g = 0; g < unique.size(); ++g) {
    for (size_t idx : *unique[g]) {
      Fulfill(batch[idx], results[g], /*from_batch=*/true, batch.size(),
              seconds);
    }
  }
}

easytime::Result<easytime::Json> ForecastServer::ExecuteFast(
    const Request& req, const easytime::Deadline& deadline) {
  EASYTIME_FAULT_POINT("serve.execute");
  // Sampled once per request so the response tagging and the downgrade
  // decisions agree even if the flag flips mid-execution.
  const bool brownout = easytime::GlobalOverload().brownout();
  if (req.endpoint == "forecast") {
    return ExecuteForecast(req.params, deadline);
  }
  if (req.endpoint == "recommend") return ExecuteRecommend(req.params);
  if (req.endpoint == "append") return ExecuteAppend(req.params);
  if (req.endpoint == "ask") {
    EASYTIME_FAULT_POINT("serve.ask");
    std::string question = req.params.GetString("question", "");
    if (question.empty()) {
      return Status::InvalidArgument("ask requires a \"question\" string");
    }
    // Test/bench aid (matches forecast's): simulate a slow QA backend to
    // exercise overload without burning CPU. Capped per request.
    double sleep_ms = req.params.GetDouble("sleep_ms", 0.0);
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::min(sleep_ms, 1000.0)));
    }
    EASYTIME_ASSIGN_OR_RETURN(qa::QaResponse resp, system_->Ask(question));
    easytime::Json out = resp.ToJson();
    if (brownout) {
      out.Set("degraded", true);
      out.Set("degraded_reason", "brownout");
    }
    return out;
  }
  if (req.endpoint == "sql") {
    EASYTIME_FAULT_POINT("serve.sql");
    std::string query = req.params.GetString("query", "");
    if (query.empty()) {
      return Status::InvalidArgument("sql requires a \"query\" string");
    }
    // Under brownout the TS_FORECAST table functions downgrade expensive
    // models themselves (they read the same global flag); the envelope is
    // tagged here so clients see the degradation either way.
    EASYTIME_ASSIGN_OR_RETURN(qa::QaResponse resp,
                              system_->AskSql(query, deadline));
    easytime::Json out = resp.ToJson();
    if (brownout) {
      out.Set("degraded", true);
      out.Set("degraded_reason", "brownout");
    }
    return out;
  }
  return Status::NotFound("unknown fast endpoint: " + req.endpoint);
}

easytime::Result<easytime::Json> ForecastServer::ExecuteAppend(
    const easytime::Json& params) {
  EASYTIME_FAULT_POINT("serve.append");
  std::string dataset = params.GetString("dataset", "");
  if (dataset.empty()) {
    return Status::InvalidArgument("append requires a \"dataset\" name");
  }
  if (!params.Has("values") || !params.Get("values").is_array() ||
      params.Get("values").size() == 0) {
    return Status::InvalidArgument(
        "append requires a non-empty \"values\" array");
  }
  const easytime::Json& arr = params.Get("values");
  // Either one array of numbers (univariate shorthand) or an array of
  // per-channel arrays; mixing the two shapes is malformed.
  std::vector<std::vector<double>> channels;
  const bool nested = arr.items().front().is_array();
  if (nested) {
    for (const auto& ch : arr.items()) {
      if (!ch.is_array() || ch.size() == 0) {
        return Status::InvalidArgument(
            "append channels must be non-empty arrays of numbers");
      }
      std::vector<double> values;
      values.reserve(ch.size());
      for (const auto& v : ch.items()) {
        if (!v.is_number()) {
          return Status::TypeError("append values must be numbers");
        }
        values.push_back(v.AsDouble());
      }
      if (values.size() > options_.max_inline_values) {
        return Status::InvalidArgument(
            "append batch exceeds the " +
            std::to_string(options_.max_inline_values) + "-point limit");
      }
      channels.push_back(std::move(values));
    }
  } else {
    std::vector<double> values;
    values.reserve(arr.size());
    for (const auto& v : arr.items()) {
      if (!v.is_number()) {
        return Status::TypeError("append values must be numbers");
      }
      values.push_back(v.AsDouble());
    }
    if (values.size() > options_.max_inline_values) {
      return Status::InvalidArgument(
          "append batch exceeds the " +
          std::to_string(options_.max_inline_values) + "-point limit");
    }
    channels.push_back(std::move(values));
  }
  std::optional<size_t> expected_start;
  if (params.Has("start")) {
    const easytime::Json& s = params.Get("start");
    if (!s.is_number() || s.AsDouble() < 0.0 ||
        s.AsDouble() != std::floor(s.AsDouble())) {
      return Status::InvalidArgument(
          "\"start\" must be a non-negative integer");
    }
    expected_start = static_cast<size_t>(s.AsInt());
  }

  EASYTIME_ASSIGN_OR_RETURN(
      core::EasyTime::AppendOutcome outcome,
      system_->AppendObservations(dataset, channels, expected_start));
  // Only now — after the durable append succeeded — drop this dataset's
  // cached responses. Other datasets' entries are untouched.
  const size_t invalidated = cache_.InvalidateTag(dataset);

  easytime::Json result = easytime::Json::Object();
  result.Set("dataset", dataset);
  result.Set("appended", static_cast<int64_t>(outcome.appended));
  result.Set("length", static_cast<int64_t>(outcome.length));
  result.Set("characteristics_refreshed", outcome.characteristics_refreshed);
  result.Set("data_version", static_cast<int64_t>(outcome.data_version));
  result.Set("cache_invalidated", static_cast<int64_t>(invalidated));
  return result;
}

easytime::Result<std::vector<double>> ForecastServer::ResolveSeries(
    const easytime::Json& params, std::string* source_name) const {
  if (params.Has("values")) {
    const easytime::Json& arr = params.Get("values");
    if (!arr.is_array() || arr.size() == 0) {
      return Status::InvalidArgument("\"values\" must be a non-empty array");
    }
    if (arr.size() > options_.max_inline_values) {
      return Status::InvalidArgument(
          "\"values\" exceeds the " +
          std::to_string(options_.max_inline_values) + "-point limit");
    }
    std::vector<double> values;
    values.reserve(arr.size());
    for (const auto& v : arr.items()) {
      if (!v.is_number()) {
        return Status::TypeError("\"values\" must contain only numbers");
      }
      values.push_back(v.AsDouble());
    }
    if (source_name) *source_name = "inline";
    return values;
  }
  std::string dataset = params.GetString("dataset", "");
  if (dataset.empty()) {
    return Status::InvalidArgument(
        "request needs either \"dataset\" or \"values\"");
  }
  // Copy under the facade's shared lock: the series may be growing via
  // concurrent appends, and a raw repository pointer would race with them.
  EASYTIME_ASSIGN_OR_RETURN(tsdata::Series series,
                            system_->SeriesSnapshot(dataset));
  if (source_name) *source_name = dataset;
  return std::move(series.mutable_values());
}

easytime::Result<easytime::Json> ForecastServer::ExecuteForecast(
    const easytime::Json& params, const easytime::Deadline& deadline) const {
  std::string method = params.GetString("method", "");
  if (method.empty()) {
    return Status::InvalidArgument("forecast requires a \"method\" name");
  }
  int64_t horizon =
      params.GetInt("horizon", static_cast<int64_t>(options_.default_horizon));
  if (horizon < 1 || horizon > static_cast<int64_t>(options_.max_horizon)) {
    return Status::OutOfRange(
        "horizon must be in [1, " + std::to_string(options_.max_horizon) +
        "]");
  }
  std::string source;
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> values,
                            ResolveSeries(params, &source));
  if (values.size() < 8) {
    return Status::InvalidArgument("series too short to forecast (< 8)");
  }

  // Test/bench aid: simulate a slow model to exercise admission control and
  // queueing without burning CPU. Capped so a client cannot stall a worker.
  double sleep_ms = params.GetDouble("sleep_ms", 0.0);
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(sleep_ms, 1000.0)));
  }

  easytime::Json method_config = params.Has("config") &&
                                         params.Get("config").is_object()
                                     ? params.Get("config")
                                     : easytime::Json::Object();
  EASYTIME_ASSIGN_OR_RETURN(
      methods::ForecasterPtr forecaster,
      methods::MethodRegistry::Global().Create(method, method_config));

  methods::FitContext ctx;
  ctx.horizon = static_cast<size_t>(horizon);
  ctx.seed = static_cast<uint64_t>(params.GetInt("seed", 42));
  // Forward the remaining request deadline into the fit loop — expensive
  // methods (gbdt, deep nets, grid searches) poll it cooperatively and
  // return DeadlineExceeded mid-fit instead of running to completion.
  ctx.deadline = deadline;
  EASYTIME_RETURN_IF_ERROR(forecaster->Fit(values, ctx));
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> forecast,
                            forecaster->Forecast(static_cast<size_t>(horizon)));

  easytime::Json result = easytime::Json::Object();
  result.Set("method", method);
  result.Set("source", source);
  result.Set("horizon", horizon);
  easytime::Json out = easytime::Json::Array();
  for (double v : forecast) out.Append(v);
  result.Set("values", std::move(out));
  return result;
}

easytime::Result<easytime::Json> ForecastServer::ExecuteRecommend(
    const easytime::Json& params) const {
  size_t k = static_cast<size_t>(std::max<int64_t>(0, params.GetInt("k", 0)));
  // Brownout: skip feature extraction + classification entirely and answer
  // from the precomputed global ranking. Falls through to the full path when
  // the fallback has nothing to rank from (empty knowledge base).
  if (easytime::GlobalOverload().brownout()) {
    auto cheap = GlobalAverageRanking(k);
    if (cheap.ok()) {
      easytime::Json items = easytime::Json::Array();
      for (const auto& [name, score] : *cheap) {
        easytime::Json item = easytime::Json::Object();
        item.Set("method", name);
        item.Set("score", score);
        items.Append(std::move(item));
      }
      easytime::Json result = easytime::Json::Object();
      result.Set("recommendations", std::move(items));
      result.Set("degraded", true);
      result.Set("degraded_reason", "brownout");
      return result;
    }
  }
  ensemble::Recommendation rec;
  easytime::Status primary_error;
  if (params.Has("values")) {
    std::string source;
    EASYTIME_ASSIGN_OR_RETURN(std::vector<double> values,
                              ResolveSeries(params, &source));
    auto r = system_->RecommendForValues(values, k);
    if (r.ok()) rec = std::move(*r); else primary_error = r.status();
  } else {
    std::string dataset = params.GetString("dataset", "");
    if (dataset.empty()) {
      return Status::InvalidArgument(
          "recommend needs either \"dataset\" or \"values\"");
    }
    auto r = system_->Recommend(dataset, k);
    if (r.ok()) rec = std::move(*r); else primary_error = r.status();
  }
  bool degraded = false;
  if (!primary_error.ok()) {
    // Graceful degradation: when the classifier path fails transiently
    // (Internal/Unavailable), answer from the knowledge base's global
    // average ranking instead of failing the request. Bad-input errors
    // still surface.
    if (!primary_error.IsInternal() && !primary_error.IsUnavailable()) {
      return primary_error;
    }
    EASYTIME_ASSIGN_OR_RETURN(rec, GlobalAverageRanking(k));
    degraded = true;
  }
  easytime::Json items = easytime::Json::Array();
  for (const auto& [name, score] : rec) {
    easytime::Json item = easytime::Json::Object();
    item.Set("method", name);
    item.Set("score", score);
    items.Append(std::move(item));
  }
  easytime::Json result = easytime::Json::Object();
  result.Set("recommendations", std::move(items));
  if (degraded) {
    result.Set("degraded", true);
    result.Set("degraded_reason", primary_error.ToString());
  }
  return result;
}

easytime::Result<ensemble::Recommendation>
ForecastServer::GlobalAverageRanking(size_t k) const {
  // Mean MAE per method over every benchmark result — the dataset-agnostic
  // ranking. Scores are negated MAE so higher is better, matching the
  // classifier path's convention.
  std::vector<knowledge::ResultEntry> rows =
      system_->knowledge().ResultsSnapshot();
  std::map<std::string, std::pair<double, size_t>> sums;
  for (const auto& row : rows) {
    auto it = row.metrics.find("mae");
    if (it == row.metrics.end() || !std::isfinite(it->second)) continue;
    auto& [sum, n] = sums[row.method];
    sum += it->second;
    ++n;
  }
  if (sums.empty()) {
    return Status::Unavailable(
        "recommendation fallback has no benchmark results to rank from");
  }
  ensemble::Recommendation rec;
  rec.reserve(sums.size());
  for (const auto& [method, acc] : sums) {
    rec.emplace_back(method, -acc.first / static_cast<double>(acc.second));
  }
  std::sort(rec.begin(), rec.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (k > 0 && rec.size() > k) rec.resize(k);
  return rec;
}

void ForecastServer::RecordStats(const std::string& endpoint, bool ok,
                                 bool rejected, bool cache_hit,
                                 double seconds) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  EndpointStats& s = endpoint_stats_[endpoint];
  ++s.requests;
  if (ok) ++s.ok; else ++s.errors;
  if (rejected) ++s.rejected;
  if (cache_hit) ++s.cache_hits;
  s.total_seconds += seconds;
  s.max_seconds = std::max(s.max_seconds, seconds);
}

easytime::Json ForecastServer::StatsJson() const {
  easytime::Json endpoints = easytime::Json::Object();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const auto& [name, s] : endpoint_stats_) {
      easytime::Json e = easytime::Json::Object();
      e.Set("requests", static_cast<int64_t>(s.requests));
      e.Set("ok", static_cast<int64_t>(s.ok));
      e.Set("errors", static_cast<int64_t>(s.errors));
      e.Set("rejected", static_cast<int64_t>(s.rejected));
      e.Set("cache_hits", static_cast<int64_t>(s.cache_hits));
      e.Set("mean_seconds",
            s.requests ? s.total_seconds / static_cast<double>(s.requests)
                       : 0.0);
      e.Set("max_seconds", s.max_seconds);
      endpoints.Set(name, std::move(e));
    }
  }

  ResultCache::Stats cs = cache_.stats();
  easytime::Json cache = easytime::Json::Object();
  cache.Set("entries", static_cast<int64_t>(cs.entries));
  cache.Set("hits", static_cast<int64_t>(cs.hits));
  cache.Set("misses", static_cast<int64_t>(cs.misses));
  cache.Set("insertions", static_cast<int64_t>(cs.insertions));
  cache.Set("evictions", static_cast<int64_t>(cs.evictions));
  cache.Set("invalidations", static_cast<int64_t>(cs.invalidations));
  cache.Set("tag_invalidations", static_cast<int64_t>(cs.tag_invalidations));
  cache.Set("flushes", static_cast<int64_t>(cs.flushes));

  JobManager::Stats js = jobs_.stats();
  easytime::Json jobs = easytime::Json::Object();
  jobs.Set("submitted", static_cast<int64_t>(js.submitted));
  jobs.Set("rejected", static_cast<int64_t>(js.rejected));
  jobs.Set("completed", static_cast<int64_t>(js.completed));
  jobs.Set("failed", static_cast<int64_t>(js.failed));
  jobs.Set("cancelled", static_cast<int64_t>(js.cancelled));
  jobs.Set("resumed_records", static_cast<int64_t>(js.resumed_records));
  jobs.Set("peak_running", static_cast<int64_t>(js.peak_running));
  jobs.Set("running", static_cast<int64_t>(jobs_.running_jobs()));
  jobs.Set("queue_depth", static_cast<int64_t>(jobs_.queue_depth()));

  MicroBatcher::Stats bs =
      batcher_ ? batcher_->stats() : MicroBatcher::Stats{};
  easytime::Json batching = easytime::Json::Object();
  batching.Set("items", static_cast<int64_t>(bs.items));
  batching.Set("batches", static_cast<int64_t>(bs.batches));
  batching.Set("max_batch_size", static_cast<int64_t>(bs.max_batch_size));

  easytime::Json out = easytime::Json::Object();
  // Where these counters were measured: "process" = one server; the cluster
  // router re-tags its merged view as "cluster" (DESIGN.md §14).
  out.Set("scope", "process");
  out.Set("endpoints", std::move(endpoints));
  out.Set("cache", std::move(cache));
  out.Set("jobs", std::move(jobs));
  out.Set("batching", std::move(batching));
  out.Set("admission",
          admission_ ? admission_->StatsJson() : easytime::Json::Object());
  out.Set("brownout", easytime::GlobalOverload().brownout());
  out.Set("brownout_enters",
          static_cast<int64_t>(easytime::GlobalOverload().brownout_enters()));
  out.Set("deadline_exceeded",
          static_cast<int64_t>(
              deadline_exceeded_.load(std::memory_order_relaxed)));
  out.Set("degraded_responses",
          static_cast<int64_t>(
              degraded_responses_.load(std::memory_order_relaxed)));
  out.Set("fast_queue_depth", static_cast<int64_t>(fast_queue_.size()));
  out.Set("kb_version",
          static_cast<int64_t>(system_->knowledge().version()));
  return out;
}

}  // namespace easytime::serve
