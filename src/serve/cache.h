#pragma once

/// \file cache.h
/// \brief LRU + TTL result cache for the serving layer, with tag-based
/// fine-grained invalidation. Entries are keyed on the canonical request key
/// (see request.h) and tagged with the datasets their payload depends on;
/// a streaming append to dataset A eagerly drops exactly A's entries
/// (InvalidateTag) while everything else keeps hitting. This replaces the
/// old KB-version-counter scheme, under which any knowledge-base mutation —
/// including an evaluation commit that changes no series — nuked the whole
/// cache. Clear() survives as the flush_all escape hatch.

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace easytime::serve {

/// \brief Thread-safe LRU cache with per-entry TTL and dataset tags.
/// Stores serialized result payloads (the "result" member of a response), so
/// hits cost one map lookup plus one JSON parse — no model work.
class ResultCache {
 public:
  struct Options {
    size_t capacity = 256;        ///< max entries; 0 disables the cache
    double ttl_seconds = 300.0;   ///< entry lifetime; <= 0 = never expires
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU capacity evictions
    uint64_t invalidations = 0;  ///< TTL expiries + tag invalidations
    uint64_t tag_invalidations = 0;  ///< entries dropped by InvalidateTag
    uint64_t flushes = 0;        ///< Clear() calls (flush_all)
    size_t entries = 0;          ///< current size
  };

  explicit ResultCache(Options options) : options_(options) {}

  /// \brief Returns the payload cached under \p key if it is present and
  /// within TTL; expired entries are erased on the way out. Counts a hit or
  /// miss either way.
  std::optional<std::string> Lookup(const std::string& key);

  /// \brief Inserts (or refreshes) \p key, evicting the LRU tail beyond
  /// capacity. \p tags names the datasets the payload was computed from;
  /// an untagged entry (inline values, dataset-free requests) is only ever
  /// dropped by TTL, LRU pressure, or Clear().
  void Insert(const std::string& key, std::string payload,
              const std::vector<std::string>& tags = {});

  /// \brief Eagerly drops every entry tagged with \p tag (the fine-grained
  /// path: one dataset's append leaves other datasets' entries hot).
  /// Returns the number of entries dropped.
  size_t InvalidateTag(const std::string& tag);

  /// Drops every entry — the flush_all escape hatch (stats are kept).
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::string key;
    std::string payload;
    std::vector<std::string> tags;
    Clock::time_point expires_at;
    bool expires = false;
  };

  /// Unlinks one entry from the LRU list, the key index, and the tag index.
  void EraseLocked(std::list<Entry>::iterator it);

  Options options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// tag -> keys carrying it (the reverse index InvalidateTag walks).
  std::unordered_map<std::string, std::set<std::string>> tag_index_;
  Stats stats_;
};

}  // namespace easytime::serve
