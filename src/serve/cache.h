#pragma once

/// \file cache.h
/// \brief LRU + TTL result cache for the serving layer. Entries are keyed on
/// the canonical request key (see request.h) and tagged with the knowledge
/// base version they were computed against — appending to the knowledge base
/// bumps the version, which lazily invalidates every older entry.

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace easytime::serve {

/// \brief Thread-safe LRU cache with per-entry TTL and version tagging.
/// Stores serialized result payloads (the "result" member of a response), so
/// hits cost one map lookup plus one JSON parse — no model work.
class ResultCache {
 public:
  struct Options {
    size_t capacity = 256;        ///< max entries; 0 disables the cache
    double ttl_seconds = 300.0;   ///< entry lifetime; <= 0 = never expires
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< LRU capacity evictions
    uint64_t invalidations = 0;  ///< TTL expiries + version mismatches
    size_t entries = 0;          ///< current size
  };

  explicit ResultCache(Options options) : options_(options) {}

  /// \brief Returns the payload cached under \p key if it is fresh: present,
  /// within TTL, and computed at \p current_version. Stale entries are
  /// erased on the way out. Counts a hit or miss either way.
  std::optional<std::string> Lookup(const std::string& key,
                                    uint64_t current_version);

  /// Inserts (or refreshes) \p key, evicting the LRU tail beyond capacity.
  void Insert(const std::string& key, std::string payload, uint64_t version);

  /// Drops every entry (stats are kept).
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::string key;
    std::string payload;
    uint64_t version = 0;
    Clock::time_point expires_at;
    bool expires = false;
  };

  Options options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace easytime::serve
