#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "serve/request.h"

namespace easytime::serve {

TcpClient::TcpClient(uint16_t port, RetryPolicy retry, std::string auth_token)
    : port_(port), retry_(retry), auth_token_(std::move(auth_token)) {
  if (auth_token_.empty()) {
    if (const char* env = std::getenv("EASYTIME_AUTH_TOKEN")) {
      auth_token_ = env;
    }
  }
}

TcpClient::~TcpClient() { Disconnect(); }

void TcpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

easytime::Status TcpClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect(127.0.0.1:" + std::to_string(port_) +
                               "): " + err);
  }
  fd_ = fd;
  read_buffer_.clear();

  if (!auth_token_.empty()) {
    // Authenticate before the caller's first request, and again after every
    // reconnect — the handshake is per-connection server-side. A dropped
    // socket mid-handshake is transient (Unavailable, retried by SendLine);
    // an explicit rejection is terminal (Unauthenticated, not retried).
    easytime::Json req = easytime::Json::Object();
    req.Set("endpoint", "auth");
    easytime::Json params = easytime::Json::Object();
    params.Set("token", auth_token_);
    req.Set("params", std::move(params));
    auto line = WriteAndReadLine(req.Dump());
    if (!line.ok()) {
      Disconnect();
      return line.status();
    }
    auto resp = easytime::Json::Parse(*line);
    if (!resp.ok() || !resp->GetBool("ok", false)) {
      Disconnect();
      return Status::Unauthenticated(
          "server rejected the auth token for 127.0.0.1:" +
          std::to_string(port_));
    }
  }
  return Status::OK();
}

easytime::Result<std::string> TcpClient::SendOnce(const std::string& line) {
  EASYTIME_RETURN_IF_ERROR(Connect());
  return WriteAndReadLine(line);
}

easytime::Result<std::string> TcpClient::WriteAndReadLine(
    const std::string& line) {
  std::string payload = line + "\n";
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t n = ::send(fd_, payload.data() + sent, payload.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("connection lost while sending request");
    }
    sent += static_cast<size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = read_buffer_.substr(0, newline);
      read_buffer_.erase(0, newline + 1);
      return response;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("connection lost while awaiting response");
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

easytime::Result<std::string> TcpClient::SendLine(const std::string& line) {
  return RetryCall(retry_, [&]() { return SendOnce(line); });
}

easytime::Result<std::string> TcpClient::SendLineOnce(const std::string& line,
                                                      bool* request_sent) {
  *request_sent = false;
  EASYTIME_RETURN_IF_ERROR(Connect());
  // From the first payload byte on, a failure no longer proves the server
  // did not execute the request.
  *request_sent = true;
  return WriteAndReadLine(line);
}

easytime::Result<easytime::Json> TcpClient::Call(const std::string& endpoint,
                                                 const easytime::Json& params) {
  easytime::Json req = easytime::Json::Object();
  req.Set("endpoint", endpoint);
  req.Set("params", params);
  EASYTIME_ASSIGN_OR_RETURN(std::string line, SendLine(req.Dump()));
  EASYTIME_ASSIGN_OR_RETURN(easytime::Json resp, easytime::Json::Parse(line));
  if (resp.GetBool("ok", false)) return resp.Get("result");
  const easytime::Json& err = resp.Get("error");
  std::string code = err.GetString("code", "Internal");
  std::string message = err.GetString("message", "unknown serving error");
  for (int c = 0; c < kNumStatusCodes; ++c) {
    if (code == ErrorCodeToken(static_cast<StatusCode>(c))) {
      return Status(static_cast<StatusCode>(c), std::move(message));
    }
  }
  return Status::Internal(std::move(message));
}

}  // namespace easytime::serve
