#pragma once

/// \file admission.h
/// \brief Per-endpoint weighted admission quotas and worker scheduling for
/// the fast lane (DESIGN.md §12). Two budgets, both split by endpoint class:
///
///  - **Queue slots.** Each class reserves `max(1, floor(capacity * w_i /
///    sum(w)))` of the fast-lane queue. TryAdmit admits a request while its
///    class is under its reservation, or — borrowing — while total pending
///    is under the shared capacity. A burst on one endpoint therefore sheds
///    (`Unavailable`) once it exhausts its own reservation plus the shared
///    headroom, while other classes keep their reserved slots.
///  - **Worker slots.** Admitted work arrives as units (one request, or one
///    micro-batch) in per-class run queues. The controller launches units
///    onto the executor pool while any worker is free, preferring classes
///    below their guaranteed share `max(1, floor(workers * w_i / sum(w)))`
///    and otherwise the class with the lowest running/weight ratio. Nothing
///    here ever blocks the dispatcher, so a saturated class cannot
///    head-of-line-block the others.
///
/// The controller also owns the brownout hysteresis: when total pending
/// crosses `enter_fraction * capacity` the process-global OverloadState flips
/// on (degraded answers, see common/overload.h), and off again once pending
/// drains below `exit_fraction * capacity`.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <mutex>

#include "common/json.h"
#include "common/overload.h"

namespace easytime::serve {

class AdmissionController {
 public:
  /// A unit of admitted work (one request or one micro-batch).
  using Unit = std::function<void()>;
  /// Hands a ready unit to the executor pool (must not block).
  using Launcher = std::function<void(Unit)>;

  struct Options {
    size_t queue_capacity = 128;  ///< shared queue-slot budget
    size_t workers = 2;           ///< executor pool size
    /// Class weights; classes seen at runtime but missing here get weight 1.
    std::map<std::string, double> weights;
    double brownout_enter_fraction = 0.75;
    double brownout_exit_fraction = 0.25;
    /// Brownout sink; nullptr disables brownout signalling.
    OverloadState* overload = nullptr;
  };

  AdmissionController(Options options, Launcher launch);

  /// \brief Claims a queue slot for \p cls. False = shed the request.
  bool TryAdmit(const std::string& cls);

  /// Releases the queue slot claimed by TryAdmit (response fulfilled).
  void Finish(const std::string& cls);

  /// \brief Queues an admitted unit for a worker slot and launches as many
  /// units as free workers allow. Never blocks.
  void Enqueue(const std::string& cls, Unit unit);

  /// Stop-time drain: hands every queued unit to the launcher regardless of
  /// worker caps, so a destructing pool can run them all.
  void DrainAll();

  /// Total requests shed across all classes.
  uint64_t shed_total() const;

  /// Whether the controller currently signals brownout.
  bool brownout() const;

  /// Per-class and aggregate counters for the stats endpoint.
  easytime::Json StatsJson() const;

 private:
  struct ClassState {
    double weight = 1.0;
    size_t reserved = 1;     ///< queue slots
    size_t guaranteed = 1;   ///< worker slots
    size_t pending = 0;      ///< admitted, not yet finished
    size_t running = 0;      ///< units on workers
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t last_launch = 0;  ///< scheduler sequence of the newest launch
    std::deque<Unit> queue;    ///< units waiting for a worker slot
  };

  /// Returns (creating if needed) the class record; recomputes shares on
  /// first sight of a new class.
  ClassState& Cls(const std::string& name);
  void RecomputeSharesLocked();
  /// Moves launchable units into \p out while worker slots remain.
  void CollectLaunchesLocked(
      std::vector<std::pair<std::string, Unit>>* out);
  void LaunchUnit(const std::string& cls, Unit unit);
  void OnUnitDone(const std::string& cls);
  void UpdateBrownoutLocked();

  Options options_;
  Launcher launch_;
  mutable std::mutex mu_;
  std::map<std::string, ClassState> classes_;
  size_t total_pending_ = 0;
  size_t total_running_ = 0;
  uint64_t shed_total_ = 0;
  uint64_t launch_seq_ = 0;  ///< feeds ClassState::last_launch
  bool brownout_ = false;
};

}  // namespace easytime::serve
