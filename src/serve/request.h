#pragma once

/// \file request.h
/// \brief The serve wire protocol: line-delimited JSON requests and
/// responses, plus the canonical request key the result cache is keyed on.
///
/// Request line:  {"id": 7, "endpoint": "forecast", "params": {...}}
/// Response line: {"id": 7, "ok": true, "result": {...}}
///             or {"id": 7, "ok": false,
///                 "error": {"code": "InvalidArgument", "message": "..."}}
///
/// "id" is an optional client-chosen correlation token echoed back verbatim
/// (clients pipelining several requests over one TCP connection use it to
/// match responses). "params" defaults to an empty object.

#include <string>

#include "common/json.h"
#include "common/result.h"

namespace easytime::serve {

/// One parsed request.
struct Request {
  int64_t id = -1;       ///< client correlation id; -1 = absent
  std::string endpoint;  ///< "forecast", "ask", "evaluate", ...
  easytime::Json params; ///< endpoint arguments (object)
};

/// \brief Parses one request line. Enforces \p max_bytes (0 = unlimited)
/// before parsing so oversized payloads are rejected cheaply.
/// \param error_id if non-null, receives the request's numeric "id" when one
/// could be parsed even though the request as a whole was rejected — the
/// error response can then still be correlated by the client.
easytime::Result<Request> ParseRequest(const std::string& line,
                                       size_t max_bytes,
                                       int64_t* error_id = nullptr);

/// \brief Deterministic cache key: endpoint plus a canonicalized dump of the
/// params (object keys sorted recursively), so key order and whitespace in
/// the client's JSON don't fragment the cache.
std::string CanonicalKey(const std::string& endpoint,
                         const easytime::Json& params);

/// CamelCase wire token for a status code ("InvalidArgument", "Unavailable").
const char* ErrorCodeToken(StatusCode code);

/// Builds the success envelope around an endpoint result.
easytime::Json MakeOkResponse(int64_t id, easytime::Json result);

/// Builds the error envelope from a failure status.
easytime::Json MakeErrorResponse(int64_t id, const Status& status);

}  // namespace easytime::serve
