#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "serve/request.h"

namespace easytime::serve {

namespace {

/// Writes all of \p data, retrying on short writes. Returns false on error
/// (peer hung up) — the caller just drops the connection.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(ForecastServer* server, Options options)
    : server_(server),
      options_(options),
      connection_slots_(options.max_connections) {}

TcpServer::TcpServer(ForecastServer* server) : TcpServer(server, Options()) {}

TcpServer::~TcpServer() { Stop(); }

easytime::Status TcpServer::Start() {
  if (running_.load()) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(127.0.0.1:" +
                            std::to_string(options_.port) + "): " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("getsockname(): ") + err);
  }
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, options_.backlog) < 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen(): ") + err);
  }

  running_.store(true);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;

  // Unblock accept() and any blocking reads. Closing the semaphore first
  // releases an accept thread parked in Acquire() while every slot is held —
  // without it, that thread's fd is not yet in open_fds_ and the join below
  // would hang.
  connection_slots_.Close();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    if (!connection_slots_.Acquire()) {  // cap concurrent handlers
      ::close(fd);  // semaphore closed: the server is stopping
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd]() { HandleConnection(fd); });
  }
}

void TcpServer::HandleConnection(int fd) {
  // Buffered line reader. A line that grows past twice the request size
  // limit without a newline is a protocol violation: answer once and close.
  const size_t hard_cap = server_->options().max_request_bytes * 2 + 1024;
  std::string buffer;
  char chunk[4096];

  for (;;) {
    size_t newline = buffer.find('\n');
    while (newline == std::string::npos) {
      if (buffer.size() > hard_cap) {
        WriteAll(fd, MakeErrorResponse(
                         -1, Status::InvalidArgument(
                                 "request line exceeds size limit"))
                             .Dump() +
                         "\n");
        goto done;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        goto done;  // peer closed or shutdown
      }
      buffer.append(chunk, static_cast<size_t>(n));
      newline = buffer.find('\n');
    }

    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (FaultRegistry::AnyArmed()) {
      // Chaos-level connection faults: a failed read/write drops the
      // connection mid-stream, the way a flaky network would.
      if (!FaultRegistry::Global().Check("serve.tcp.read").ok()) goto done;
    }
    std::string response = server_->HandleLine(line) + "\n";
    if (FaultRegistry::AnyArmed()) {
      if (!FaultRegistry::Global().Check("serve.tcp.write").ok()) goto done;
    }
    if (!WriteAll(fd, response)) goto done;
  }

done:
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
      if (*it == fd) {
        open_fds_.erase(it);
        break;
      }
    }
  }
  connection_slots_.Release();
}

}  // namespace easytime::serve
