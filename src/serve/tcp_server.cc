#include "serve/tcp_server.h"

#include <utility>

namespace easytime::serve {

TcpServer::TcpServer(ForecastServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::TcpServer(ForecastServer* server) : TcpServer(server, Options()) {}

TcpServer::~TcpServer() { Stop(); }

easytime::Status TcpServer::Start() {
  if (running()) return Status::OK();
  EventLoopServer::Options opts;
  opts.port = options_.port;
  opts.backlog = options_.backlog;
  opts.max_connections = options_.max_connections;
  opts.auth_token = options_.auth_token;
  loop_ = std::make_unique<EventLoopServer>(server_, opts);
  Status st = loop_->Start();
  if (!st.ok()) loop_.reset();
  return st;
}

void TcpServer::Stop() {
  if (loop_) loop_->Stop();
}

}  // namespace easytime::serve
