#include "serve/batcher.h"

#include <algorithm>

namespace easytime::serve {

void MicroBatcher::Add(const std::string& batch_key, FastTask task) {
  std::vector<FastTask> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.items;
    Bucket& bucket = buckets_[batch_key];
    if (bucket.items.empty()) {
      bucket.deadline = Clock::now() + options_.max_wait;
    }
    bucket.items.push_back(std::move(task));
    if (bucket.items.size() >= options_.max_batch) {
      ready = std::move(bucket.items);
      buckets_.erase(batch_key);
      ++stats_.batches;
      stats_.max_batch_size = std::max(stats_.max_batch_size,
                                       static_cast<uint64_t>(ready.size()));
    }
  }
  if (!ready.empty()) flush_(std::move(ready));
}

std::optional<MicroBatcher::Clock::time_point> MicroBatcher::NextDeadline()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<Clock::time_point> next;
  for (const auto& [key, bucket] : buckets_) {
    if (!next || bucket.deadline < *next) next = bucket.deadline;
  }
  return next;
}

void MicroBatcher::FlushExpired(Clock::time_point now) {
  std::vector<std::vector<FastTask>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->second.deadline <= now) {
        ++stats_.batches;
        stats_.max_batch_size =
            std::max(stats_.max_batch_size,
                     static_cast<uint64_t>(it->second.items.size()));
        ready.push_back(std::move(it->second.items));
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& batch : ready) flush_(std::move(batch));
}

void MicroBatcher::FlushAll() {
  FlushExpired(Clock::time_point::max());
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace easytime::serve
