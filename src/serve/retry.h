#pragma once

/// \file retry.h
/// \brief Retry with exponential backoff and jitter for transient serving
/// failures. Only Status::Unavailable is considered transient — it is the
/// code the serving layer uses for admission-control rejections (full fast
/// queue, full job queue, server draining), which a short backoff genuinely
/// helps with. Everything else (bad requests, internal errors, expired
/// deadlines) is permanent and surfaces immediately.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>

#include "common/deadline.h"
#include "common/result.h"

namespace easytime::serve {

/// Backoff schedule: base * 2^attempt, capped, with uniform jitter in
/// [0.5, 1.0] of the computed delay so synchronized clients spread out.
struct RetryPolicy {
  int max_attempts = 3;        ///< total tries, including the first
  double base_delay_ms = 5.0;  ///< delay before the first retry
  double max_delay_ms = 200.0;
  uint64_t seed = 0;  ///< 0 = nondeterministic (random_device)

  /// Backoff before retry number \p retry (0-based), pre-jitter.
  double DelayMs(int retry) const {
    double d = base_delay_ms;
    for (int i = 0; i < retry; ++i) d *= 2.0;
    return std::min(d, max_delay_ms);
  }
};

/// True for statuses a retry can plausibly fix.
inline bool IsRetryableStatus(const Status& s) { return s.IsUnavailable(); }

/// Uniform status access for RetryCall over both Status and Result<T>.
inline const Status& GetStatus(const Status& s) { return s; }
template <typename T>
const Status& GetStatus(const easytime::Result<T>& r) {
  return r.status();
}

/// \brief Invokes \p call (returning Status or Result<T>) up to
/// policy.max_attempts times, sleeping the jittered backoff between
/// attempts. Stops early when the result is OK, the failure is permanent,
/// or the deadline would expire before the next attempt.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, Fn&& call,
               const easytime::Deadline& deadline = easytime::Deadline())
    -> decltype(call()) {
  std::mt19937_64 rng(policy.seed != 0 ? policy.seed
                                       : std::random_device{}());
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  auto result = call();
  for (int retry = 0; retry < policy.max_attempts - 1; ++retry) {
    if (result.ok() || !IsRetryableStatus(GetStatus(result))) return result;
    double delay_ms = policy.DelayMs(retry) * jitter(rng);
    if (deadline.expired() || delay_ms >= deadline.remaining_ms()) {
      return result;  // the backoff would outlive the budget
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    result = call();
  }
  return result;
}

}  // namespace easytime::serve
