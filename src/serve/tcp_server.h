#pragma once

/// \file tcp_server.h
/// \brief Loopback TCP front-end for ForecastServer. Speaks the same
/// line-delimited JSON protocol as ForecastServer::HandleLine: one request
/// per line in, one response per line out, connection stays open for
/// pipelining. Binds 127.0.0.1 only — this is a local serving endpoint,
/// not an internet-facing server.
///
/// Since PR 4 this is a thin facade over the epoll EventLoopServer
/// (event_loop.h): same wire protocol and the same Options, but connections
/// are multiplexed on one event thread instead of getting a thread each.
/// Existing callers (tests, bench, examples) compile and behave unchanged.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/event_loop.h"
#include "serve/server.h"

namespace easytime::serve {

/// \brief Epoll-backed serving endpoint with the pre-PR-4 thread-per-
/// connection API. Connection concurrency is still capped by
/// max_connections; excess connections wait in the listen backlog.
class TcpServer {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
    int backlog = 16;
    size_t max_connections = 32;  ///< concurrently served connections
    /// Bearer token for connection auth (forwarded to the event loop).
    /// Empty falls back to EASYTIME_AUTH_TOKEN; unset disables auth.
    std::string auth_token;
  };

  TcpServer(ForecastServer* server, Options options);
  explicit TcpServer(ForecastServer* server);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event loop.
  easytime::Status Start();

  /// Drains in-flight requests, closes live connections, joins the loop.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return loop_ ? loop_->port() : 0; }

  bool running() const { return loop_ && loop_->running(); }

 private:
  ForecastServer* server_;
  Options options_;
  /// Recreated on each Start(): EventLoopServer::Stop is terminal, while
  /// this class historically allowed Start → Stop → Start.
  std::unique_ptr<EventLoopServer> loop_;
};

}  // namespace easytime::serve
