#pragma once

/// \file tcp_server.h
/// \brief Loopback TCP front-end for ForecastServer. Speaks the same
/// line-delimited JSON protocol as ForecastServer::HandleLine: one request
/// per line in, one response per line out, connection stays open for
/// pipelining. Binds 127.0.0.1 only — this is a local serving endpoint,
/// not an internet-facing server.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/semaphore.h"
#include "common/status.h"
#include "serve/server.h"

namespace easytime::serve {

/// \brief Accept loop + per-connection handler threads over a ForecastServer.
/// Connection concurrency is capped by a semaphore; excess connections wait
/// in the listen backlog.
class TcpServer {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
    int backlog = 16;
    size_t max_connections = 32;  ///< concurrently served connections
  };

  TcpServer(ForecastServer* server, Options options);
  explicit TcpServer(ForecastServer* server);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  easytime::Status Start();

  /// Stops accepting, closes live connections, joins all threads.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ForecastServer* server_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  Semaphore connection_slots_;

  std::mutex mu_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> open_fds_;
};

}  // namespace easytime::serve
