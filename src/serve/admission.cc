#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace easytime::serve {

AdmissionController::AdmissionController(Options options, Launcher launch)
    : options_(std::move(options)), launch_(std::move(launch)) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, weight] : options_.weights) {
    ClassState& s = classes_[name];
    s.weight = weight > 0.0 ? weight : 1.0;
  }
  RecomputeSharesLocked();
}

AdmissionController::ClassState& AdmissionController::Cls(
    const std::string& name) {
  auto it = classes_.find(name);
  if (it != classes_.end()) return it->second;
  ClassState& s = classes_[name];  // unknown class: weight 1
  RecomputeSharesLocked();
  return s;
}

void AdmissionController::RecomputeSharesLocked() {
  double weight_sum = 0.0;
  for (const auto& [name, s] : classes_) weight_sum += s.weight;
  if (weight_sum <= 0.0) weight_sum = 1.0;
  for (auto& [name, s] : classes_) {
    s.reserved = std::max<size_t>(
        1, static_cast<size_t>(std::floor(
               static_cast<double>(options_.queue_capacity) * s.weight /
               weight_sum)));
    s.guaranteed = std::max<size_t>(
        1, static_cast<size_t>(
               std::floor(static_cast<double>(options_.workers) * s.weight /
                          weight_sum)));
  }
}

bool AdmissionController::TryAdmit(const std::string& cls) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& s = Cls(cls);
  // Under reservation: always in. Over it: borrow shared headroom only
  // while total pending stays under the global capacity, so one class's
  // burst cannot eat the slots other classes are entitled to.
  if (s.pending < s.reserved || total_pending_ < options_.queue_capacity) {
    ++s.pending;
    ++s.admitted;
    ++total_pending_;
    UpdateBrownoutLocked();
    return true;
  }
  ++s.shed;
  ++shed_total_;
  UpdateBrownoutLocked();
  return false;
}

void AdmissionController::Finish(const std::string& cls) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassState& s = Cls(cls);
  if (s.pending > 0) --s.pending;
  if (total_pending_ > 0) --total_pending_;
  UpdateBrownoutLocked();
}

void AdmissionController::Enqueue(const std::string& cls, Unit unit) {
  std::vector<std::pair<std::string, Unit>> launches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Cls(cls).queue.push_back(std::move(unit));
    CollectLaunchesLocked(&launches);
  }
  for (auto& [name, u] : launches) LaunchUnit(name, std::move(u));
}

void AdmissionController::CollectLaunchesLocked(
    std::vector<std::pair<std::string, Unit>>* out) {
  while (total_running_ < options_.workers) {
    // Pick the best non-empty class: under-guarantee classes first, then the
    // lowest running/weight ratio (weighted fair sharing of borrowed slots),
    // and on a full tie the least-recently-launched class — a round-robin
    // that keeps map iteration order from starving later-named classes.
    ClassState* best = nullptr;
    const std::string* best_name = nullptr;
    bool best_under = false;
    double best_ratio = 0.0;
    for (auto& [name, s] : classes_) {
      if (s.queue.empty()) continue;
      bool under = s.running < s.guaranteed;
      double ratio = static_cast<double>(s.running) / s.weight;
      bool better;
      if (best == nullptr) {
        better = true;
      } else if (under != best_under) {
        better = under;
      } else if (ratio != best_ratio) {
        better = ratio < best_ratio;
      } else {
        better = s.last_launch < best->last_launch;
      }
      if (better) {
        best = &s;
        best_name = &name;
        best_under = under;
        best_ratio = ratio;
      }
    }
    if (best == nullptr) return;
    out->emplace_back(*best_name, std::move(best->queue.front()));
    best->queue.pop_front();
    best->last_launch = ++launch_seq_;
    ++best->running;
    ++total_running_;
  }
}

void AdmissionController::LaunchUnit(const std::string& cls, Unit unit) {
  launch_([this, cls, unit = std::move(unit)]() mutable {
    unit();
    OnUnitDone(cls);
  });
}

void AdmissionController::OnUnitDone(const std::string& cls) {
  std::vector<std::pair<std::string, Unit>> launches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& s = Cls(cls);
    if (s.running > 0) --s.running;
    if (total_running_ > 0) --total_running_;
    CollectLaunchesLocked(&launches);
  }
  for (auto& [name, u] : launches) LaunchUnit(name, std::move(u));
}

void AdmissionController::DrainAll() {
  std::vector<std::pair<std::string, Unit>> launches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, s] : classes_) {
      while (!s.queue.empty()) {
        launches.emplace_back(name, std::move(s.queue.front()));
        s.queue.pop_front();
        ++s.running;  // balanced by OnUnitDone in the launch wrapper
        ++total_running_;
      }
    }
  }
  for (auto& [name, u] : launches) LaunchUnit(name, std::move(u));
}

void AdmissionController::UpdateBrownoutLocked() {
  const double cap = static_cast<double>(options_.queue_capacity);
  const double depth = static_cast<double>(total_pending_);
  if (!brownout_ && depth >= options_.brownout_enter_fraction * cap) {
    brownout_ = true;
  } else if (brownout_ && depth <= options_.brownout_exit_fraction * cap) {
    brownout_ = false;
  } else {
    return;  // no transition
  }
  if (options_.overload != nullptr) options_.overload->set_brownout(brownout_);
}

uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

bool AdmissionController::brownout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return brownout_;
}

easytime::Json AdmissionController::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  easytime::Json per_class = easytime::Json::Object();
  for (const auto& [name, s] : classes_) {
    easytime::Json c = easytime::Json::Object();
    c.Set("weight", s.weight);
    c.Set("reserved_slots", static_cast<int64_t>(s.reserved));
    c.Set("guaranteed_workers", static_cast<int64_t>(s.guaranteed));
    c.Set("pending", static_cast<int64_t>(s.pending));
    c.Set("queued_units", static_cast<int64_t>(s.queue.size()));
    c.Set("running_units", static_cast<int64_t>(s.running));
    c.Set("admitted", static_cast<int64_t>(s.admitted));
    c.Set("shed", static_cast<int64_t>(s.shed));
    per_class.Set(name, std::move(c));
  }
  easytime::Json out = easytime::Json::Object();
  out.Set("classes", std::move(per_class));
  out.Set("queue_capacity", static_cast<int64_t>(options_.queue_capacity));
  out.Set("workers", static_cast<int64_t>(options_.workers));
  out.Set("total_pending", static_cast<int64_t>(total_pending_));
  out.Set("total_running", static_cast<int64_t>(total_running_));
  out.Set("shed_total", static_cast<int64_t>(shed_total_));
  out.Set("brownout", brownout_);
  return out;
}

}  // namespace easytime::serve
