#pragma once

/// \file batcher.h
/// \brief Micro-batching for the fast lane: forecast requests naming the
/// same (method, config) coalesce into one batch so the executor can run
/// them as a single data-parallel task (one ParallelFor over the batch — the
/// chunked scheduler and row-parallel GEMM kernels see multi-item work) and
/// deduplicate identical requests into one computation.
///
/// A bucket flushes when it reaches max_batch items or when max_wait has
/// elapsed since its first item — the classic size-or-deadline policy. All
/// mutation happens on the dispatcher thread; the internal lock only makes
/// the stats readable from the stats endpoint.

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "serve/request.h"

namespace easytime::serve {

/// One queued fast-lane request: the parsed request, its cache key, the
/// deadline it must complete by, and the promise its client blocks on.
struct FastTask {
  Request request;
  std::string cache_key;
  easytime::Deadline deadline;  ///< from "deadline_ms"; infinite by default
  std::shared_ptr<std::promise<easytime::Json>> promise;
};

/// \brief Size-or-deadline batcher, keyed on a caller-chosen batch key
/// (the serving layer uses method + canonical method config).
class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  /// Receives a full batch (same batch key) ready for execution.
  using FlushFn = std::function<void(std::vector<FastTask>)>;

  struct Options {
    size_t max_batch = 8;
    std::chrono::microseconds max_wait{1000};
  };

  struct Stats {
    uint64_t items = 0;    ///< tasks that entered the batcher
    uint64_t batches = 0;  ///< batches flushed
    uint64_t max_batch_size = 0;
  };

  MicroBatcher(Options options, FlushFn flush)
      : options_(options), flush_(std::move(flush)) {}

  /// Adds a task under \p batch_key; flushes the bucket if it is full.
  void Add(const std::string& batch_key, FastTask task);

  /// Earliest bucket deadline, if any bucket is non-empty — the dispatcher
  /// uses it as its queue-pop timeout.
  std::optional<Clock::time_point> NextDeadline() const;

  /// Flushes every bucket whose deadline has passed.
  void FlushExpired(Clock::time_point now);

  /// Flushes everything (shutdown drain).
  void FlushAll();

  Stats stats() const;

 private:
  struct Bucket {
    std::vector<FastTask> items;
    Clock::time_point deadline;
  };

  Options options_;
  FlushFn flush_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  Stats stats_;
};

}  // namespace easytime::serve
