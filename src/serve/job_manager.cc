#include "serve/job_manager.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

#include "common/fault.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "serve/request.h"

namespace easytime::serve {

const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(core::EasyTime* system, Options options)
    : system_(system),
      options_(std::move(options)),
      pending_(options_.queue_capacity) {
  if (options_.concurrency == 0) options_.concurrency = 1;
}

JobManager::JobManager(core::EasyTime* system, size_t queue_capacity)
    : JobManager(system, Options{queue_capacity, "", 1, 1, 0}) {}

JobManager::~JobManager() { Shutdown(); }

void JobManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(options_.concurrency);
  for (size_t i = 0; i < options_.concurrency; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  pending_.Close();  // workers drain the queue (cancelling queued jobs)
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

size_t JobManager::PerJobThreadBudget() const {
  if (options_.thread_budget > 0) return options_.thread_budget;
  size_t cores = GlobalThreadPoolSizeOverride();
  if (cores == 0) {
    cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, cores / std::max<size_t>(1, options_.concurrency));
}

size_t JobManager::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_running_;
}

std::string JobManager::JobKey(const easytime::Json& config) {
  std::string key = config.GetString("job_key", "");
  if (!key.empty()) return key;
  // No explicit key: derive one from the canonicalized config, so the same
  // evaluation request resumes its own checkpoint by default.
  size_t h = std::hash<std::string>{}(CanonicalKey("evaluate", config));
  std::ostringstream ss;
  ss << "auto-" << std::hex << h;
  return ss.str();
}

std::string JobManager::CheckpointPath(const std::string& job_key) const {
  if (options_.checkpoint_dir.empty()) return "";
  std::string safe;
  safe.reserve(job_key.size());
  for (char c : job_key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    safe.push_back(ok ? c : '_');
  }
  if (safe.empty()) safe = "job";
  return options_.checkpoint_dir + "/" + safe + ".ckpt";
}

std::map<std::string, pipeline::RunRecord> JobManager::LoadCheckpoint(
    const std::string& path, size_t* loaded) const {
  std::map<std::string, pipeline::RunRecord> completed;
  if (loaded) *loaded = 0;
  std::ifstream in(path);
  if (!in) return completed;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = easytime::Json::Parse(line);
    if (!doc.ok()) continue;  // torn tail write from a crash — skip
    auto rec = pipeline::RunRecord::FromJson(*doc);
    if (!rec.ok()) continue;
    // Only trust successful records; anything else re-runs on resume.
    if (!rec->status.ok()) continue;
    completed[pipeline::PairKey(rec->dataset, rec->method)] = std::move(*rec);
  }
  if (loaded) *loaded = completed.size();
  return completed;
}

easytime::Result<uint64_t> JobManager::Submit(easytime::Json config) {
  EASYTIME_FAULT_POINT("serve.job");
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_.load()) {
    ++stats_.rejected;
    return Status::Unavailable("evaluation lane is shut down");
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_;
  job->job_key = JobKey(config);
  job->config = std::move(config);
  const uint64_t id = job->id;
  if (!pending_.TryPush(id)) {
    ++stats_.rejected;
    return Status::Unavailable(
        "evaluation queue is full (" +
        std::to_string(pending_.capacity()) + " jobs); retry later");
  }
  ++next_id_;
  jobs_[id] = std::move(job);
  ++stats_.submitted;
  return id;
}

easytime::Json JobManager::JobJsonLocked(const Job& job) const {
  easytime::Json out = easytime::Json::Object();
  out.Set("job", static_cast<int64_t>(job.id));
  out.Set("state", JobStateName(job.state));
  out.Set("done", static_cast<int64_t>(job.done.load()));
  out.Set("total", static_cast<int64_t>(job.total.load()));
  if (job.state == JobState::kDone) out.Set("result", job.result);
  if (job.state == JobState::kFailed) {
    out.Set("error", job.error.ToString());
  }
  return out;
}

easytime::Result<easytime::Json> JobManager::StatusJson(
    uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  return JobJsonLocked(*it->second);
}

easytime::Result<easytime::Json> JobManager::Cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  Job& job = *it->second;
  job.cancel->store(true);
  if (job.state == JobState::kQueued) {
    // A worker sees the state and skips it when the id surfaces.
    job.state = JobState::kCancelled;
    ++stats_.cancelled;
  }
  return JobJsonLocked(job);
}

JobManager::Stats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void JobManager::RunJob(Job* job,
                        const std::shared_ptr<std::atomic<bool>>& cancel) {
  pipeline::RunHooks hooks;
  hooks.cancelled = [cancel]() { return cancel->load(); };
  hooks.progress = [job](size_t done, size_t total) {
    job->done.store(done, std::memory_order_relaxed);
    job->total.store(total, std::memory_order_relaxed);
  };
  // Split the machine across the pool: with N workers each job's pipeline
  // gets ~cores/N threads instead of a full-width pool per job.
  hooks.max_threads = PerJobThreadBudget();
  double deadline_ms = job->config.GetDouble("deadline_ms", 0.0);
  if (deadline_ms > 0.0) {
    hooks.deadline = easytime::Deadline::AfterMillis(deadline_ms);
  }

  const std::string ckpt_path = CheckpointPath(job->job_key);
  std::map<std::string, pipeline::RunRecord> completed;
  size_t resumed = 0;
  std::mutex ckpt_mu;
  std::ofstream ckpt_out;
  size_t unflushed = 0;
  if (!ckpt_path.empty()) {
    completed = LoadCheckpoint(ckpt_path, &resumed);
    if (resumed > 0) {
      hooks.completed = &completed;
      EASYTIME_LOG(Info) << "job " << job->id << " resuming from " << resumed
                         << " checkpointed pairs (" << ckpt_path << ")";
      std::lock_guard<std::mutex> lock(mu_);
      stats_.resumed_records += resumed;
    }
    ckpt_out.open(ckpt_path, std::ios::app);
    if (ckpt_out) {
      hooks.on_record = [this, &ckpt_mu, &ckpt_out,
                         &unflushed](const pipeline::RunRecord& rec) {
        if (!rec.status.ok()) return;  // failures re-run on resume
        std::lock_guard<std::mutex> lock(ckpt_mu);
        ckpt_out << rec.ToJson().Dump() << '\n';
        if (++unflushed >= options_.checkpoint_every) {
          ckpt_out.flush();
          unflushed = 0;
        }
      };
    } else {
      EASYTIME_LOG(Warning) << "job " << job->id
                            << ": cannot open checkpoint " << ckpt_path
                            << "; running without one";
    }
  }

  auto report = system_->OneClickEvaluate(job->config, hooks);
  if (ckpt_out.is_open()) ckpt_out.close();

  std::lock_guard<std::mutex> lock(mu_);
  if (report.ok()) {
    size_t ok_records = report->Successful().size();
    easytime::Json summary = easytime::Json::Object();
    summary.Set("records", static_cast<int64_t>(report->records.size()));
    summary.Set("ok", static_cast<int64_t>(ok_records));
    summary.Set("wall_seconds", report->wall_seconds);
    if (resumed > 0) {
      summary.Set("resumed", static_cast<int64_t>(resumed));
    }
    job->result = std::move(summary);
    job->state = JobState::kDone;
    ++stats_.completed;
    // The job is terminal and its results live in the knowledge base now;
    // the checkpoint has served its purpose.
    if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());
  } else if (report.status().IsCancelled()) {
    job->state = JobState::kCancelled;
    ++stats_.cancelled;
  } else {
    job->error = report.status();
    job->state = JobState::kFailed;
    ++stats_.failed;
    EASYTIME_LOG(Warning) << "evaluation job " << job->id
                          << " failed: " << report.status().ToString();
  }
}

std::optional<uint64_t> JobManager::PopWaitingLocked(const std::string& key) {
  auto it = waiting_.find(key);
  if (it == waiting_.end()) return std::nullopt;
  uint64_t id = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) waiting_.erase(it);
  return id;
}

void JobManager::ProcessJob(uint64_t id) {
  std::optional<uint64_t> cur = id;
  while (cur) {
    Job* job = nullptr;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::string key;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(*cur);
      if (it == jobs_.end()) return;  // ids are never erased; defensive
      Job& j = *it->second;
      key = j.job_key;
      bool run = false;
      if (j.state == JobState::kQueued) {
        if (shutdown_.load()) {
          // Draining: don't start new work, just mark it cancelled.
          j.state = JobState::kCancelled;
          ++stats_.cancelled;
        } else if (active_keys_.count(key) > 0) {
          // Same checkpoint identity is already running: park behind it.
          // The worker that finishes the active job picks this one up, so
          // two jobs never interleave writes to one checkpoint file.
          waiting_[key].push_back(*cur);
          return;
        } else {
          active_keys_.insert(key);
          j.state = JobState::kRunning;
          ++num_running_;
          stats_.peak_running =
              std::max<uint64_t>(stats_.peak_running, num_running_);
          job = &j;
          cancel = j.cancel;
          run = true;
        }
      }
      if (!run) {  // cancelled while queued/parked, or draining
        cur = PopWaitingLocked(key);
        continue;
      }
    }
    RunJob(job, cancel);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_keys_.erase(key);
      --num_running_;
      cur = PopWaitingLocked(key);
    }
  }
}

void JobManager::WorkerLoop() {
  while (auto id = pending_.Pop()) {
    ProcessJob(*id);
  }
}

}  // namespace easytime::serve
