#include "serve/job_manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>
#include <system_error>

#include "common/fault.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "serve/request.h"

namespace easytime::serve {

namespace {

/// WAL record appended when a job reaches kDone, just before its checkpoint
/// store is removed — the persisted terminal status the startup sweep keys
/// on when the removal itself was lost to a crash.
constexpr char kTerminalKey[] = "__terminal__";

/// Snapshot state for a checkpoint store: {"records": [RunRecord...]}.
std::string EncodeCheckpointState(
    const std::map<std::string, easytime::Json>& records) {
  easytime::Json state = easytime::Json::Object();
  easytime::Json arr = easytime::Json::Array();
  for (const auto& [key, rec] : records) arr.Append(rec);
  state.Set("records", std::move(arr));
  return state.Dump();
}

/// Snapshot state for a backtest checkpoint: {"origins": [OriginEval...]}.
std::string EncodeBacktestState(
    const std::map<size_t, easytime::Json>& origins) {
  easytime::Json state = easytime::Json::Object();
  easytime::Json arr = easytime::Json::Array();
  for (const auto& [index, rec] : origins) arr.Append(rec);
  state.Set("origins", std::move(arr));
  return state.Dump();
}

}  // namespace

const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(core::EasyTime* system, Options options)
    : system_(system),
      options_(std::move(options)),
      pending_(options_.queue_capacity) {
  if (options_.concurrency == 0) options_.concurrency = 1;
}

JobManager::JobManager(core::EasyTime* system, size_t queue_capacity)
    : JobManager(system, Options{queue_capacity, "", 1, 1, 0}) {}

JobManager::~JobManager() { Shutdown(); }

void JobManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  if (!options_.checkpoint_dir.empty()) SweepOrphanedCheckpointsLocked();
  workers_.reserve(options_.concurrency);
  for (size_t i = 0; i < options_.concurrency; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true);
  }
  pending_.Close();  // workers drain the queue (cancelling queued jobs)
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

size_t JobManager::PerJobThreadBudget() const {
  if (options_.thread_budget > 0) return options_.thread_budget;
  size_t cores = GlobalThreadPoolSizeOverride();
  if (cores == 0) {
    cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<size_t>(1, cores / std::max<size_t>(1, options_.concurrency));
}

size_t JobManager::running_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_running_;
}

std::string JobManager::JobKey(const easytime::Json& config) {
  std::string key = config.GetString("job_key", "");
  if (!key.empty()) return key;
  // No explicit key: derive one from the canonicalized config, so the same
  // evaluation request resumes its own checkpoint by default.
  size_t h = std::hash<std::string>{}(CanonicalKey("evaluate", config));
  std::ostringstream ss;
  ss << "auto-" << std::hex << h;
  return ss.str();
}

std::string JobManager::CheckpointPath(const std::string& job_key) const {
  if (options_.checkpoint_dir.empty()) return "";
  std::string safe;
  safe.reserve(job_key.size());
  for (char c : job_key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    safe.push_back(ok ? c : '_');
  }
  if (safe.empty()) safe = "job";
  return options_.checkpoint_dir + "/" + safe + ".ckpt";
}

easytime::Result<std::unique_ptr<store::RecordStore>>
JobManager::OpenCheckpoint(
    const std::string& path,
    std::map<std::string, pipeline::RunRecord>* completed,
    size_t* loaded) const {
  namespace fs = std::filesystem;
  *loaded = 0;
  auto absorb = [completed](const easytime::Json& doc) {
    auto rec = pipeline::RunRecord::FromJson(doc);
    if (!rec.ok()) return;
    // Only trust successful records; anything else re-runs on resume.
    if (!rec->status.ok()) return;
    (*completed)[pipeline::PairKey(rec->dataset, rec->method)] =
        std::move(*rec);
  };

  // Pre-store checkpoints were a line-JSON file at this very path; absorb
  // its records and clear the way for the store directory.
  std::error_code ec;
  bool migrated = false;
  if (fs::is_regular_file(path, ec)) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto doc = easytime::Json::Parse(line);
      if (!doc.ok()) continue;  // torn tail write from a crash — skip
      absorb(*doc);
    }
    fs::remove(path, ec);
    migrated = true;
  }

  store::RecordStoreOptions store_options;
  store::RecordStoreRecovery recovery;
  EASYTIME_ASSIGN_OR_RETURN(
      std::unique_ptr<store::RecordStore> ckpt,
      store::RecordStore::Open(path, store_options, &recovery));
  if (recovery.has_snapshot) {
    auto snap = easytime::Json::Parse(recovery.snapshot);
    if (snap.ok()) {
      for (const auto& rec : snap->Get("records").items()) absorb(rec);
    }
  }
  for (const auto& [seq, payload] : recovery.tail) {
    (void)seq;
    auto doc = easytime::Json::Parse(payload);
    if (doc.ok() && !doc->Has(kTerminalKey)) absorb(*doc);
  }
  if (migrated && !completed->empty()) {
    // Re-persist the migrated records in the new format right away, so the
    // legacy data survives even if this run checkpoints nothing further.
    std::map<std::string, easytime::Json> records;
    for (const auto& [key, rec] : *completed) records[key] = rec.ToJson();
    EASYTIME_RETURN_IF_ERROR(ckpt->Compact(EncodeCheckpointState(records)));
  }
  *loaded = completed->size();
  return ckpt;
}

easytime::Result<std::unique_ptr<store::RecordStore>>
JobManager::OpenBacktestCheckpoint(
    const std::string& path, std::map<size_t, eval::OriginEval>* completed,
    size_t* loaded) const {
  *loaded = 0;
  auto absorb = [completed](const easytime::Json& doc) {
    auto rec = eval::OriginEval::FromJson(doc);
    if (!rec.ok()) return;
    const size_t index = rec->index;
    (*completed)[index] = std::move(*rec);
  };

  store::RecordStoreOptions store_options;
  store::RecordStoreRecovery recovery;
  EASYTIME_ASSIGN_OR_RETURN(
      std::unique_ptr<store::RecordStore> ckpt,
      store::RecordStore::Open(path, store_options, &recovery));
  if (recovery.has_snapshot) {
    auto snap = easytime::Json::Parse(recovery.snapshot);
    if (snap.ok()) {
      for (const auto& rec : snap->Get("origins").items()) absorb(rec);
    }
  }
  for (const auto& [seq, payload] : recovery.tail) {
    (void)seq;
    auto doc = easytime::Json::Parse(payload);
    if (doc.ok() && !doc->Has(kTerminalKey)) absorb(*doc);
  }
  *loaded = completed->size();
  return ckpt;
}

void JobManager::SweepOrphanedCheckpointsLocked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.checkpoint_dir,
                                                  ec)) {
    if (!entry.is_directory() || entry.path().extension() != ".ckpt") {
      continue;
    }
    store::RecordStoreRecovery recovery;
    auto ckpt = store::RecordStore::Open(entry.path().string(),
                                         store::RecordStoreOptions{},
                                         &recovery);
    if (!ckpt.ok()) continue;
    bool terminal = false;
    for (const auto& [seq, payload] : recovery.tail) {
      (void)seq;
      auto doc = easytime::Json::Parse(payload);
      if (doc.ok() && doc->Has(kTerminalKey)) {
        terminal = true;
        break;
      }
    }
    if (!terminal) continue;
    ckpt->reset();  // close the store's fds before deleting it
    std::error_code rm_ec;
    fs::remove_all(entry.path(), rm_ec);
    if (!rm_ec) {
      ++stats_.swept_checkpoints;
      EASYTIME_LOG(Info) << "jobs: swept orphaned terminal checkpoint "
                         << entry.path().string();
    }
  }
}

easytime::Result<uint64_t> JobManager::Submit(easytime::Json config) {
  EASYTIME_FAULT_POINT("serve.job");
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_.load()) {
    ++stats_.rejected;
    return Status::Unavailable("evaluation lane is shut down");
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_;
  job->job_key = JobKey(config);
  job->config = std::move(config);
  const uint64_t id = job->id;
  if (!pending_.TryPush(id)) {
    ++stats_.rejected;
    return Status::Unavailable(
        "evaluation queue is full (" +
        std::to_string(pending_.capacity()) + " jobs); retry later");
  }
  ++next_id_;
  jobs_[id] = std::move(job);
  ++stats_.submitted;
  return id;
}

easytime::Json JobManager::JobJsonLocked(const Job& job) const {
  easytime::Json out = easytime::Json::Object();
  out.Set("job", static_cast<int64_t>(job.id));
  out.Set("state", JobStateName(job.state));
  out.Set("done", static_cast<int64_t>(job.done.load()));
  out.Set("total", static_cast<int64_t>(job.total.load()));
  if (job.state == JobState::kDone) out.Set("result", job.result);
  if (job.state == JobState::kFailed) {
    out.Set("error", job.error.ToString());
  }
  return out;
}

easytime::Result<easytime::Json> JobManager::StatusJson(
    uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  return JobJsonLocked(*it->second);
}

easytime::Result<easytime::Json> JobManager::Cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  Job& job = *it->second;
  job.cancel->store(true);
  if (job.state == JobState::kQueued) {
    // A worker sees the state and skips it when the id surfaces.
    job.state = JobState::kCancelled;
    ++stats_.cancelled;
  }
  return JobJsonLocked(job);
}

JobManager::Stats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void JobManager::RunJob(Job* job,
                        const std::shared_ptr<std::atomic<bool>>& cancel) {
  const std::string type = job->config.GetString("type", "evaluate");
  if (type == "backtest") {
    RunBacktestJob(job, cancel);
    return;
  }
  RunEvaluateJob(job, cancel);
}

void JobManager::RunEvaluateJob(
    Job* job, const std::shared_ptr<std::atomic<bool>>& cancel) {
  pipeline::RunHooks hooks;
  hooks.cancelled = [cancel]() { return cancel->load(); };
  hooks.progress = [job](size_t done, size_t total) {
    job->done.store(done, std::memory_order_relaxed);
    job->total.store(total, std::memory_order_relaxed);
  };
  // Split the machine across the pool: with N workers each job's pipeline
  // gets ~cores/N threads instead of a full-width pool per job.
  hooks.max_threads = PerJobThreadBudget();
  double deadline_ms = job->config.GetDouble("deadline_ms", 0.0);
  if (deadline_ms > 0.0) {
    hooks.deadline = easytime::Deadline::AfterMillis(deadline_ms);
  }

  const std::string ckpt_path = CheckpointPath(job->job_key);
  std::map<std::string, pipeline::RunRecord> completed;
  size_t resumed = 0;
  std::mutex ckpt_mu;
  std::unique_ptr<store::RecordStore> ckpt;
  /// All checkpointed records (resumed + this run's), keyed by pair — the
  /// snapshot state a compaction writes. Guarded by ckpt_mu; `completed`
  /// itself stays immutable once handed to the pipeline via hooks.
  std::map<std::string, easytime::Json> ckpt_records;
  size_t unsynced = 0;
  if (!ckpt_path.empty()) {
    auto ckpt_or = OpenCheckpoint(ckpt_path, &completed, &resumed);
    if (ckpt_or.ok()) {
      ckpt = std::move(*ckpt_or);
    } else {
      EASYTIME_LOG(Warning) << "job " << job->id
                            << ": cannot open checkpoint store " << ckpt_path
                            << " (" << ckpt_or.status().ToString()
                            << "); running without one";
    }
    if (resumed > 0) {
      hooks.completed = &completed;
      EASYTIME_LOG(Info) << "job " << job->id << " resuming from " << resumed
                         << " checkpointed pairs (" << ckpt_path << ")";
      std::lock_guard<std::mutex> lock(mu_);
      stats_.resumed_records += resumed;
    }
    if (ckpt) {
      for (const auto& [key, rec] : completed) {
        ckpt_records[key] = rec.ToJson();
      }
      hooks.on_record = [this, &ckpt_mu, &ckpt, &ckpt_records,
                         &unsynced](const pipeline::RunRecord& rec) {
        if (!rec.status.ok()) return;  // failures re-run on resume
        std::lock_guard<std::mutex> lock(ckpt_mu);
        easytime::Json doc = rec.ToJson();
        auto seq = ckpt->Append(doc.Dump());
        if (!seq.ok()) {
          EASYTIME_LOG(Warning) << "checkpoint append failed: "
                                << seq.status().ToString();
          return;
        }
        ckpt_records[pipeline::PairKey(rec.dataset, rec.method)] =
            std::move(doc);
        if (++unsynced >= options_.checkpoint_every) {
          (void)ckpt->Sync();
          unsynced = 0;
        }
        if (options_.compact_every > 0 &&
            ckpt->appends_since_compaction() >= options_.compact_every) {
          auto st = ckpt->Compact(EncodeCheckpointState(ckpt_records));
          if (!st.ok()) {
            EASYTIME_LOG(Warning) << "checkpoint compaction failed: "
                                  << st.ToString();
          }
        }
      };
    }
  }

  auto report = system_->OneClickEvaluate(job->config, hooks);
  if (ckpt && report.ok()) {
    // Persist the terminal status before removing the checkpoint: if the
    // removal is lost to a crash, the startup sweep keys on this marker.
    std::lock_guard<std::mutex> lock(ckpt_mu);
    easytime::Json marker = easytime::Json::Object();
    marker.Set(kTerminalKey, "done");
    (void)ckpt->Append(marker.Dump());
    (void)ckpt->Sync();
  }
  ckpt.reset();  // close the store's fds before any removal

  std::lock_guard<std::mutex> lock(mu_);
  if (report.ok()) {
    size_t ok_records = report->Successful().size();
    easytime::Json summary = easytime::Json::Object();
    summary.Set("records", static_cast<int64_t>(report->records.size()));
    summary.Set("ok", static_cast<int64_t>(ok_records));
    summary.Set("wall_seconds", report->wall_seconds);
    if (resumed > 0) {
      summary.Set("resumed", static_cast<int64_t>(resumed));
    }
    job->result = std::move(summary);
    job->state = JobState::kDone;
    ++stats_.completed;
    // The job is terminal and its results live in the knowledge base now;
    // the checkpoint has served its purpose.
    if (!ckpt_path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(ckpt_path, ec);
    }
  } else if (report.status().IsCancelled()) {
    job->state = JobState::kCancelled;
    ++stats_.cancelled;
  } else {
    job->error = report.status();
    job->state = JobState::kFailed;
    ++stats_.failed;
    EASYTIME_LOG(Warning) << "evaluation job " << job->id
                          << " failed: " << report.status().ToString();
  }
}

void JobManager::RunBacktestJob(
    Job* job, const std::shared_ptr<std::atomic<bool>>& cancel) {
  auto finish_failed = [&](const Status& error) {
    std::lock_guard<std::mutex> lock(mu_);
    job->error = error;
    job->state = JobState::kFailed;
    ++stats_.failed;
    EASYTIME_LOG(Warning) << "backtest job " << job->id
                          << " failed: " << error.ToString();
  };

  const std::string dataset = job->config.GetString("dataset", "");
  if (dataset.empty()) {
    finish_failed(
        Status::InvalidArgument("backtest requires a \"dataset\" name"));
    return;
  }
  auto config_or = eval::BacktestConfig::FromJson(job->config);
  if (!config_or.ok()) {
    finish_failed(config_or.status());
    return;
  }
  // Snapshot under the facade's shared lock: streaming appends may be
  // landing concurrently, and the backtest must see one consistent prefix.
  auto series_or = system_->SeriesSnapshot(dataset);
  if (!series_or.ok()) {
    finish_failed(series_or.status());
    return;
  }

  eval::BacktestHooks hooks;
  hooks.cancelled = [cancel]() { return cancel->load(); };
  hooks.progress = [job](size_t done, size_t total) {
    job->done.store(done, std::memory_order_relaxed);
    job->total.store(total, std::memory_order_relaxed);
  };
  hooks.max_threads = PerJobThreadBudget();
  double deadline_ms = job->config.GetDouble("deadline_ms", 0.0);
  if (deadline_ms > 0.0) {
    hooks.deadline = easytime::Deadline::AfterMillis(deadline_ms);
  }

  const std::string ckpt_path = CheckpointPath(job->job_key);
  std::map<size_t, eval::OriginEval> completed;
  size_t resumed = 0;
  std::mutex ckpt_mu;
  std::unique_ptr<store::RecordStore> ckpt;
  /// All checkpointed origins (resumed + this run's), keyed by ladder
  /// index — the snapshot state a compaction writes. Guarded by ckpt_mu.
  std::map<size_t, easytime::Json> ckpt_records;
  size_t unsynced = 0;
  if (!ckpt_path.empty()) {
    auto ckpt_or = OpenBacktestCheckpoint(ckpt_path, &completed, &resumed);
    if (ckpt_or.ok()) {
      ckpt = std::move(*ckpt_or);
    } else {
      EASYTIME_LOG(Warning) << "job " << job->id
                            << ": cannot open checkpoint store " << ckpt_path
                            << " (" << ckpt_or.status().ToString()
                            << "); running without one";
    }
    if (resumed > 0) {
      hooks.completed = &completed;
      EASYTIME_LOG(Info) << "job " << job->id << " resuming from " << resumed
                         << " checkpointed origins (" << ckpt_path << ")";
      std::lock_guard<std::mutex> lock(mu_);
      stats_.resumed_records += resumed;
    }
    if (ckpt) {
      for (const auto& [index, rec] : completed) {
        ckpt_records[index] = rec.ToJson();
      }
      hooks.on_origin = [this, &ckpt_mu, &ckpt, &ckpt_records,
                         &unsynced](const eval::OriginEval& rec) {
        std::lock_guard<std::mutex> lock(ckpt_mu);
        easytime::Json doc = rec.ToJson();
        auto seq = ckpt->Append(doc.Dump());
        if (!seq.ok()) {
          EASYTIME_LOG(Warning) << "checkpoint append failed: "
                                << seq.status().ToString();
          return;
        }
        ckpt_records[rec.index] = std::move(doc);
        if (++unsynced >= options_.checkpoint_every) {
          (void)ckpt->Sync();
          unsynced = 0;
        }
        if (options_.compact_every > 0 &&
            ckpt->appends_since_compaction() >= options_.compact_every) {
          auto st = ckpt->Compact(EncodeBacktestState(ckpt_records));
          if (!st.ok()) {
            EASYTIME_LOG(Warning) << "checkpoint compaction failed: "
                                  << st.ToString();
          }
        }
      };
    }
  }

  auto report = eval::RunBacktest(series_or->values(),
                                  series_or->period_hint(), *config_or, hooks);
  if (ckpt && report.ok()) {
    std::lock_guard<std::mutex> lock(ckpt_mu);
    easytime::Json marker = easytime::Json::Object();
    marker.Set(kTerminalKey, "done");
    (void)ckpt->Append(marker.Dump());
    (void)ckpt->Sync();
  }
  ckpt.reset();  // close the store's fds before any removal

  std::lock_guard<std::mutex> lock(mu_);
  if (report.ok()) {
    easytime::Json result = report->ToJson();
    result.Set("dataset", dataset);
    job->result = std::move(result);
    job->state = JobState::kDone;
    ++stats_.completed;
    if (!ckpt_path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(ckpt_path, ec);
    }
  } else if (report.status().IsCancelled()) {
    job->state = JobState::kCancelled;
    ++stats_.cancelled;
  } else {
    job->error = report.status();
    job->state = JobState::kFailed;
    ++stats_.failed;
    EASYTIME_LOG(Warning) << "backtest job " << job->id
                          << " failed: " << report.status().ToString();
  }
}

std::optional<uint64_t> JobManager::PopWaitingLocked(const std::string& key) {
  auto it = waiting_.find(key);
  if (it == waiting_.end()) return std::nullopt;
  uint64_t id = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) waiting_.erase(it);
  return id;
}

void JobManager::ProcessJob(uint64_t id) {
  std::optional<uint64_t> cur = id;
  while (cur) {
    Job* job = nullptr;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::string key;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(*cur);
      if (it == jobs_.end()) return;  // ids are never erased; defensive
      Job& j = *it->second;
      key = j.job_key;
      bool run = false;
      if (j.state == JobState::kQueued) {
        if (shutdown_.load()) {
          // Draining: don't start new work, just mark it cancelled.
          j.state = JobState::kCancelled;
          ++stats_.cancelled;
        } else if (active_keys_.count(key) > 0) {
          // Same checkpoint identity is already running: park behind it.
          // The worker that finishes the active job picks this one up, so
          // two jobs never interleave writes to one checkpoint file.
          waiting_[key].push_back(*cur);
          return;
        } else {
          active_keys_.insert(key);
          j.state = JobState::kRunning;
          ++num_running_;
          stats_.peak_running =
              std::max<uint64_t>(stats_.peak_running, num_running_);
          job = &j;
          cancel = j.cancel;
          run = true;
        }
      }
      if (!run) {  // cancelled while queued/parked, or draining
        cur = PopWaitingLocked(key);
        continue;
      }
    }
    RunJob(job, cancel);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_keys_.erase(key);
      --num_running_;
      cur = PopWaitingLocked(key);
    }
  }
}

void JobManager::WorkerLoop() {
  while (auto id = pending_.Pop()) {
    ProcessJob(*id);
  }
}

}  // namespace easytime::serve
