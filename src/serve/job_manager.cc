#include "serve/job_manager.h"

#include "common/logging.h"
#include "pipeline/runner.h"

namespace easytime::serve {

const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(core::EasyTime* system, size_t queue_capacity)
    : system_(system), pending_(queue_capacity) {}

JobManager::~JobManager() { Shutdown(); }

void JobManager::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this]() { WorkerLoop(); });
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || shutdown_.load()) {
      shutdown_.store(true);
      pending_.Close();
      if (worker_.joinable()) worker_.join();
      return;
    }
    shutdown_.store(true);
  }
  pending_.Close();  // worker drains the queue (cancelling queued jobs)
  if (worker_.joinable()) worker_.join();
}

easytime::Result<uint64_t> JobManager::Submit(easytime::Json config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_.load()) {
    ++stats_.rejected;
    return Status::Unavailable("evaluation lane is shut down");
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_;
  job->config = std::move(config);
  const uint64_t id = job->id;
  if (!pending_.TryPush(id)) {
    ++stats_.rejected;
    return Status::Unavailable(
        "evaluation queue is full (" +
        std::to_string(pending_.capacity()) + " jobs); retry later");
  }
  ++next_id_;
  jobs_[id] = std::move(job);
  ++stats_.submitted;
  return id;
}

easytime::Json JobManager::JobJsonLocked(const Job& job) const {
  easytime::Json out = easytime::Json::Object();
  out.Set("job", static_cast<int64_t>(job.id));
  out.Set("state", JobStateName(job.state));
  out.Set("done", static_cast<int64_t>(job.done.load()));
  out.Set("total", static_cast<int64_t>(job.total.load()));
  if (job.state == JobState::kDone) out.Set("result", job.result);
  if (job.state == JobState::kFailed) {
    out.Set("error", job.error.ToString());
  }
  return out;
}

easytime::Result<easytime::Json> JobManager::StatusJson(
    uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  return JobJsonLocked(*it->second);
}

easytime::Result<easytime::Json> JobManager::Cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  Job& job = *it->second;
  job.cancel->store(true);
  if (job.state == JobState::kQueued) {
    // The worker sees the state and skips it when the id surfaces.
    job.state = JobState::kCancelled;
    ++stats_.cancelled;
  }
  return JobJsonLocked(job);
}

JobManager::Stats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void JobManager::WorkerLoop() {
  while (auto id = pending_.Pop()) {
    Job* job = nullptr;
    std::shared_ptr<std::atomic<bool>> cancel;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(*id);
      if (it == jobs_.end()) continue;
      if (it->second->state != JobState::kQueued) continue;  // cancelled
      if (shutdown_.load()) {
        // Draining: don't start new work, just mark it cancelled.
        it->second->state = JobState::kCancelled;
        ++stats_.cancelled;
        continue;
      }
      job = it->second.get();
      job->state = JobState::kRunning;
      cancel = job->cancel;
    }

    pipeline::RunHooks hooks;
    hooks.cancelled = [cancel]() { return cancel->load(); };
    hooks.progress = [job](size_t done, size_t total) {
      job->done.store(done, std::memory_order_relaxed);
      job->total.store(total, std::memory_order_relaxed);
    };
    auto report = system_->OneClickEvaluate(job->config, hooks);

    std::lock_guard<std::mutex> lock(mu_);
    if (report.ok()) {
      size_t ok_records = report->Successful().size();
      easytime::Json summary = easytime::Json::Object();
      summary.Set("records", static_cast<int64_t>(report->records.size()));
      summary.Set("ok", static_cast<int64_t>(ok_records));
      summary.Set("wall_seconds", report->wall_seconds);
      job->result = std::move(summary);
      job->state = JobState::kDone;
      ++stats_.completed;
    } else if (report.status().IsCancelled()) {
      job->state = JobState::kCancelled;
      ++stats_.cancelled;
    } else {
      job->error = report.status();
      job->state = JobState::kFailed;
      ++stats_.failed;
      EASYTIME_LOG(Warning) << "evaluation job " << job->id
                            << " failed: " << report.status().ToString();
    }
  }
}

}  // namespace easytime::serve
