#pragma once

/// \file event_loop.h
/// \brief Epoll-based serving front-end for ForecastServer — the
/// thread-per-connection TcpServer's replacement (DESIGN.md §8). One event
/// thread owns every socket: nonblocking accept/read/write, per-connection
/// read buffers with line framing, write backpressure (reads pause while a
/// peer's response backlog is over budget), an idle-connection timeout, and
/// a graceful drain on Stop. Request *execution* never runs on the event
/// thread: framed lines are handed to a small handler pool, and responses
/// come back through a mailbox + eventfd wakeup, so one slow request cannot
/// stall the other connections' IO.
///
/// Wire protocol is unchanged from PR 2: one line-delimited JSON request in,
/// one response line out, pipelining allowed; responses on a connection are
/// returned in request order. Binds 127.0.0.1 only.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/server.h"

namespace easytime::serve {

/// \brief The epoll front-end. Start() spins up the event thread and the
/// handler pool; Stop() drains (in-flight requests finish, their responses
/// flush, undispatched pipelined lines are abandoned) within
/// drain_timeout_ms, then closes everything. Stop is terminal.
class EventLoopServer {
 public:
  struct Options {
    uint16_t port = 0;       ///< 0 picks an ephemeral port (see port())
    int backlog = 64;
    size_t max_connections = 64;  ///< accept pauses at the cap (excess
                                  ///< connections wait in the listen backlog)
    size_t num_handler_threads = 4;  ///< request-execution pool
    /// Longest a connection may sit with no traffic and no request in
    /// flight before the loop closes it. 0 disables the timeout.
    double idle_timeout_ms = 0.0;
    /// A line that grows past this many bytes without a newline is a
    /// protocol violation: the connection gets one error response and is
    /// closed. 0 derives it from the ForecastServer's max_request_bytes.
    size_t max_line_bytes = 0;
    /// Write backpressure: once a connection's unflushed response bytes
    /// exceed this, its reads pause until the backlog drains below half.
    size_t max_write_buffer_bytes = 1 << 20;
    /// Per-connection cap on framed-but-not-yet-executed requests; reads
    /// pause at the cap (pipelining backpressure).
    size_t max_pipeline_depth = 64;
    /// How long Stop() waits for in-flight requests to finish and flush
    /// before force-closing the stragglers.
    double drain_timeout_ms = 5000.0;
    /// Bearer token for connection auth. Empty falls back to the
    /// EASYTIME_AUTH_TOKEN environment variable; if that is also unset,
    /// auth is disabled. With a token configured, the first frame on every
    /// connection must be {"endpoint":"auth","params":{"token":...}} —
    /// anything else gets one Unauthenticated error response and the
    /// connection is closed.
    std::string auth_token;
  };

  /// Event-loop counters (event-thread writes, anyone reads).
  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t idle_closed = 0;      ///< closes from the idle timeout
    uint64_t protocol_errors = 0;  ///< unterminated-line (oversized) closes
    uint64_t auth_failures = 0;    ///< bad/missing first-frame credentials
    uint64_t requests_dispatched = 0;
    uint64_t responses_written = 0;
  };

  /// Executes one framed request line and returns the response line
  /// (without the trailing newline). Runs on the handler pool.
  using LineHandler = std::function<std::string(const std::string&)>;

  /// The classic front-end: requests go to \p server->HandleLine.
  EventLoopServer(ForecastServer* server, Options options);

  /// \brief Generalized front-end over any line handler — the cluster
  /// router (DESIGN.md §14) reuses the epoll loop, framing, backpressure,
  /// and auth handshake without owning a ForecastServer.
  /// \p max_request_bytes bounds auth-frame parsing and derives the line
  /// cap when Options::max_line_bytes is 0.
  EventLoopServer(LineHandler handler, size_t max_request_bytes,
                  Options options);

  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds, listens, starts the event thread and handler pool.
  easytime::Status Start();

  /// Graceful drain then shutdown (idempotent, terminal; also run by the
  /// destructor).
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(); }

  Stats stats() const;

  /// Live connection count (event-thread owned; approximate for readers).
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;               ///< unframed bytes
    std::deque<std::string> lines;   ///< framed, awaiting dispatch
    std::string outbuf;              ///< response bytes awaiting the socket
    bool inflight = false;           ///< a handler owns the head request
    bool authed = false;             ///< passed the first-frame token check
    bool eof = false;                ///< peer closed its write side
    bool close_after_flush = false;  ///< protocol violation: answer, close
    bool want_write = false;         ///< EPOLLOUT wanted
    bool reading_paused = false;     ///< EPOLLIN dropped (backpressure/eof)
    bool dead = false;               ///< close at the end of the iteration
    size_t out_off = 0;              ///< flushed prefix of outbuf
    uint32_t armed_events = 0;       ///< last epoll_ctl interest set
    Clock::time_point last_activity;
  };

  /// A handler's result, posted back to the event thread.
  struct Completion {
    uint64_t id = 0;
    std::string response;  ///< newline-terminated
    bool drop = false;     ///< injected serve.tcp.* fault: drop the peer
  };

  void LoopThread();
  void HandleAccept();
  void HandleReadable(Conn& conn);
  void FrameLines(Conn& conn);
  /// Consumes the connection's first frame as the auth handshake when a
  /// token is configured. Returns false when the connection may not
  /// dispatch further (handshake pending or failed).
  bool CheckAuth(Conn& conn);
  void MaybeDispatch(Conn& conn);
  void FlushWrite(Conn& conn);
  void UpdateInterest(Conn& conn);
  /// Marks the connection dead once it has nothing left to do.
  void CloseIfDrained(Conn& conn);
  void CloseDead();
  void DrainMailbox();
  void SweepIdle(Clock::time_point now);
  void PostCompletion(Completion c);
  void WakeLoop();
  void PauseAccept();
  void ResumeAccept();
  size_t LineByteCap() const;

  LineHandler handler_;
  size_t max_request_bytes_ = 0;
  Options options_;
  std::string auth_token_;  ///< resolved (option or env) at Start()
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  bool accept_paused_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<size_t> open_connections_{0};
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> handlers_;

  /// Event-thread-owned connection table, keyed by a monotonically growing
  /// id (never an fd: ids make stale handler completions for a recycled fd
  /// impossible).
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 2;  ///< 0 = listen fd, 1 = wake fd in epoll data

  std::mutex mailbox_mu_;
  std::vector<Completion> mailbox_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace easytime::serve
