#pragma once

/// \file job_manager.h
/// \brief The async lane: long-running OneClickEvaluate jobs submitted via
/// the "evaluate" endpoint. Jobs queue into a bounded FIFO (admission
/// control), run one at a time on a dedicated worker thread, report
/// progress, and can be cancelled while queued or mid-run (the pipeline
/// polls the cancellation flag between (method, dataset) pairs).
///
/// Crash safety: with a checkpoint directory configured, the worker appends
/// each successfully evaluated (method, dataset) record to
/// `<dir>/<job_key>.ckpt` as line-delimited JSON (pipeline::RunRecord).
/// A job resubmitted with the same "job_key" — after a cancel, a crash, or
/// on a fresh server pointed at the same directory — splices the
/// checkpointed records into the run and only evaluates the remainder.
/// Failed pairs are deliberately not checkpointed, so a resume retries
/// them. The checkpoint is deleted when the job completes.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/bounded_queue.h"
#include "common/json.h"
#include "common/result.h"
#include "core/easytime.h"
#include "pipeline/runner.h"

namespace easytime::serve {

/// Lifecycle of an evaluation job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Wire name of a job state ("queued", "running", ...).
const char* JobStateName(JobState s);

/// \brief Owns the evaluation job queue and its worker thread.
class JobManager {
 public:
  struct Options {
    size_t queue_capacity = 8;   ///< max queued-but-not-started jobs
    std::string checkpoint_dir;  ///< "" disables checkpointing
    size_t checkpoint_every = 1; ///< flush after this many new records
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;   ///< admission-control rejections (queue full)
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t resumed_records = 0;  ///< pairs spliced in from checkpoints
  };

  /// \param system the facade evaluations run against (not owned)
  JobManager(core::EasyTime* system, Options options);
  JobManager(core::EasyTime* system, size_t queue_capacity);
  ~JobManager();

  /// Starts the worker thread (idempotent).
  void Start();

  /// \brief Drains the lane: the in-flight job (if any) runs to completion,
  /// jobs still queued are marked cancelled, and the worker exits. Further
  /// submissions are rejected.
  void Shutdown();

  /// \brief Admits an evaluation job. Returns its id, or Unavailable when
  /// the queue is at capacity or the lane is shut down. The config may
  /// carry a "job_key" string (checkpoint identity; derived from the
  /// canonical config when absent) and a "deadline_ms" budget for the run.
  easytime::Result<uint64_t> Submit(easytime::Json config);

  /// \brief Job status as a response payload: {"job", "state", "done",
  /// "total", and — depending on state — "result" or "error"}.
  easytime::Result<easytime::Json> StatusJson(uint64_t job_id) const;

  /// \brief Requests cancellation. A queued job is cancelled immediately; a
  /// running job stops at its next pipeline checkpoint. Terminal jobs are
  /// left as they are (the returned payload shows the final state).
  easytime::Result<easytime::Json> Cancel(uint64_t job_id);

  Stats stats() const;
  size_t queue_depth() const { return pending_.size(); }

  /// Checkpoint identity of an evaluate config: its "job_key" string, or a
  /// hash of the canonicalized config. Exposed for tests.
  static std::string JobKey(const easytime::Json& config);

  /// The checkpoint path for \p job_key ("" when checkpointing is off).
  std::string CheckpointPath(const std::string& job_key) const;

 private:
  struct Job {
    uint64_t id = 0;
    easytime::Json config;
    std::string job_key;
    JobState state = JobState::kQueued;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    std::atomic<size_t> done{0};
    std::atomic<size_t> total{0};
    easytime::Json result;  ///< summary, set when state == kDone
    Status error;           ///< set when state == kFailed
  };

  void WorkerLoop();
  void RunJob(Job* job, const std::shared_ptr<std::atomic<bool>>& cancel);
  easytime::Json JobJsonLocked(const Job& job) const;

  /// Loads a checkpoint file into a resume map (missing file -> empty map).
  std::map<std::string, pipeline::RunRecord> LoadCheckpoint(
      const std::string& path, size_t* loaded) const;

  core::EasyTime* system_;
  Options options_;
  BoundedQueue<uint64_t> pending_;
  mutable std::mutex mu_;  ///< guards jobs_, next_id_, stats_, state fields
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  Stats stats_;
  std::thread worker_;
  bool started_ = false;
  std::atomic<bool> shutdown_{false};
};

}  // namespace easytime::serve
