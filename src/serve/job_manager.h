#pragma once

/// \file job_manager.h
/// \brief The async lane: long-running jobs submitted via the "evaluate"
/// endpoint (OneClickEvaluate suites) and the "backtest" endpoint
/// (rolling-origin backtests, eval/backtest.h) — the job config's "type"
/// field picks the runner. Jobs queue into a bounded FIFO (admission
/// control), run on a pool of worker threads (Options::concurrency, PR 4 —
/// previously a single worker), report progress, and can be cancelled while
/// queued or mid-run (the pipeline polls the cancellation flag between
/// (method, dataset) pairs; the backtest between origins).
///
/// Thread budgeting: each running job caps its pipeline at
/// Options::thread_budget concurrently evaluating threads, counting the
/// worker driving the run (0 derives cores / concurrency), so N concurrent
/// evaluations split the machine instead of each spinning up a full-width
/// pool and oversubscribing it N-fold.
///
/// Crash safety: with a checkpoint directory configured, each job_key owns
/// a crash-safe record store at `<dir>/<job_key>.ckpt/` (storage engine,
/// DESIGN.md §9). A worker appends each successfully evaluated
/// (method, dataset) record — or, for backtest jobs, each finished
/// forecast origin — to its WAL and periodically compacts
/// (snapshot + covered-segment deletion, Options::compact_every) so very
/// large suites don't grow an unbounded log. A job resubmitted with the
/// same "job_key" — after a cancel, a crash, or on a fresh server pointed
/// at the same directory — recovers snapshot + WAL tail (torn tails are
/// truncated to the valid prefix), splices the records into the run, and
/// only evaluates the remainder. Failed pairs are deliberately not
/// checkpointed, so a resume retries them. Pre-store line-JSON checkpoint
/// files are migrated transparently on first open. When a job completes, a
/// terminal marker is appended and the checkpoint removed; Start() sweeps
/// orphaned checkpoints whose persisted status is terminal (a crash
/// between marker and removal). Two admitted jobs with the same job_key
/// never run concurrently (they share a checkpoint store): the second
/// waits for the first to reach a terminal state, preserving FIFO order
/// within the key.

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/json.h"
#include "common/result.h"
#include "core/easytime.h"
#include "eval/backtest.h"
#include "pipeline/runner.h"
#include "store/record_store.h"

namespace easytime::serve {

/// Lifecycle of an evaluation job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Wire name of a job state ("queued", "running", ...).
const char* JobStateName(JobState s);

/// \brief Owns the evaluation job queue and its worker pool.
class JobManager {
 public:
  struct Options {
    size_t queue_capacity = 8;   ///< max queued-but-not-started jobs
    std::string checkpoint_dir;  ///< "" disables checkpointing
    size_t checkpoint_every = 1; ///< flush after this many new records
    size_t concurrency = 1;      ///< worker threads (jobs run at once)
    /// Per-job pipeline thread cap. 0 splits the machine evenly:
    /// max(1, cores / concurrency), where "cores" honors the
    /// EASYTIME_NUM_THREADS override.
    size_t thread_budget = 0;
    /// Compact a job's checkpoint store (snapshot + delete covered WAL
    /// segments) after this many appended records; 0 disables compaction.
    size_t compact_every = 64;
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;   ///< admission-control rejections (queue full)
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t resumed_records = 0;  ///< pairs spliced in from checkpoints
    uint64_t peak_running = 0;     ///< max jobs observed running at once
    uint64_t swept_checkpoints = 0;  ///< orphaned terminal checkpoints removed
  };

  /// \param system the facade evaluations run against (not owned)
  JobManager(core::EasyTime* system, Options options);
  JobManager(core::EasyTime* system, size_t queue_capacity);
  ~JobManager();

  /// Starts the worker pool (idempotent).
  void Start();

  /// \brief Drains the lane: in-flight jobs (if any) run to completion,
  /// jobs still queued are marked cancelled, and the workers exit. Further
  /// submissions are rejected.
  void Shutdown();

  /// \brief Admits an evaluation job. Returns its id, or Unavailable when
  /// the queue is at capacity or the lane is shut down. The config may
  /// carry a "job_key" string (checkpoint identity; derived from the
  /// canonical config when absent) and a "deadline_ms" budget for the run.
  easytime::Result<uint64_t> Submit(easytime::Json config);

  /// \brief Job status as a response payload: {"job", "state", "done",
  /// "total", and — depending on state — "result" or "error"}.
  easytime::Result<easytime::Json> StatusJson(uint64_t job_id) const;

  /// \brief Requests cancellation. A queued job is cancelled immediately; a
  /// running job stops at its next pipeline checkpoint. Terminal jobs are
  /// left as they are (the returned payload shows the final state).
  easytime::Result<easytime::Json> Cancel(uint64_t job_id);

  Stats stats() const;
  size_t queue_depth() const { return pending_.size(); }

  /// Jobs currently in kRunning (approximate for readers).
  size_t running_jobs() const;

  /// \brief The pipeline thread cap each running job gets
  /// (RunHooks::max_threads). Exposed for tests and capacity planning.
  size_t PerJobThreadBudget() const;

  /// Checkpoint identity of an evaluate config: its "job_key" string, or a
  /// hash of the canonicalized config. Exposed for tests.
  static std::string JobKey(const easytime::Json& config);

  /// The checkpoint store directory for \p job_key ("" when checkpointing
  /// is off).
  std::string CheckpointPath(const std::string& job_key) const;

 private:
  struct Job {
    uint64_t id = 0;
    easytime::Json config;
    std::string job_key;
    JobState state = JobState::kQueued;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    std::atomic<size_t> done{0};
    std::atomic<size_t> total{0};
    easytime::Json result;  ///< summary, set when state == kDone
    Status error;           ///< set when state == kFailed
  };

  void WorkerLoop();
  /// Runs \p id, then any jobs parked behind it on the same job_key.
  void ProcessJob(uint64_t id);
  void RunJob(Job* job, const std::shared_ptr<std::atomic<bool>>& cancel);
  /// The "evaluate" runner (OneClickEvaluate + RunRecord checkpoints).
  void RunEvaluateJob(Job* job,
                      const std::shared_ptr<std::atomic<bool>>& cancel);
  /// The "backtest" runner: rolling-origin backtest over one stored
  /// dataset, streaming each finished OriginEval into the checkpoint store
  /// (keyed by ladder index) so a killed job resumes mid-ladder.
  void RunBacktestJob(Job* job,
                      const std::shared_ptr<std::atomic<bool>>& cancel);
  easytime::Json JobJsonLocked(const Job& job) const;
  /// Next job parked behind \p key, if any (caller holds mu_).
  std::optional<uint64_t> PopWaitingLocked(const std::string& key);

  /// \brief Opens (recovering or creating) the checkpoint store at \p path
  /// and fills \p completed with the recovered records. A pre-store
  /// line-JSON checkpoint file at the same path is migrated into the new
  /// format first.
  easytime::Result<std::unique_ptr<store::RecordStore>> OpenCheckpoint(
      const std::string& path,
      std::map<std::string, pipeline::RunRecord>* completed,
      size_t* loaded) const;

  /// Backtest counterpart of OpenCheckpoint: records are OriginEval JSON
  /// keyed by ladder index; snapshots hold {"origins": [...]}.
  easytime::Result<std::unique_ptr<store::RecordStore>> OpenBacktestCheckpoint(
      const std::string& path, std::map<size_t, eval::OriginEval>* completed,
      size_t* loaded) const;

  /// Removes checkpoint stores whose persisted status is terminal — a
  /// completed job crashed between its terminal marker and the checkpoint
  /// removal (caller holds mu_).
  void SweepOrphanedCheckpointsLocked();

  core::EasyTime* system_;
  Options options_;
  BoundedQueue<uint64_t> pending_;
  mutable std::mutex mu_;  ///< guards jobs_, next_id_, stats_, state fields
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  Stats stats_;
  size_t num_running_ = 0;
  /// Keys with a job in kRunning; a popped job whose key is active parks in
  /// waiting_ and is resumed by the worker that finishes the active job.
  std::set<std::string> active_keys_;
  std::map<std::string, std::deque<uint64_t>> waiting_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  std::atomic<bool> shutdown_{false};
};

}  // namespace easytime::serve
