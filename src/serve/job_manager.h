#pragma once

/// \file job_manager.h
/// \brief The async lane: long-running OneClickEvaluate jobs submitted via
/// the "evaluate" endpoint. Jobs queue into a bounded FIFO (admission
/// control), run one at a time on a dedicated worker thread, report
/// progress, and can be cancelled while queued or mid-run (the pipeline
/// polls the cancellation flag between (method, dataset) pairs).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/bounded_queue.h"
#include "common/json.h"
#include "common/result.h"
#include "core/easytime.h"

namespace easytime::serve {

/// Lifecycle of an evaluation job.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Wire name of a job state ("queued", "running", ...).
const char* JobStateName(JobState s);

/// \brief Owns the evaluation job queue and its worker thread.
class JobManager {
 public:
  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;   ///< admission-control rejections (queue full)
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
  };

  /// \param system the facade evaluations run against (not owned)
  /// \param queue_capacity max queued-but-not-started jobs
  JobManager(core::EasyTime* system, size_t queue_capacity);
  ~JobManager();

  /// Starts the worker thread (idempotent).
  void Start();

  /// \brief Drains the lane: the in-flight job (if any) runs to completion,
  /// jobs still queued are marked cancelled, and the worker exits. Further
  /// submissions are rejected.
  void Shutdown();

  /// \brief Admits an evaluation job. Returns its id, or Unavailable when
  /// the queue is at capacity or the lane is shut down.
  easytime::Result<uint64_t> Submit(easytime::Json config);

  /// \brief Job status as a response payload: {"job", "state", "done",
  /// "total", and — depending on state — "result" or "error"}.
  easytime::Result<easytime::Json> StatusJson(uint64_t job_id) const;

  /// \brief Requests cancellation. A queued job is cancelled immediately; a
  /// running job stops at its next pipeline checkpoint. Terminal jobs are
  /// left as they are (the returned payload shows the final state).
  easytime::Result<easytime::Json> Cancel(uint64_t job_id);

  Stats stats() const;
  size_t queue_depth() const { return pending_.size(); }

 private:
  struct Job {
    uint64_t id = 0;
    easytime::Json config;
    JobState state = JobState::kQueued;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    std::atomic<size_t> done{0};
    std::atomic<size_t> total{0};
    easytime::Json result;  ///< summary, set when state == kDone
    Status error;           ///< set when state == kFailed
  };

  void WorkerLoop();
  easytime::Json JobJsonLocked(const Job& job) const;

  core::EasyTime* system_;
  BoundedQueue<uint64_t> pending_;
  mutable std::mutex mu_;  ///< guards jobs_, next_id_, stats_, state fields
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  Stats stats_;
  std::thread worker_;
  bool started_ = false;
  std::atomic<bool> shutdown_{false};
};

}  // namespace easytime::serve
