#pragma once

/// \file server.h
/// \brief ForecastServer — the concurrent request-serving layer on top of
/// the EasyTime facade. Accepts line-delimited JSON requests (see
/// request.h) from in-process clients (HandleLine/Call) and, via
/// serve/tcp_server.h, from a loopback TCP listener.
///
/// Architecture (DESIGN.md §6, §13):
///  - Fast lane: forecast / recommend / ask / sql / append requests claim a
///    per-endpoint weighted queue slot (class over quota with no shared
///    headroom => Unavailable, the admission-control contract; see
///    serve/admission.h); a dispatcher thread routes them to a worker pool
///    through per-class run queues with guaranteed worker shares,
///    micro-batching same-method forecast requests (serve/batcher.h).
///  - Async lane: "evaluate" submits a OneClickEvaluate job, "backtest" a
///    rolling-origin backtest job, to a bounded job queue
///    (serve/job_manager.h); clients poll "job_status" and may "cancel"
///    queued or in-flight jobs.
///  - Control plane: "stats", "job_status", "cancel", "flush_cache" and
///    "ping" execute inline on the calling thread — they must stay
///    responsive even when the lanes are saturated.
///  - Result cache: forecast/recommend responses are cached (LRU + TTL)
///    under the canonical request key, tagged with the dataset they read;
///    a streaming append drops exactly that dataset's entries
///    (fine-grained tag invalidation, serve/cache.h) while "flush_cache"
///    remains the drop-everything escape hatch.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/bounded_queue.h"
#include "common/deadline.h"
#include "common/json.h"
#include "common/overload.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/easytime.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/job_manager.h"
#include "serve/request.h"
#include "serve/retry.h"

namespace easytime::serve {

/// Per-endpoint serving counters.
struct EndpointStats {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t rejected = 0;    ///< admission-control rejections
  uint64_t cache_hits = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

/// \brief The serving layer. Construction is cheap; Start() spins up the
/// dispatcher, worker pool, and job worker. Stop() (also run by the
/// destructor) drains: queued fast-lane requests are answered, the
/// in-flight evaluation job completes, queued evaluation jobs are
/// cancelled, and only then do the threads exit — no response is dropped.
class ForecastServer {
 public:
  struct Options {
    size_t fast_queue_capacity = 128;  ///< queued fast-lane requests
    size_t evaluate_queue_capacity = 8;
    /// Evaluation jobs run at once (JobManager worker pool, PR 4). Each
    /// running job's pipeline is capped to ~cores/evaluate_concurrency
    /// threads so concurrent jobs split the machine instead of
    /// oversubscribing it.
    size_t evaluate_concurrency = 1;
    size_t num_worker_threads = 2;     ///< fast-lane executor pool
    bool enable_batching = true;
    size_t batch_max = 8;
    double batch_wait_ms = 1.0;
    size_t cache_capacity = 256;       ///< 0 disables the result cache
    double cache_ttl_seconds = 300.0;
    size_t max_request_bytes = 1 << 16;
    size_t default_horizon = 24;
    size_t max_horizon = 512;
    size_t max_inline_values = 100000; ///< cap on uploaded "values" arrays
    /// Directory for evaluation-job checkpoints ("" disables them). With a
    /// directory set, a job whose server died mid-run resumes from the last
    /// checkpoint when resubmitted with the same "job_key" (see
    /// serve/job_manager.h).
    std::string checkpoint_dir;
    /// When the facade opened warm from a persisted knowledge store,
    /// Start() pre-computes recommend responses for every stored dataset
    /// and seeds the result cache, so first requests after a restart hit
    /// warm entries. No effect on a cold (freshly seeded) system.
    bool warm_cache = true;
    /// Per-endpoint admission weights (queue-slot reservations and worker
    /// guarantees, see serve/admission.h). Endpoints absent from the map
    /// get weight 1.
    std::map<std::string, double> endpoint_weights = {
        {"forecast", 4.0}, {"recommend", 2.0}, {"ask", 2.0}, {"sql", 2.0},
        {"append", 1.0}};
    /// Brownout hysteresis as fractions of fast_queue_capacity: enter
    /// degraded mode at/above the first, leave at/below the second.
    double brownout_enter_fraction = 0.75;
    double brownout_exit_fraction = 0.25;
  };

  /// \param system a fully created facade; not owned. The repository must
  /// not be mutated while the server is running.
  ForecastServer(core::EasyTime* system, Options options);
  explicit ForecastServer(core::EasyTime* system);
  ~ForecastServer();

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Starts the lanes (idempotent).
  void Start();

  /// Graceful shutdown with drain (idempotent, terminal).
  void Stop();

  bool running() const { return running_.load(); }

  /// \brief The in-process client: one request line in, one response line
  /// out (no trailing newline). Never throws; protocol errors come back as
  /// error responses.
  std::string HandleLine(const std::string& line);

  /// Typed in-process client: dispatches and unwraps the response envelope,
  /// returning the "result" payload or the error status.
  easytime::Result<easytime::Json> Call(const std::string& endpoint,
                                        const easytime::Json& params);

  /// \brief Call with retry: transient Unavailable failures (full queues,
  /// draining server) back off exponentially with jitter and try again;
  /// permanent failures return immediately.
  easytime::Result<easytime::Json> CallWithRetry(
      const std::string& endpoint, const easytime::Json& params,
      const RetryPolicy& policy = RetryPolicy());

  /// The stats payload (same shape the "stats" endpoint returns).
  easytime::Json StatsJson() const;

  /// A registered control-plane extension: params in, result payload out.
  using ControlFn = std::function<easytime::Result<easytime::Json>(
      const easytime::Json& params)>;

  /// \brief Registers \p name as an inline control-plane endpoint (served
  /// like ping/stats: immediately, never queued or shed — the cluster
  /// worker's replication plane hangs off this). Must be called before
  /// Start(); built-in endpoint names cannot be overridden because the
  /// built-ins are checked first.
  void RegisterControlEndpoint(const std::string& name, ControlFn fn);

  core::EasyTime* system() { return system_; }
  const Options& options() const { return options_; }

 private:
  /// Full request lifecycle: route, admit, execute, envelope.
  easytime::Json Dispatch(Request req);

  /// \brief Runs a fast-lane endpoint to completion (worker-pool context).
  /// The request's remaining deadline is forwarded to endpoints that can
  /// honor it mid-flight (the "sql" table functions check it between group
  /// fits); the queue-level expiry check already happened by this point.
  easytime::Result<easytime::Json> ExecuteFast(
      const Request& req,
      const easytime::Deadline& deadline = easytime::Deadline());

  easytime::Result<easytime::Json> ExecuteForecast(
      const easytime::Json& params,
      const easytime::Deadline& deadline = easytime::Deadline()) const;
  easytime::Result<easytime::Json> ExecuteRecommend(
      const easytime::Json& params) const;

  /// \brief Streaming ingestion: durably appends observations to a stored
  /// dataset via the facade, then drops exactly that dataset's cache
  /// entries (tag invalidation) — other datasets' entries stay hot.
  easytime::Result<easytime::Json> ExecuteAppend(const easytime::Json& params);

  /// Degraded recommend path: methods ranked by mean MAE over every
  /// benchmark result (dataset-agnostic), used when the classifier fails.
  easytime::Result<ensemble::Recommendation> GlobalAverageRanking(
      size_t k) const;

  /// Resolves the series a forecast/recommend request targets: either a
  /// repository dataset ("dataset") or inline values ("values").
  easytime::Result<std::vector<double>> ResolveSeries(
      const easytime::Json& params, std::string* source_name) const;

  void DispatchLoop();
  void ExecuteSingle(FastTask task);
  void ExecuteBatch(std::vector<FastTask> batch);
  /// Fulfills one task from an endpoint result, recording stats + cache.
  void Fulfill(FastTask& task, const easytime::Result<easytime::Json>& result,
               bool from_batch, size_t batch_size, double seconds);

  void RecordStats(const std::string& endpoint, bool ok, bool rejected,
                   bool cache_hit, double seconds);

  /// Pre-populates the recommend cache from the restored knowledge base
  /// (Start()-time, before the server accepts traffic).
  void WarmCache();

  static bool IsCacheable(const std::string& endpoint);
  static std::string BatchKey(const Request& req);
  /// Cache tags for a request: the "dataset" it reads, when it names one
  /// (inline-values requests are untagged — nothing ever mutates them).
  static std::vector<std::string> CacheTags(const easytime::Json& params);

  core::EasyTime* system_;
  Options options_;
  /// Control-plane extensions (RegisterControlEndpoint). Written only
  /// before Start(), read by Dispatch — no lock by contract.
  std::map<std::string, ControlFn> control_endpoints_;
  ResultCache cache_;
  JobManager jobs_;
  BoundedQueue<FastTask> fast_queue_;
  std::unique_ptr<MicroBatcher> batcher_;
  std::unique_ptr<ThreadPool> pool_;
  /// Per-endpoint admission quotas + weighted worker scheduling. Requests
  /// claim a queue slot in Dispatch (shed = Unavailable) and release it in
  /// Fulfill; the dispatcher enqueues admitted work here instead of blocking
  /// on a pool permit, so one endpoint's burst cannot head-of-line-block the
  /// others (serve/admission.h).
  std::unique_ptr<AdmissionController> admission_;
  std::thread dispatcher_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopped_{false};  ///< Stop() is terminal

  /// QoS counters surfaced by StatsJson.
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> degraded_responses_{0};

  mutable std::mutex stats_mu_;
  std::map<std::string, EndpointStats> endpoint_stats_;
};

}  // namespace easytime::serve
