#include "sql/table.h"

#include "common/string_util.h"

namespace easytime::sql {

int Table::ColumnIndex(const std::string& name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) == lower) return static_cast<int>(i);
  }
  return -1;
}

easytime::Status Table::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "INSERT into '" + name_ + "': expected " +
        std::to_string(columns_.size()) + " values, got " +
        std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Value& v = row[i];
    if (v.is_null()) continue;
    switch (columns_[i].type) {
      case DataType::kInteger:
        if (!v.is_integer()) {
          return Status::TypeError("column '" + columns_[i].name +
                                   "' expects INTEGER, got " +
                                   DataTypeName(v.type()));
        }
        break;
      case DataType::kReal:
        if (v.is_integer()) {
          v = Value::Real(static_cast<double>(v.AsInteger()));
        } else if (!v.is_real()) {
          return Status::TypeError("column '" + columns_[i].name +
                                   "' expects REAL, got " +
                                   DataTypeName(v.type()));
        }
        break;
      case DataType::kText:
        if (!v.is_text()) {
          return Status::TypeError("column '" + columns_[i].name +
                                   "' expects TEXT, got " +
                                   DataTypeName(v.type()));
        }
        break;
      case DataType::kNull:
        break;
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

easytime::Status Database::CreateTable(const std::string& name,
                                       std::vector<Column> columns) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (ToLower(columns[i].name) == ToLower(columns[j].name)) {
        return Status::InvalidArgument("duplicate column name: " +
                                       columns[i].name);
      }
    }
  }
  order_.push_back(key);
  tables_.emplace(key, Table(name, std::move(columns)));
  return Status::OK();
}

void Database::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  tables_.erase(key);
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (*it == key) {
      order_.erase(it);
      break;
    }
  }
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

easytime::Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return &it->second;
}

easytime::Result<const Table*> Database::GetTable(
    const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& key : order_) out.push_back(tables_.at(key).name());
  return out;
}

std::string Database::DescribeSchema() const {
  std::string out;
  for (const auto& key : order_) {
    const Table& t = tables_.at(key);
    out += t.name() + "(";
    for (size_t i = 0; i < t.columns().size(); ++i) {
      if (i) out += ", ";
      out += t.columns()[i].name;
      out += " ";
      out += DataTypeName(t.columns()[i].type);
    }
    out += ")\n";
  }
  return out;
}

std::string ResultSet::Format() const {
  std::vector<std::vector<std::string>> display;
  display.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& v : row) r.push_back(v.ToDisplay());
    display.push_back(std::move(r));
  }
  return FormatTable(columns, display);
}

}  // namespace easytime::sql
