#pragma once

/// \file lexer.h
/// \brief SQL tokenizer: keywords, identifiers, numeric/string literals, and
/// operators, with source offsets for error messages.

#include <string>
#include <vector>

#include "common/result.h"

namespace easytime::sql {

enum class TokenType {
  kKeyword,     // SELECT, FROM, WHERE, ... (uppercased in `text`)
  kIdentifier,  // table/column names (original case preserved)
  kInteger,
  kReal,
  kString,      // 'quoted' (text without quotes)
  kOperator,    // = != <> < <= > >= + - * / % ( ) , . ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOp(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes SQL text; returns tokens ending with a kEnd sentinel.
easytime::Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if \p word (uppercase) is a reserved SQL keyword.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace easytime::sql
