#pragma once

/// \file executor.h
/// \brief SQL execution: nested-loop joins, predicate filtering, grouping
/// with aggregates, HAVING, ORDER BY, LIMIT/OFFSET. Statements are analyzed
/// (analyzer.h) before execution — ExecuteQuery wires both together, which
/// is the exact verify-then-execute retrieval flow of the paper's Fig. 3.

#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace easytime::sql {

/// Executes a verified SELECT against the database.
easytime::Result<ResultSet> ExecuteSelect(const Database& db,
                                          const SelectStatement& stmt);

/// Executes any statement, mutating the database for CREATE/INSERT.
/// SELECTs return rows; DDL/DML return an empty ResultSet.
easytime::Result<ResultSet> ExecuteStatement(Database* db,
                                             const Statement& stmt);

/// \brief Parse + analyze (verify) + execute in one call. This is the
/// retrieval entry point the Q&A module uses.
easytime::Result<ResultSet> ExecuteQuery(Database* db, const std::string& sql);

}  // namespace easytime::sql
