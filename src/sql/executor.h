#pragma once

/// \file executor.h
/// \brief SQL execution: nested-loop joins, predicate filtering, grouping
/// with aggregates, HAVING, ORDER BY, LIMIT/OFFSET. Statements are analyzed
/// (analyzer.h) before execution — ExecuteQuery wires both together, which
/// is the exact verify-then-execute retrieval flow of the paper's Fig. 3.

#include <string>

#include "common/deadline.h"
#include "common/result.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace easytime::sql {

/// \brief Executes a verified SELECT against the database. The deadline is
/// honored by long-running table-valued functions (TS_FORECAST_BY checks it
/// between group fits); plain row scans ignore it.
easytime::Result<ResultSet> ExecuteSelect(
    const Database& db, const SelectStatement& stmt,
    const easytime::Deadline& deadline = easytime::Deadline());

/// Executes any statement, mutating the database for CREATE/INSERT.
/// SELECTs return rows; DDL/DML return an empty ResultSet.
easytime::Result<ResultSet> ExecuteStatement(
    Database* db, const Statement& stmt,
    const easytime::Deadline& deadline = easytime::Deadline());

/// \brief Parse + analyze (verify) + execute in one call. This is the
/// retrieval entry point the Q&A module uses.
easytime::Result<ResultSet> ExecuteQuery(
    Database* db, const std::string& sql,
    const easytime::Deadline& deadline = easytime::Deadline());

}  // namespace easytime::sql
