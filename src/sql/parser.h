#pragma once

/// \file parser.h
/// \brief Recursive-descent SQL parser producing the AST in ast.h.
/// Supported: SELECT (projections with aliases, DISTINCT, inner JOIN ... ON,
/// WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET), CREATE TABLE, INSERT.

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace easytime::sql {

/// Parses a single SQL statement (trailing ';' allowed).
easytime::Result<Statement> ParseSql(const std::string& sql);

/// Convenience wrapper: parses and requires a SELECT.
easytime::Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace easytime::sql
