#pragma once

/// \file value.h
/// \brief The SQL runtime value: NULL, INTEGER, REAL, or TEXT, with SQL
/// comparison semantics (NULL compares unknown; numeric types compare
/// cross-type).

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace easytime::sql {

/// Column/value type.
enum class DataType { kNull, kInteger, kReal, kText };

/// Name of a DataType ("NULL", "INTEGER", "REAL", "TEXT").
const char* DataTypeName(DataType t);

/// \brief A dynamically typed SQL value.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Integer(int64_t i) { return Value(i); }
  static Value Real(double d) { return Value(d); }
  static Value Text(std::string s) { return Value(std::move(s)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_integer() || is_real(); }

  DataType type() const;

  int64_t AsInteger() const { return std::get<int64_t>(v_); }
  double AsReal() const { return std::get<double>(v_); }
  const std::string& AsText() const { return std::get<std::string>(v_); }

  /// Numeric coercion (integer widened to double); 0 for non-numerics.
  double ToDouble() const;

  /// SQL rendering: NULL, 42, 3.14, 'text'.
  std::string ToString() const;

  /// Plain rendering without text quotes (for result tables).
  std::string ToDisplay() const;

  /// \brief Three-valued comparison: returns <0/0/>0, or an error when the
  /// values are incomparable (text vs number). NULLs order first (used only
  /// by ORDER BY; predicates handle NULL separately).
  easytime::Result<int> Compare(const Value& other) const;

  /// Equality used by GROUP BY keys (NULL == NULL groups together).
  bool GroupEquals(const Value& other) const;

 private:
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace easytime::sql
