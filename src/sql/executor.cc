#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/fault.h"
#include "common/string_util.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/table_function.h"

namespace easytime::sql {

namespace {

/// Flattened schema of the joined row: one entry per column with its source
/// table's effective name.
struct JoinedSchema {
  struct Col {
    std::string qualifier;  ///< effective table name
    std::string name;
    DataType type;
  };
  std::vector<Col> cols;

  easytime::Result<size_t> Resolve(const std::string& qualifier,
                                   const std::string& column) const {
    std::string q = ToLower(qualifier);
    std::string c = ToLower(column);
    int found = -1;
    int count = 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (ToLower(cols[i].name) != c) continue;
      if (!q.empty() && ToLower(cols[i].qualifier) != q) continue;
      found = static_cast<int>(i);
      ++count;
    }
    if (count == 0) {
      return Status::NotFound("unknown column: " +
                              (qualifier.empty() ? column
                                                 : qualifier + "." + column));
    }
    if (count > 1) {
      return Status::InvalidArgument("ambiguous column: " + column);
    }
    return static_cast<size_t>(found);
  }
};

/// Evaluation context: a single joined row, or a group of rows for
/// aggregates (group non-empty => aggregate context; scalar parts evaluate
/// against group->front()).
struct EvalContext {
  const JoinedSchema* schema;
  const Row* row;                       ///< scalar context
  const std::vector<const Row*>* group;  ///< aggregate context (may be null)
};

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_integer()) return v.AsInteger() != 0;
  if (v.is_real()) return v.AsReal() != 0.0;
  return !v.AsText().empty();
}

easytime::Result<Value> Evaluate(const Expr& e, const EvalContext& ctx);

easytime::Result<Value> EvaluateAggregate(const Expr& e,
                                          const EvalContext& ctx) {
  const std::vector<const Row*>* group = ctx.group;
  if (group == nullptr) {
    return Status::Internal("aggregate evaluated outside a group context");
  }
  const std::string& f = e.function;
  bool star = !e.args.empty() && e.args[0]->kind == ExprKind::kStar;

  if (f == "COUNT" && star) {
    return Value::Integer(static_cast<int64_t>(group->size()));
  }

  // Evaluate the argument per row, skipping NULLs (SQL semantics).
  std::vector<Value> vals;
  vals.reserve(group->size());
  for (const Row* row : *group) {
    EvalContext scalar{ctx.schema, row, nullptr};
    EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.args[0], scalar));
    if (!v.is_null()) vals.push_back(std::move(v));
  }
  if (e.distinct_arg) {
    std::vector<Value> uniq;
    for (auto& v : vals) {
      bool dup = false;
      for (const auto& u : uniq) {
        if (u.GroupEquals(v)) {
          dup = true;
          break;
        }
      }
      if (!dup) uniq.push_back(std::move(v));
    }
    vals = std::move(uniq);
  }

  if (f == "COUNT") return Value::Integer(static_cast<int64_t>(vals.size()));
  if (vals.empty()) return Value::Null();

  if (f == "SUM" || f == "AVG") {
    double acc = 0.0;
    for (const auto& v : vals) {
      if (!v.is_numeric()) {
        return Status::TypeError(f + " over non-numeric values");
      }
      acc += v.ToDouble();
    }
    if (f == "AVG") acc /= static_cast<double>(vals.size());
    return Value::Real(acc);
  }
  if (f == "MIN" || f == "MAX") {
    Value best = vals[0];
    for (size_t i = 1; i < vals.size(); ++i) {
      EASYTIME_ASSIGN_OR_RETURN(int cmp, vals[i].Compare(best));
      if ((f == "MIN" && cmp < 0) || (f == "MAX" && cmp > 0)) best = vals[i];
    }
    return best;
  }
  return Status::NotFound("unknown aggregate: " + f);
}

easytime::Result<Value> Evaluate(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      const Row* row = ctx.row;
      if (row == nullptr && ctx.group != nullptr && !ctx.group->empty()) {
        row = ctx.group->front();
      }
      if (row == nullptr) return Status::Internal("no row in context");
      EASYTIME_ASSIGN_OR_RETURN(size_t idx,
                                ctx.schema->Resolve(e.table, e.column));
      return (*row)[idx];
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' cannot be evaluated as a value");
    case ExprKind::kUnary: {
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      if (e.unary_op == UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Integer(Truthy(v) ? 0 : 1);
      }
      if (v.is_null()) return Value::Null();
      if (v.is_integer()) return Value::Integer(-v.AsInteger());
      if (v.is_real()) return Value::Real(-v.AsReal());
      return Status::TypeError("unary '-' on non-numeric value");
    }
    case ExprKind::kBinary: {
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        EASYTIME_ASSIGN_OR_RETURN(Value l, Evaluate(*e.left, ctx));
        bool lt = Truthy(l);
        if (e.binary_op == BinaryOp::kAnd && !lt) return Value::Integer(0);
        if (e.binary_op == BinaryOp::kOr && lt) return Value::Integer(1);
        EASYTIME_ASSIGN_OR_RETURN(Value r, Evaluate(*e.right, ctx));
        return Value::Integer(Truthy(r) ? 1 : 0);
      }
      EASYTIME_ASSIGN_OR_RETURN(Value l, Evaluate(*e.left, ctx));
      EASYTIME_ASSIGN_OR_RETURN(Value r, Evaluate(*e.right, ctx));
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (!l.is_numeric() || !r.is_numeric()) {
            return Status::TypeError("arithmetic on non-numeric values");
          }
          if (l.is_integer() && r.is_integer() &&
              e.binary_op != BinaryOp::kDiv) {
            int64_t a = l.AsInteger(), b = r.AsInteger();
            switch (e.binary_op) {
              case BinaryOp::kAdd: return Value::Integer(a + b);
              case BinaryOp::kSub: return Value::Integer(a - b);
              case BinaryOp::kMul: return Value::Integer(a * b);
              case BinaryOp::kMod:
                if (b == 0) return Status::InvalidArgument("modulo by zero");
                return Value::Integer(a % b);
              default: break;
            }
          }
          double a = l.ToDouble(), b = r.ToDouble();
          switch (e.binary_op) {
            case BinaryOp::kAdd: return Value::Real(a + b);
            case BinaryOp::kSub: return Value::Real(a - b);
            case BinaryOp::kMul: return Value::Real(a * b);
            case BinaryOp::kDiv:
              if (b == 0.0) return Status::InvalidArgument("division by zero");
              return Value::Real(a / b);
            case BinaryOp::kMod:
              if (b == 0.0) return Status::InvalidArgument("modulo by zero");
              return Value::Real(std::fmod(a, b));
            default: break;
          }
          return Status::Internal("unreachable arithmetic");
        }
        default: {
          // Comparisons: NULL operand -> NULL (unknown).
          if (l.is_null() || r.is_null()) return Value::Null();
          EASYTIME_ASSIGN_OR_RETURN(int cmp, l.Compare(r));
          bool result = false;
          switch (e.binary_op) {
            case BinaryOp::kEq: result = cmp == 0; break;
            case BinaryOp::kNe: result = cmp != 0; break;
            case BinaryOp::kLt: result = cmp < 0; break;
            case BinaryOp::kLe: result = cmp <= 0; break;
            case BinaryOp::kGt: result = cmp > 0; break;
            case BinaryOp::kGe: result = cmp >= 0; break;
            default: break;
          }
          return Value::Integer(result ? 1 : 0);
        }
      }
    }
    case ExprKind::kFunction: {
      if (IsAggregateFunction(e.function)) return EvaluateAggregate(e, ctx);
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.args[0], ctx));
      if (v.is_null()) return Value::Null();
      const std::string& f = e.function;
      if (f == "ABS") {
        if (v.is_integer()) return Value::Integer(std::llabs(v.AsInteger()));
        if (v.is_real()) return Value::Real(std::fabs(v.AsReal()));
        return Status::TypeError("ABS on non-numeric value");
      }
      if (f == "ROUND") {
        if (!v.is_numeric()) return Status::TypeError("ROUND on non-numeric");
        return Value::Real(std::round(v.ToDouble()));
      }
      if (f == "LOWER") {
        if (!v.is_text()) return Status::TypeError("LOWER on non-text");
        return Value::Text(ToLower(v.AsText()));
      }
      if (f == "UPPER") {
        if (!v.is_text()) return Status::TypeError("UPPER on non-text");
        return Value::Text(ToUpper(v.AsText()));
      }
      return Status::NotFound("unknown function: " + f);
    }
    case ExprKind::kIsNull: {
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      bool is_null = v.is_null();
      return Value::Integer((e.negated ? !is_null : is_null) ? 1 : 0);
    }
    case ExprKind::kInList: {
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (const auto& item : e.in_list) {
        EASYTIME_ASSIGN_OR_RETURN(Value iv, Evaluate(*item, ctx));
        if (iv.is_null()) continue;
        auto cmp = v.Compare(iv);
        if (cmp.ok() && *cmp == 0) {
          found = true;
          break;
        }
      }
      return Value::Integer((e.negated ? !found : found) ? 1 : 0);
    }
    case ExprKind::kBetween: {
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      EASYTIME_ASSIGN_OR_RETURN(Value lo, Evaluate(*e.between_lo, ctx));
      EASYTIME_ASSIGN_OR_RETURN(Value hi, Evaluate(*e.between_hi, ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      EASYTIME_ASSIGN_OR_RETURN(int c1, v.Compare(lo));
      EASYTIME_ASSIGN_OR_RETURN(int c2, v.Compare(hi));
      bool inside = c1 >= 0 && c2 <= 0;
      return Value::Integer((e.negated ? !inside : inside) ? 1 : 0);
    }
    case ExprKind::kLike: {
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      if (v.is_null()) return Value::Null();
      if (!v.is_text()) return Status::TypeError("LIKE on non-text value");
      bool match = LikeMatch(v.AsText(), e.like_pattern);
      return Value::Integer((e.negated ? !match : match) ? 1 : 0);
    }
  }
  return Status::Internal("unreachable expression kind");
}

/// Builds the joined row set via nested loops + ON predicates. A table
/// function in the FROM clause is materialized here (under the deadline) and
/// scanned like an ordinary table under its effective name.
easytime::Result<std::pair<JoinedSchema, std::vector<Row>>> BuildJoinedRows(
    const Database& db, const SelectStatement& stmt,
    const easytime::Deadline& deadline) {
  JoinedSchema schema;
  Table fn_result;
  const Table* base = nullptr;
  if (stmt.from.fn) {
    EASYTIME_ASSIGN_OR_RETURN(fn_result,
                              ExecuteTableFunction(db, *stmt.from.fn, deadline));
    base = &fn_result;
  } else {
    EASYTIME_ASSIGN_OR_RETURN(base, db.GetTable(stmt.from.table));
  }
  for (const auto& col : base->columns()) {
    schema.cols.push_back({stmt.from.effective_name(), col.name, col.type});
  }
  std::vector<Row> rows = base->rows();

  for (const auto& join : stmt.joins) {
    EASYTIME_ASSIGN_OR_RETURN(const Table* right,
                              db.GetTable(join.table.table));
    JoinedSchema next_schema = schema;
    for (const auto& col : right->columns()) {
      next_schema.cols.push_back(
          {join.table.effective_name(), col.name, col.type});
    }
    std::vector<Row> next_rows;
    for (const auto& lrow : rows) {
      bool matched = false;
      for (const auto& rrow : right->rows()) {
        Row combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        EvalContext ctx{&next_schema, &combined, nullptr};
        EASYTIME_ASSIGN_OR_RETURN(Value cond, Evaluate(*join.on, ctx));
        if (Truthy(cond)) {
          matched = true;
          next_rows.push_back(std::move(combined));
        }
      }
      if (!matched && join.left_outer) {
        Row combined = lrow;
        combined.resize(combined.size() + right->num_columns(),
                        Value::Null());
        next_rows.push_back(std::move(combined));
      }
    }
    schema = std::move(next_schema);
    rows = std::move(next_rows);
  }
  return std::make_pair(std::move(schema), std::move(rows));
}

/// Key for GROUP BY grouping.
struct GroupKey {
  std::vector<Value> values;
  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].GroupEquals(other.values[i])) return false;
    }
    return true;
  }
};

}  // namespace

easytime::Result<ResultSet> ExecuteSelect(const Database& db,
                                          const SelectStatement& stmt,
                                          const easytime::Deadline& deadline) {
  // Chaos hook: the knowledge query core. Both the "sql" endpoint (via
  // ExecuteQuery) and the "ask" endpoint (the QA engine executes its
  // generated SELECT directly) funnel through here, so an armed fault
  // surfaces as a failed query on either path, never a crash.
  EASYTIME_FAULT_POINT("sql.execute");
  EASYTIME_ASSIGN_OR_RETURN(auto joined, BuildJoinedRows(db, stmt, deadline));
  JoinedSchema& schema = joined.first;
  std::vector<Row>& rows = joined.second;

  // WHERE filter.
  if (stmt.where) {
    std::vector<Row> kept;
    for (auto& row : rows) {
      EvalContext ctx{&schema, &row, nullptr};
      EASYTIME_ASSIGN_OR_RETURN(Value cond, Evaluate(*stmt.where, ctx));
      if (Truthy(cond)) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  ResultSet result;

  // Projection setup.
  std::vector<SelectItem> items;
  if (stmt.star_all) {
    for (const auto& col : schema.cols) {
      SelectItem item;
      item.expr = MakeColumnRef(col.qualifier, col.name);
      item.alias = col.name;
      items.push_back(std::move(item));
    }
  } else {
    for (const auto& it : stmt.items) {
      SelectItem copy;
      // Re-parse from SQL to clone the expression tree.
      copy.alias = it.alias;
      copy.expr = nullptr;
      items.push_back(std::move(copy));
    }
  }

  // To avoid deep-cloning expressions we reference stmt.items directly for
  // the non-star case.
  auto item_expr = [&](size_t i) -> const Expr& {
    return stmt.star_all ? *items[i].expr : *stmt.items[i].expr;
  };
  auto item_name = [&](size_t i) -> std::string {
    return stmt.star_all ? items[i].alias : stmt.items[i].OutputName();
  };
  size_t num_items = stmt.star_all ? items.size() : stmt.items.size();
  for (size_t i = 0; i < num_items; ++i) result.columns.push_back(item_name(i));

  bool grouped = !stmt.group_by.empty();
  bool any_aggregate = false;
  if (!stmt.star_all) {
    for (const auto& it : stmt.items) {
      if (it.expr->ContainsAggregate()) any_aggregate = true;
    }
  }
  if (stmt.having && stmt.having->ContainsAggregate()) any_aggregate = true;

  struct OutputRow {
    Row values;
    std::vector<Value> order_keys;
  };
  std::vector<OutputRow> output;

  auto eval_order_keys = [&](const EvalContext& ctx, const Row& projected)
      -> easytime::Result<std::vector<Value>> {
    std::vector<Value> keys;
    for (const auto& key : stmt.order_by) {
      // Alias/output-name reference?
      if (key.expr->kind == ExprKind::kColumnRef && key.expr->table.empty()) {
        int idx = -1;
        for (size_t i = 0; i < result.columns.size(); ++i) {
          if (ToLower(result.columns[i]) == ToLower(key.expr->column)) {
            idx = static_cast<int>(i);
            break;
          }
        }
        if (idx >= 0) {
          keys.push_back(projected[static_cast<size_t>(idx)]);
          continue;
        }
      }
      EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*key.expr, ctx));
      keys.push_back(std::move(v));
    }
    return keys;
  };

  if (grouped || any_aggregate) {
    // Group rows.
    std::vector<GroupKey> keys;
    std::vector<std::vector<const Row*>> groups;
    for (const auto& row : rows) {
      GroupKey key;
      EvalContext ctx{&schema, &row, nullptr};
      for (const auto& g : stmt.group_by) {
        EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*g, ctx));
        key.values.push_back(std::move(v));
      }
      size_t gi = groups.size();
      for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key) {
          gi = i;
          break;
        }
      }
      if (gi == groups.size()) {
        keys.push_back(std::move(key));
        groups.emplace_back();
      }
      groups[gi].push_back(&row);
    }
    // Aggregate-only query over an empty input still yields one group.
    if (groups.empty() && !grouped) {
      groups.emplace_back();
    }

    for (const auto& group : groups) {
      if (group.empty() && grouped) continue;
      EvalContext ctx{&schema, group.empty() ? nullptr : group.front(),
                      &group};
      if (stmt.having) {
        EASYTIME_ASSIGN_OR_RETURN(Value cond, Evaluate(*stmt.having, ctx));
        if (!Truthy(cond)) continue;
      }
      OutputRow out;
      for (size_t i = 0; i < num_items; ++i) {
        EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(item_expr(i), ctx));
        out.values.push_back(std::move(v));
      }
      EASYTIME_ASSIGN_OR_RETURN(out.order_keys,
                                eval_order_keys(ctx, out.values));
      output.push_back(std::move(out));
    }
  } else {
    for (const auto& row : rows) {
      EvalContext ctx{&schema, &row, nullptr};
      OutputRow out;
      for (size_t i = 0; i < num_items; ++i) {
        EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(item_expr(i), ctx));
        out.values.push_back(std::move(v));
      }
      EASYTIME_ASSIGN_OR_RETURN(out.order_keys,
                                eval_order_keys(ctx, out.values));
      output.push_back(std::move(out));
    }
  }

  // DISTINCT.
  if (stmt.distinct) {
    std::vector<OutputRow> uniq;
    for (auto& row : output) {
      bool dup = false;
      for (const auto& u : uniq) {
        bool same = u.values.size() == row.values.size();
        for (size_t i = 0; same && i < u.values.size(); ++i) {
          same = u.values[i].GroupEquals(row.values[i]);
        }
        if (same) {
          dup = true;
          break;
        }
      }
      if (!dup) uniq.push_back(std::move(row));
    }
    output = std::move(uniq);
  }

  // ORDER BY (stable sort, multi-key).
  if (!stmt.order_by.empty()) {
    std::stable_sort(output.begin(), output.end(),
                     [&](const OutputRow& a, const OutputRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         auto cmp = a.order_keys[i].Compare(b.order_keys[i]);
                         int c = cmp.ok() ? *cmp : 0;
                         if (c != 0) {
                           return stmt.order_by[i].ascending ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
  }

  // OFFSET / LIMIT.
  size_t begin = std::min<size_t>(static_cast<size_t>(std::max<int64_t>(
                                      0, stmt.offset)),
                                  output.size());
  size_t end = output.size();
  if (stmt.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(stmt.limit));
  }
  for (size_t i = begin; i < end; ++i) {
    result.rows.push_back(std::move(output[i].values));
  }
  return result;
}

easytime::Result<ResultSet> ExecuteStatement(Database* db,
                                             const Statement& stmt,
                                             const easytime::Deadline& deadline) {
  if (db == nullptr) return Status::InvalidArgument("database must not be null");
  EASYTIME_RETURN_IF_ERROR(AnalyzeStatement(*db, stmt));
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*db, stmt.select, deadline);
    case Statement::Kind::kCreateTable: {
      EASYTIME_RETURN_IF_ERROR(
          db->CreateTable(stmt.create_table.table, stmt.create_table.columns));
      return ResultSet{};
    }
    case Statement::Kind::kInsert: {
      EASYTIME_ASSIGN_OR_RETURN(Table* table, db->GetTable(stmt.insert.table));
      for (const auto& row_exprs : stmt.insert.rows) {
        // Evaluate literal expressions (no row context).
        JoinedSchema empty_schema;
        Row values;
        for (const auto& e : row_exprs) {
          EvalContext ctx{&empty_schema, nullptr, nullptr};
          EASYTIME_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
          values.push_back(std::move(v));
        }
        if (!stmt.insert.columns.empty()) {
          // Reorder into full schema order; unmentioned columns get NULL.
          Row full(table->num_columns(), Value::Null());
          for (size_t i = 0; i < stmt.insert.columns.size(); ++i) {
            int idx = table->ColumnIndex(stmt.insert.columns[i]);
            full[static_cast<size_t>(idx)] = std::move(values[i]);
          }
          values = std::move(full);
        }
        EASYTIME_RETURN_IF_ERROR(table->Insert(std::move(values)));
      }
      return ResultSet{};
    }
  }
  return Status::Internal("unreachable");
}

easytime::Result<ResultSet> ExecuteQuery(Database* db, const std::string& sql,
                                         const easytime::Deadline& deadline) {
  EASYTIME_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return ExecuteStatement(db, stmt, deadline);
}

}  // namespace easytime::sql
