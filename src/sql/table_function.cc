#include "sql/table_function.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

#include "common/fault.h"
#include "common/json.h"
#include "common/overload.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "methods/registry.h"

namespace easytime::sql {

namespace {

constexpr const char* kForecast = "TS_FORECAST";
constexpr const char* kForecastBy = "TS_FORECAST_BY";

/// A fully validated TS_FORECAST[_BY] invocation.
struct ForecastSpec {
  const Table* table = nullptr;
  bool by = false;
  int group_idx = -1;
  int date_idx = -1;
  int value_idx = -1;
  DataType group_type = DataType::kText;
  DataType date_type = DataType::kReal;
  std::string model = "theta";
  size_t horizon = 12;
  double confidence = 0.95;
  size_t period = 0;
};

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) out += ", ";
    out += names[i];
  }
  return out;
}

bool IsNumericColumn(DataType t) {
  return t == DataType::kInteger || t == DataType::kReal;
}

easytime::Result<ForecastSpec> ResolveForecastCall(
    const Database& db, const TableFunctionCall& call) {
  ForecastSpec spec;
  spec.by = call.function == kForecastBy;
  if (!spec.by && call.function != kForecast) {
    return Status::NotFound("unknown table function: " + call.function);
  }

  const size_t want = spec.by ? 4 : 3;
  if (call.positional.size() != want) {
    return Status::InvalidArgument(
        call.function + " takes " + std::to_string(want) +
        " positional arguments (" +
        (spec.by ? "table, group_col, date_col, value_col"
                 : "table, date_col, value_col") +
        "), got " + std::to_string(call.positional.size()));
  }
  EASYTIME_ASSIGN_OR_RETURN(spec.table, db.GetTable(call.positional[0]));

  auto resolve_col = [&](const std::string& name) -> easytime::Result<int> {
    int idx = spec.table->ColumnIndex(name);
    if (idx < 0) {
      return Status::NotFound("column '" + name +
                              "' does not exist in table '" +
                              spec.table->name() + "'");
    }
    return idx;
  };
  size_t p = 1;
  if (spec.by) {
    EASYTIME_ASSIGN_OR_RETURN(spec.group_idx, resolve_col(call.positional[p]));
    spec.group_type =
        spec.table->columns()[static_cast<size_t>(spec.group_idx)].type;
    ++p;
  }
  EASYTIME_ASSIGN_OR_RETURN(spec.date_idx, resolve_col(call.positional[p++]));
  EASYTIME_ASSIGN_OR_RETURN(spec.value_idx, resolve_col(call.positional[p]));
  spec.date_type =
      spec.table->columns()[static_cast<size_t>(spec.date_idx)].type;
  const DataType value_type =
      spec.table->columns()[static_cast<size_t>(spec.value_idx)].type;
  if (!IsNumericColumn(spec.date_type)) {
    return Status::InvalidArgument("date column '" +
                                   call.positional[p - 1] +
                                   "' must be numeric (INTEGER or REAL)");
  }
  if (!IsNumericColumn(value_type)) {
    return Status::InvalidArgument("value column '" + call.positional[p] +
                                   "' must be numeric (INTEGER or REAL)");
  }

  std::vector<std::string> seen;
  for (const auto& arg : call.named) {
    if (std::find(seen.begin(), seen.end(), arg.name) != seen.end()) {
      return Status::InvalidArgument("duplicate argument '" + arg.name +
                                     "' to " + call.function);
    }
    seen.push_back(arg.name);
    if (arg.name == "model") {
      if (!arg.value.is_text()) {
        return Status::InvalidArgument("model must be a string literal");
      }
      spec.model = arg.value.AsText();
    } else if (arg.name == "horizon") {
      if (!arg.value.is_integer() || arg.value.AsInteger() < 1) {
        return Status::InvalidArgument("horizon must be an integer >= 1");
      }
      if (arg.value.AsInteger() > 100000) {
        return Status::InvalidArgument("horizon must be <= 100000");
      }
      spec.horizon = static_cast<size_t>(arg.value.AsInteger());
    } else if (arg.name == "confidence") {
      if (!arg.value.is_numeric()) {
        return Status::InvalidArgument("confidence must be numeric");
      }
      double c = arg.value.ToDouble();
      if (!(c > 0.0 && c < 1.0)) {
        return Status::InvalidArgument(
            "confidence must lie strictly between 0 and 1");
      }
      spec.confidence = c;
    } else if (arg.name == "period") {
      if (!arg.value.is_integer() || arg.value.AsInteger() < 0) {
        return Status::InvalidArgument("period must be an integer >= 0");
      }
      spec.period = static_cast<size_t>(arg.value.AsInteger());
    } else {
      return Status::InvalidArgument(
          "unknown argument '" + arg.name + "' to " + call.function +
          " (expected model, horizon, confidence, period)");
    }
  }

  const auto& registry = methods::MethodRegistry::Global();
  if (!registry.Contains(spec.model)) {
    return Status::InvalidArgument("unknown model '" + spec.model +
                                   "'; registered methods: " +
                                   JoinNames(registry.Names()));
  }
  return spec;
}

std::vector<Column> OutputSchema(const ForecastSpec& spec,
                                 const std::string& group_col_name) {
  std::vector<Column> cols;
  if (spec.by) cols.push_back({group_col_name, spec.group_type});
  cols.push_back({"forecast_step", DataType::kInteger});
  cols.push_back({"forecast_timestamp", spec.date_type});
  cols.push_back({"point_forecast", DataType::kReal});
  cols.push_back({"lower", DataType::kReal});
  cols.push_back({"upper", DataType::kReal});
  cols.push_back({"model_name", DataType::kText});
  cols.push_back({"fit_time_ms", DataType::kReal});
  return cols;
}

/// Total order over group keys of one column's type; mixed types (possible
/// only through widened REAL columns) fall back to the rendered form.
bool ValueLess(const Value& a, const Value& b) {
  auto cmp = a.Compare(b);
  if (cmp.ok()) return *cmp < 0;
  return a.ToString() < b.ToString();
}

struct GroupSeries {
  Value key;                                  ///< null for TS_FORECAST
  std::vector<std::pair<Value, double>> pts;  ///< (date, value)
};

/// Median observed spacing between successive sorted integer dates; never
/// smaller than 1 so forecast timestamps stay strictly increasing even on
/// duplicate dates.
int64_t MedianIntervalInt(const std::vector<std::pair<Value, double>>& pts) {
  std::vector<int64_t> iv;
  iv.reserve(pts.size());
  for (size_t i = 1; i < pts.size(); ++i) {
    iv.push_back(pts[i].first.AsInteger() - pts[i - 1].first.AsInteger());
  }
  if (iv.empty()) return 1;
  std::sort(iv.begin(), iv.end());
  int64_t m = iv[iv.size() / 2];
  return m > 0 ? m : 1;
}

double MedianIntervalReal(const std::vector<std::pair<Value, double>>& pts) {
  std::vector<double> iv;
  iv.reserve(pts.size());
  for (size_t i = 1; i < pts.size(); ++i) {
    iv.push_back(pts[i].first.ToDouble() - pts[i - 1].first.ToDouble());
  }
  if (iv.empty()) return 1.0;
  std::sort(iv.begin(), iv.end());
  double m = iv[iv.size() / 2];
  return m > 0.0 && std::isfinite(m) ? m : 1.0;
}

std::string GroupLabel(const ForecastSpec& spec, const Value& key) {
  return spec.by ? "group " + key.ToString() + ": " : "";
}

/// Models cheap enough to keep running while the serving layer is in
/// brownout; everything else (trees, deep nets, grid searches) downgrades
/// to plain exponential smoothing.
bool IsBrownoutSafeModel(const std::string& name) {
  return name == "naive" || name == "seasonal_naive" || name == "drift" ||
         name == "mean" || name == "window_average" || name == "ses" ||
         name == "holt" || name == "holt_damped" || name == "theta";
}

}  // namespace

bool IsTableFunction(const std::string& upper_name) {
  return upper_name == kForecast || upper_name == kForecastBy;
}

easytime::Result<std::vector<Column>> AnalyzeTableFunction(
    const Database& db, const TableFunctionCall& call) {
  EASYTIME_ASSIGN_OR_RETURN(ForecastSpec spec, ResolveForecastCall(db, call));
  std::string group_name =
      spec.by ? spec.table->columns()[static_cast<size_t>(spec.group_idx)].name
              : "";
  return OutputSchema(spec, group_name);
}

easytime::Result<Table> ExecuteTableFunction(
    const Database& db, const TableFunctionCall& call,
    const easytime::Deadline& deadline) {
  EASYTIME_ASSIGN_OR_RETURN(ForecastSpec spec, ResolveForecastCall(db, call));
  if (deadline.expired()) {
    return Status::DeadlineExceeded(call.function +
                                    ": deadline expired before execution");
  }

  // Partition rows into per-group series, deterministically ordered by key.
  // NULL group keys, dates, or values are skipped (SQL aggregate semantics).
  std::map<Value, GroupSeries, decltype(&ValueLess)> grouped(&ValueLess);
  for (const Row& row : spec.table->rows()) {
    const Value& date = row[static_cast<size_t>(spec.date_idx)];
    const Value& val = row[static_cast<size_t>(spec.value_idx)];
    if (date.is_null() || val.is_null()) continue;
    Value key = Value::Null();
    if (spec.by) {
      key = row[static_cast<size_t>(spec.group_idx)];
      if (key.is_null()) continue;
    }
    auto it = grouped.find(key);
    if (it == grouped.end()) {
      it = grouped.emplace(key, GroupSeries{key, {}}).first;
    }
    it->second.pts.emplace_back(date, val.ToDouble());
  }
  if (grouped.empty()) {
    return Status::InvalidArgument(call.function + ": table '" +
                                   spec.table->name() +
                                   "' has no usable (non-NULL) rows");
  }

  std::vector<GroupSeries> groups;
  groups.reserve(grouped.size());
  for (auto& [key, g] : grouped) {
    std::stable_sort(
        g.pts.begin(), g.pts.end(),
        [](const auto& a, const auto& b) { return ValueLess(a.first, b.first); });
    groups.push_back(std::move(g));
  }

  // One slot per group: ParallelFor writes only its own slot, so the result
  // is bit-identical no matter how many workers the pool runs (only
  // fit_time_ms, a wall-clock measurement, varies).
  struct Slot {
    std::vector<Row> rows;
    Status status;
    bool skipped = false;
  };
  std::vector<Slot> slots(groups.size());
  std::atomic<bool> deadline_hit{false};

  // Brownout degradation: sampled once per statement so every group fits
  // the same model. The model_name output column records what actually ran,
  // so downgraded results are self-describing.
  std::string model = spec.model;
  if (easytime::GlobalOverload().brownout() && !IsBrownoutSafeModel(model)) {
    model = "ses";
  }

  auto fit_group = [&](size_t gi) {
    Slot& slot = slots[gi];
    const GroupSeries& g = groups[gi];
    if (deadline.expired()) {
      deadline_hit.store(true, std::memory_order_relaxed);
      slot.skipped = true;
      return;
    }
    // Chaos hook: one injected fault/delay per group fit, the unit of work
    // a slow model would actually stall on.
    if (FaultRegistry::AnyArmed()) {
      Status fs = FaultRegistry::Global().Check("sql.forecast");
      if (!fs.ok()) {
        slot.status = std::move(fs);
        return;
      }
    }

    std::vector<double> train;
    train.reserve(g.pts.size());
    for (const auto& [date, value] : g.pts) train.push_back(value);

    auto forecaster = methods::MethodRegistry::Global().Create(
        model, easytime::Json::Object());
    if (!forecaster.ok()) {
      slot.status = forecaster.status();
      return;
    }
    methods::FitContext ctx;
    ctx.period_hint = spec.period;
    ctx.horizon = spec.horizon;
    // The statement deadline reaches into each model's fit loop, so a slow
    // group aborts mid-fit instead of finishing long after the caller gave
    // up (the between-group check above only helps before a fit starts).
    ctx.deadline = deadline;
    Stopwatch watch;
    auto fc = (*forecaster)->ForecastWithIntervals(train, ctx, spec.confidence);
    const double fit_ms = watch.ElapsedSeconds() * 1000.0;
    if (!fc.ok()) {
      slot.status = Status(fc.status().code(), GroupLabel(spec, g.key) +
                                                   fc.status().message());
      return;
    }

    const std::string model_name = (*forecaster)->name();
    const bool int_dates = spec.date_type == DataType::kInteger;
    const int64_t istep = int_dates ? MedianIntervalInt(g.pts) : 0;
    const double rstep = int_dates ? 0.0 : MedianIntervalReal(g.pts);
    const Value& last_date = g.pts.back().first;

    slot.rows.reserve(spec.horizon);
    for (size_t h = 0; h < spec.horizon; ++h) {
      double point = fc->point[h];
      double lower = fc->lower[h];
      double upper = fc->upper[h];
      if (!std::isfinite(point)) {
        slot.status = Status::Internal(GroupLabel(spec, g.key) + "model '" +
                                       model_name +
                                       "' produced a non-finite forecast");
        return;
      }
      // Clamp pathological bounds so lower <= point <= upper always holds.
      if (!std::isfinite(lower)) lower = point;
      if (!std::isfinite(upper)) upper = point;
      lower = std::min(lower, point);
      upper = std::max(upper, point);

      Row row;
      if (spec.by) row.push_back(g.key);
      row.push_back(Value::Integer(static_cast<int64_t>(h + 1)));
      if (int_dates) {
        row.push_back(Value::Integer(last_date.AsInteger() +
                                     istep * static_cast<int64_t>(h + 1)));
      } else {
        row.push_back(
            Value::Real(last_date.ToDouble() + rstep * double(h + 1)));
      }
      row.push_back(Value::Real(point));
      row.push_back(Value::Real(lower));
      row.push_back(Value::Real(upper));
      row.push_back(Value::Text(model_name));
      row.push_back(Value::Real(fit_ms));
      slot.rows.push_back(std::move(row));
    }
  };

  if (groups.size() > 1) {
    GlobalThreadPool().ParallelFor(groups.size(), fit_group);
  } else {
    fit_group(0);
  }

  for (const Slot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
  }
  size_t done = 0;
  for (const Slot& slot : slots) {
    if (!slot.skipped) ++done;
  }
  if (deadline_hit.load(std::memory_order_relaxed) || deadline.expired()) {
    return Status::DeadlineExceeded(
        call.function + ": deadline expired after " + std::to_string(done) +
        " of " + std::to_string(groups.size()) + " group fits");
  }

  std::string group_name =
      spec.by ? spec.table->columns()[static_cast<size_t>(spec.group_idx)].name
              : "";
  Table out(ToLower(call.function), OutputSchema(spec, group_name));
  for (Slot& slot : slots) {
    for (Row& row : slot.rows) {
      EASYTIME_RETURN_IF_ERROR(out.Insert(std::move(row)));
    }
  }
  return out;
}

}  // namespace easytime::sql
