#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace easytime::sql {

bool IsSqlKeyword(const std::string& upper_word) {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
      "LIMIT",  "OFFSET", "AS",     "AND",    "OR",     "NOT",    "IN",
      "LIKE",   "BETWEEN", "IS",    "NULL",   "ASC",    "DESC",   "JOIN",
      "INNER",  "LEFT",   "ON",     "DISTINCT", "COUNT", "SUM",   "AVG",
      "MIN",    "MAX",    "CREATE", "TABLE",  "INSERT", "INTO",   "VALUES",
      "INTEGER", "REAL",  "TEXT",   "TRUE",   "FALSE",  "ABS",    "ROUND",
      "LOWER",  "UPPER",
  };
  return kKeywords->count(upper_word) > 0;
}

easytime::Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        out.push_back({TokenType::kKeyword, upper, start});
      } else {
        out.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_real = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_real = true;
        ++i;
      }
      out.push_back({is_real ? TokenType::kReal : TokenType::kInteger,
                     sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text += sql[i++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Operators.
    auto two = [&](const char* op) {
      if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
        out.push_back({TokenType::kOperator, op, start});
        i += 2;
        return true;
      }
      return false;
    };
    // ":=" is the named-argument marker in table-valued function calls
    // (TS_FORECAST(..., horizon := 12)); a bare ':' stays an error.
    if (two("!=") || two("<>") || two("<=") || two(">=") || two(":=")) continue;
    if (std::string("=<>+-*/%(),.;").find(c) != std::string::npos) {
      out.push_back({TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace easytime::sql
