#include "sql/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace easytime::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  easytime::Result<Statement> ParseStatement() {
    Statement stmt;
    if (Peek().IsKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      EASYTIME_ASSIGN_OR_RETURN(stmt.select, ParseSelectStatement());
    } else if (Peek().IsKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      EASYTIME_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
    } else if (Peek().IsKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      EASYTIME_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else {
      return Err("expected SELECT, CREATE, or INSERT");
    }
    if (Peek().IsOp(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeOp(const char* op) {
    if (Peek().IsOp(op)) {
      Advance();
      return true;
    }
    return false;
  }
  easytime::Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset) +
                              (Peek().text.empty() ? ""
                                                   : " ('" + Peek().text + "')"));
  }
  easytime::Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) return Err(std::string("expected ") + kw);
    return Status::OK();
  }
  easytime::Status ExpectOp(const char* op) {
    if (!ConsumeOp(op)) return Err(std::string("expected '") + op + "'");
    return Status::OK();
  }
  easytime::Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) return Err("expected identifier");
    return Advance().text;
  }

  // ---- statements

  easytime::Result<SelectStatement> ParseSelectStatement() {
    SelectStatement s;
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (ConsumeKeyword("DISTINCT")) s.distinct = true;

    if (Peek().IsOp("*") &&
        !(Peek(1).IsOp(",") )) {  // bare star projection
      Advance();
      s.star_all = true;
    } else {
      while (true) {
        SelectItem item;
        EASYTIME_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          EASYTIME_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier &&
                   !Peek().IsKeyword("FROM")) {
          item.alias = Advance().text;
        }
        s.items.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
    }

    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    EASYTIME_ASSIGN_OR_RETURN(s.from, ParseTableRef());

    while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER") ||
           Peek().IsKeyword("LEFT")) {
      JoinClause join;
      if (ConsumeKeyword("LEFT")) {
        join.left_outer = true;
      } else {
        ConsumeKeyword("INNER");
      }
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      EASYTIME_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      if (join.table.fn) {
        return Err("table functions are not supported in JOIN");
      }
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("ON"));
      EASYTIME_ASSIGN_OR_RETURN(join.on, ParseExpr());
      s.joins.push_back(std::move(join));
    }

    if (ConsumeKeyword("WHERE")) {
      EASYTIME_ASSIGN_OR_RETURN(s.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        EASYTIME_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        s.group_by.push_back(std::move(e));
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      EASYTIME_ASSIGN_OR_RETURN(s.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        EASYTIME_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          key.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        s.order_by.push_back(std::move(key));
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) return Err("expected LIMIT count");
      s.limit = std::atoll(Advance().text.c_str());
    }
    if (ConsumeKeyword("OFFSET")) {
      if (Peek().type != TokenType::kInteger) {
        return Err("expected OFFSET count");
      }
      s.offset = std::atoll(Advance().text.c_str());
    }
    return s;
  }

  easytime::Result<TableRef> ParseTableRef() {
    TableRef ref;
    EASYTIME_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (Peek().IsOp("(")) {
      EASYTIME_ASSIGN_OR_RETURN(ref.fn, ParseTableFunctionCall(ref.table));
      ref.table = ref.fn->function;
    }
    if (ConsumeKeyword("AS")) {
      EASYTIME_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  /// Parses "(args...)" after a FROM-clause identifier: positional
  /// identifiers first, then name := literal options. The call is validated
  /// against the known table functions by the analyzer, not here.
  easytime::Result<std::unique_ptr<TableFunctionCall>> ParseTableFunctionCall(
      const std::string& name) {
    auto call = std::make_unique<TableFunctionCall>();
    call->function = ToUpper(name);
    EASYTIME_RETURN_IF_ERROR(ExpectOp("("));
    if (ConsumeOp(")")) return call;
    while (true) {
      if (Peek().type == TokenType::kIdentifier && Peek(1).IsOp(":=")) {
        TableFunctionCall::NamedArg arg;
        arg.name = ToLower(Advance().text);
        Advance();  // ":="
        EASYTIME_ASSIGN_OR_RETURN(arg.value, ParseLiteralValue());
        call->named.push_back(std::move(arg));
      } else {
        if (!call->named.empty()) {
          return Err("positional argument after named argument");
        }
        EASYTIME_ASSIGN_OR_RETURN(std::string pos, ExpectIdentifier());
        call->positional.push_back(std::move(pos));
      }
      if (ConsumeOp(")")) break;
      EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
    }
    return call;
  }

  /// A literal for a named table-function argument: string, number
  /// (optionally negated), TRUE/FALSE, or NULL.
  easytime::Result<Value> ParseLiteralValue() {
    bool negative = ConsumeOp("-");
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        int64_t v = std::atoll(Advance().text.c_str());
        return Value::Integer(negative ? -v : v);
      }
      case TokenType::kReal: {
        double v = std::atof(Advance().text.c_str());
        return Value::Real(negative ? -v : v);
      }
      case TokenType::kString:
        if (negative) return Err("cannot negate a string literal");
        return Value::Text(Advance().text);
      case TokenType::kKeyword:
        if (!negative) {
          if (tok.text == "NULL") {
            Advance();
            return Value::Null();
          }
          if (tok.text == "TRUE") {
            Advance();
            return Value::Integer(1);
          }
          if (tok.text == "FALSE") {
            Advance();
            return Value::Integer(0);
          }
        }
        [[fallthrough]];
      default:
        return Err("named table-function arguments must be literals");
    }
  }

  easytime::Result<CreateTableStatement> ParseCreateTable() {
    CreateTableStatement c;
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    EASYTIME_ASSIGN_OR_RETURN(c.table, ExpectIdentifier());
    EASYTIME_RETURN_IF_ERROR(ExpectOp("("));
    while (true) {
      Column col;
      EASYTIME_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      if (ConsumeKeyword("INTEGER")) {
        col.type = DataType::kInteger;
      } else if (ConsumeKeyword("REAL")) {
        col.type = DataType::kReal;
      } else if (ConsumeKeyword("TEXT")) {
        col.type = DataType::kText;
      } else {
        return Err("expected column type (INTEGER, REAL, TEXT)");
      }
      c.columns.push_back(std::move(col));
      if (ConsumeOp(")")) break;
      EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
    }
    return c;
  }

  easytime::Result<InsertStatement> ParseInsert() {
    InsertStatement ins;
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    EASYTIME_ASSIGN_OR_RETURN(ins.table, ExpectIdentifier());
    if (ConsumeOp("(")) {
      while (true) {
        EASYTIME_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        ins.columns.push_back(std::move(col));
        if (ConsumeOp(")")) break;
        EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
      }
    }
    EASYTIME_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      EASYTIME_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<ExprPtr> row;
      while (true) {
        EASYTIME_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (ConsumeOp(")")) break;
        EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
      }
      ins.rows.push_back(std::move(row));
      if (!ConsumeOp(",")) break;
    }
    return ins;
  }

  // ---- expressions (precedence climbing)

  easytime::Result<ExprPtr> ParseExpr() { return ParseOr(); }

  easytime::Result<ExprPtr> ParseOr() {
    EASYTIME_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  easytime::Result<ExprPtr> ParseAnd() {
    EASYTIME_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  easytime::Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->left = std::move(inner);
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  easytime::Result<ExprPtr> ParseComparison() {
    EASYTIME_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE") ||
         Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      negated = true;
    }

    if (ConsumeKeyword("IS")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->left = std::move(left);
      if (ConsumeKeyword("NOT")) e->negated = true;
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return ExprPtr(std::move(e));
    }
    if (ConsumeKeyword("IN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->left = std::move(left);
      e->negated = negated;
      EASYTIME_RETURN_IF_ERROR(ExpectOp("("));
      while (true) {
        EASYTIME_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        e->in_list.push_back(std::move(item));
        if (ConsumeOp(")")) break;
        EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
      }
      return ExprPtr(std::move(e));
    }
    if (ConsumeKeyword("LIKE")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->left = std::move(left);
      e->negated = negated;
      if (Peek().type != TokenType::kString) {
        return Err("LIKE expects a string pattern");
      }
      e->like_pattern = Advance().text;
      return ExprPtr(std::move(e));
    }
    if (ConsumeKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->left = std::move(left);
      e->negated = negated;
      EASYTIME_ASSIGN_OR_RETURN(e->between_lo, ParseAdditive());
      EASYTIME_RETURN_IF_ERROR(ExpectKeyword("AND"));
      EASYTIME_ASSIGN_OR_RETURN(e->between_hi, ParseAdditive());
      return ExprPtr(std::move(e));
    }
    if (negated) return Err("dangling NOT");

    struct OpMap {
      const char* text;
      BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<>", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (Peek().IsOp(text)) {
        Advance();
        EASYTIME_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  easytime::Result<ExprPtr> ParseAdditive() {
    EASYTIME_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().IsOp("+") || Peek().IsOp("-")) {
      BinaryOp op = Peek().IsOp("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  easytime::Result<ExprPtr> ParseMultiplicative() {
    EASYTIME_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().IsOp("*") || Peek().IsOp("/") || Peek().IsOp("%")) {
      BinaryOp op = Peek().IsOp("*")
                        ? BinaryOp::kMul
                        : (Peek().IsOp("/") ? BinaryOp::kDiv : BinaryOp::kMod);
      Advance();
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  easytime::Result<ExprPtr> ParseUnary() {
    if (ConsumeOp("-")) {
      EASYTIME_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNeg;
      e->left = std::move(inner);
      return ExprPtr(std::move(e));
    }
    return ParsePrimary();
  }

  easytime::Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        Advance();
        return MakeLiteral(Value::Integer(std::atoll(tok.text.c_str())));
      }
      case TokenType::kReal: {
        Advance();
        return MakeLiteral(Value::Real(std::atof(tok.text.c_str())));
      }
      case TokenType::kString: {
        Advance();
        return MakeLiteral(Value::Text(tok.text));
      }
      case TokenType::kKeyword: {
        if (tok.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (tok.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Integer(1));
        }
        if (tok.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Integer(0));
        }
        // Function-style keywords: COUNT/SUM/AVG/MIN/MAX/ABS/ROUND/...
        if (Peek(1).IsOp("(")) {
          std::string fname = tok.text;
          Advance();
          Advance();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunction;
          e->function = fname;
          if (ConsumeKeyword("DISTINCT")) e->distinct_arg = true;
          if (ConsumeOp(")")) return ExprPtr(std::move(e));
          while (true) {
            if (Peek().IsOp("*")) {
              Advance();
              auto star = std::make_unique<Expr>();
              star->kind = ExprKind::kStar;
              e->args.push_back(std::move(star));
            } else {
              EASYTIME_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
            }
            if (ConsumeOp(")")) break;
            EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
          }
          return ExprPtr(std::move(e));
        }
        // Function-style keywords without a call are plain column names
        // (TS_FORECAST emits "lower"/"upper" bound columns, and MIN/MAX etc.
        // are common enough as column names to deserve the same treatment).
        if (tok.text == "COUNT" || tok.text == "SUM" || tok.text == "AVG" ||
            tok.text == "MIN" || tok.text == "MAX" || tok.text == "ABS" ||
            tok.text == "ROUND" || tok.text == "LOWER" ||
            tok.text == "UPPER") {
          Advance();
          return MakeColumnRef("", ToLower(tok.text));
        }
        return Err("unexpected keyword '" + tok.text + "' in expression");
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        if (ConsumeOp(".")) {
          EASYTIME_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          return MakeColumnRef(first, col);
        }
        // Identifier-style function call: parsed here, validated by the
        // analyzer (which rejects unknown function names).
        if (Peek().IsOp("(")) {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunction;
          e->function = ToUpper(first);
          if (ConsumeOp(")")) return ExprPtr(std::move(e));
          while (true) {
            EASYTIME_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
            if (ConsumeOp(")")) break;
            EASYTIME_RETURN_IF_ERROR(ExpectOp(","));
          }
          return ExprPtr(std::move(e));
        }
        return MakeColumnRef("", first);
      }
      case TokenType::kOperator: {
        if (tok.IsOp("(")) {
          Advance();
          EASYTIME_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          EASYTIME_RETURN_IF_ERROR(ExpectOp(")"));
          return inner;
        }
        return Err("unexpected token '" + tok.text + "'");
      }
      case TokenType::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

easytime::Result<Statement> ParseSql(const std::string& sql) {
  EASYTIME_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseStatement();
}

easytime::Result<SelectStatement> ParseSelect(const std::string& sql) {
  EASYTIME_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace easytime::sql
