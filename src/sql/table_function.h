#pragma once

/// \file table_function.h
/// \brief Table-valued functions in the FROM clause — the SQL-native
/// forecasting surface. TS_FORECAST(table, date_col, value_col, ...) fits a
/// registered method on one series and returns a table of
/// (forecast_step, forecast_timestamp, point_forecast, lower, upper,
/// model_name, fit_time_ms); TS_FORECAST_BY(table, group_col, date_col,
/// value_col, ...) prepends the group column and fans the per-group fits
/// out on the global thread pool with deterministic (group, step) ordering.
/// Named options: model := 'theta', horizon := 12, confidence := 0.95,
/// period := 0.
///
/// Forecast timestamps continue the training axis by the *median* observed
/// interval (robust to irregular spacing and the occasional gap); interval
/// bounds come from Forecaster::ForecastWithIntervals.

#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace easytime::sql {

/// True if \p upper_name names a table-valued function.
bool IsTableFunction(const std::string& upper_name);

/// \brief Validates the call against the database — table and columns
/// exist, date/value columns numeric, options well-formed, model registered
/// — and returns the output schema. Unknown model names come back as
/// InvalidArgument listing every registered method.
easytime::Result<std::vector<Column>> AnalyzeTableFunction(
    const Database& db, const TableFunctionCall& call);

/// \brief Executes the call, materializing the forecast table. Group fits
/// run on ThreadPool::ParallelFor into pre-sized slots, so results are
/// bit-identical across thread counts; rows are ordered by (group, step).
/// The deadline is checked before each group fit ("sql.forecast" is the
/// fault point): once it expires, remaining groups are skipped and the call
/// returns DeadlineExceeded.
easytime::Result<Table> ExecuteTableFunction(const Database& db,
                                             const TableFunctionCall& call,
                                             const easytime::Deadline& deadline);

}  // namespace easytime::sql
