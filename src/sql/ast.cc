#include "sql/ast.h"

#include "common/string_util.h"

namespace easytime::sql {

bool IsAggregateFunction(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

namespace {

const char* BinaryOpSql(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNeg ? "-" : "NOT ") + left->ToSql();
    case ExprKind::kBinary:
      return "(" + left->ToSql() + " " + BinaryOpSql(binary_op) + " " +
             right->ToSql() + ")";
    case ExprKind::kFunction: {
      std::string out = function + "(";
      if (distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToSql();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return left->ToSql() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kInList: {
      std::string out = left->ToSql() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i) out += ", ";
        out += in_list[i]->ToSql();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return left->ToSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             between_lo->ToSql() + " AND " + between_hi->ToSql();
    case ExprKind::kLike:
      return left->ToSql() + (negated ? " NOT LIKE '" : " LIKE '") +
             like_pattern + "'";
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kFunction && IsAggregateFunction(function)) {
    return true;
  }
  if (left && left->ContainsAggregate()) return true;
  if (right && right->ContainsAggregate()) return true;
  if (between_lo && between_lo->ContainsAggregate()) return true;
  if (between_hi && between_hi->ContainsAggregate()) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  for (const auto& e : in_list) {
    if (e->ContainsAggregate()) return true;
  }
  return false;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (expr->kind == ExprKind::kColumnRef) return expr->column;
  return expr->ToSql();
}

std::string TableFunctionCall::ToSql() const {
  std::string out = function + "(";
  bool first = true;
  for (const auto& p : positional) {
    if (!first) out += ", ";
    first = false;
    out += p;
  }
  for (const auto& arg : named) {
    if (!first) out += ", ";
    first = false;
    out += arg.name + " := " + arg.value.ToString();
  }
  return out + ")";
}

std::string SelectStatement::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (star_all) {
    out += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) out += ", ";
      out += items[i].expr->ToSql();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM " + (from.fn ? from.fn->ToSql() : from.table);
  if (!from.alias.empty()) out += " AS " + from.alias;
  for (const auto& j : joins) {
    out += j.left_outer ? " LEFT JOIN " : " JOIN ";
    out += j.table.table;
    if (!j.table.alias.empty()) out += " AS " + j.table.alias;
    out += " ON " + j.on->ToSql();
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->ToSql();
      out += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  if (offset > 0) out += " OFFSET " + std::to_string(offset);
  return out;
}

}  // namespace easytime::sql
