#include "sql/analyzer.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "sql/table_function.h"

namespace easytime::sql {

namespace {

/// Pseudo-type lattice used during verification. kAny arises from NULL
/// literals and unifies with everything.
enum class SemType { kAny, kNumeric, kText, kBool };

const char* SemTypeName(SemType t) {
  switch (t) {
    case SemType::kAny: return "NULL";
    case SemType::kNumeric: return "numeric";
    case SemType::kText: return "text";
    case SemType::kBool: return "boolean";
  }
  return "?";
}

SemType FromDataType(DataType t) {
  switch (t) {
    case DataType::kInteger:
    case DataType::kReal: return SemType::kNumeric;
    case DataType::kText: return SemType::kText;
    case DataType::kNull: return SemType::kAny;
  }
  return SemType::kAny;
}

bool Compatible(SemType a, SemType b) {
  return a == SemType::kAny || b == SemType::kAny || a == b;
}

/// Scope: effective table name -> table, in FROM/JOIN order.
struct Scope {
  std::vector<std::pair<std::string, const Table*>> tables;

  easytime::Result<SemType> Resolve(const std::string& qualifier,
                                    const std::string& column) const {
    if (!qualifier.empty()) {
      std::string q = ToLower(qualifier);
      for (const auto& [name, table] : tables) {
        if (ToLower(name) == q) {
          int idx = table->ColumnIndex(column);
          if (idx < 0) {
            return Status::NotFound("column '" + column +
                                    "' does not exist in table '" + name + "'");
          }
          return FromDataType(table->columns()[static_cast<size_t>(idx)].type);
        }
      }
      return Status::NotFound("unknown table or alias: " + qualifier);
    }
    int found = 0;
    SemType type = SemType::kAny;
    for (const auto& [name, table] : tables) {
      int idx = table->ColumnIndex(column);
      if (idx >= 0) {
        ++found;
        type = FromDataType(table->columns()[static_cast<size_t>(idx)].type);
      }
    }
    if (found == 0) return Status::NotFound("unknown column: " + column);
    if (found > 1) {
      return Status::InvalidArgument("ambiguous column: " + column +
                                     " (qualify with a table name)");
    }
    return type;
  }
};

class SelectAnalyzer {
 public:
  SelectAnalyzer(const Database& db, const SelectStatement& stmt)
      : db_(db), stmt_(stmt) {}

  easytime::Status Run() {
    EASYTIME_RETURN_IF_ERROR(BuildScope());

    // JOIN conditions: boolean, no aggregates.
    for (const auto& join : stmt_.joins) {
      EASYTIME_RETURN_IF_ERROR(
          CheckBooleanNoAggregate(*join.on, "JOIN ... ON"));
    }
    // WHERE: boolean, no aggregates (SQL requires HAVING for those).
    if (stmt_.where) {
      EASYTIME_RETURN_IF_ERROR(CheckBooleanNoAggregate(*stmt_.where, "WHERE"));
    }
    // GROUP BY expressions: no aggregates.
    for (const auto& g : stmt_.group_by) {
      if (g->ContainsAggregate()) {
        return Status::InvalidArgument(
            "aggregate functions are not allowed in GROUP BY");
      }
      EASYTIME_ASSIGN_OR_RETURN(SemType t, TypeOf(*g, /*in_aggregate=*/false));
      (void)t;
    }

    bool grouped = !stmt_.group_by.empty();
    bool any_aggregate = false;
    for (const auto& item : stmt_.items) {
      if (item.expr->ContainsAggregate()) any_aggregate = true;
    }
    if (stmt_.having && !grouped && !any_aggregate) {
      return Status::InvalidArgument(
          "HAVING requires GROUP BY or aggregates in the select list");
    }

    // Select items typecheck; under grouping, bare columns must be grouped.
    for (const auto& item : stmt_.items) {
      EASYTIME_ASSIGN_OR_RETURN(SemType t,
                                TypeOf(*item.expr, /*in_aggregate=*/false));
      (void)t;
      if ((grouped || any_aggregate) && !item.expr->ContainsAggregate()) {
        if (!IsGroupedExpr(*item.expr)) {
          return Status::InvalidArgument(
              "column '" + item.expr->ToSql() +
              "' must appear in GROUP BY or inside an aggregate");
        }
      }
    }
    if (stmt_.star_all && (grouped || any_aggregate)) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY / aggregates");
    }

    if (stmt_.having) {
      EASYTIME_ASSIGN_OR_RETURN(SemType t,
                                TypeOf(*stmt_.having, /*in_aggregate=*/false));
      if (!Compatible(t, SemType::kBool) && t != SemType::kNumeric) {
        return Status::TypeError("HAVING must be a boolean predicate");
      }
    }
    for (const auto& key : stmt_.order_by) {
      // ORDER BY may reference output aliases; skip resolution for those.
      if (key.expr->kind == ExprKind::kColumnRef && key.expr->table.empty()) {
        bool is_alias = false;
        for (const auto& item : stmt_.items) {
          if (ToLower(item.OutputName()) == ToLower(key.expr->column)) {
            is_alias = true;
            break;
          }
        }
        if (is_alias) continue;
      }
      EASYTIME_ASSIGN_OR_RETURN(SemType t,
                                TypeOf(*key.expr, /*in_aggregate=*/false));
      (void)t;
    }
    if (stmt_.limit < -1) {
      return Status::InvalidArgument("LIMIT must be non-negative");
    }
    return Status::OK();
  }

 private:
  easytime::Status BuildScope() {
    auto add_table = [&](const TableRef& ref) -> easytime::Status {
      EASYTIME_ASSIGN_OR_RETURN(const Table* t, db_.GetTable(ref.table));
      std::string eff = ref.effective_name();
      for (const auto& [name, _] : scope_.tables) {
        if (ToLower(name) == ToLower(eff)) {
          return Status::InvalidArgument("duplicate table name/alias: " + eff);
        }
      }
      scope_.tables.emplace_back(eff, t);
      return Status::OK();
    };
    if (stmt_.from.fn) {
      // A table-valued function in FROM: validate the call and bring a
      // schema-only synthetic table into scope under the effective name.
      EASYTIME_ASSIGN_OR_RETURN(std::vector<Column> cols,
                                AnalyzeTableFunction(db_, *stmt_.from.fn));
      fn_table_ = Table(stmt_.from.effective_name(), std::move(cols));
      scope_.tables.emplace_back(stmt_.from.effective_name(), &fn_table_);
    } else {
      EASYTIME_RETURN_IF_ERROR(add_table(stmt_.from));
    }
    for (const auto& join : stmt_.joins) {
      EASYTIME_RETURN_IF_ERROR(add_table(join.table));
    }
    return Status::OK();
  }

  easytime::Status CheckBooleanNoAggregate(const Expr& e, const char* where) {
    if (e.ContainsAggregate()) {
      return Status::InvalidArgument(
          std::string("aggregate functions are not allowed in ") + where);
    }
    EASYTIME_ASSIGN_OR_RETURN(SemType t, TypeOf(e, /*in_aggregate=*/false));
    if (t != SemType::kBool && t != SemType::kNumeric && t != SemType::kAny) {
      return Status::TypeError(std::string(where) +
                               " must be a boolean predicate");
    }
    return Status::OK();
  }

  bool IsGroupedExpr(const Expr& e) const {
    // Literals are trivially grouped.
    if (e.kind == ExprKind::kLiteral) return true;
    std::string sql = e.ToSql();
    for (const auto& g : stmt_.group_by) {
      if (ToLower(g->ToSql()) == ToLower(sql)) return true;
    }
    // A compound of grouped parts is grouped.
    switch (e.kind) {
      case ExprKind::kBinary:
        return IsGroupedExpr(*e.left) && IsGroupedExpr(*e.right);
      case ExprKind::kUnary:
        return IsGroupedExpr(*e.left);
      case ExprKind::kFunction: {
        if (IsAggregateFunction(e.function)) return true;
        for (const auto& a : e.args) {
          if (!IsGroupedExpr(*a)) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  easytime::Result<SemType> TypeOf(const Expr& e, bool in_aggregate) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return FromDataType(e.literal.type());
      case ExprKind::kColumnRef:
        return scope_.Resolve(e.table, e.column);
      case ExprKind::kStar:
        return Status::InvalidArgument(
            "'*' is only valid in COUNT(*) or SELECT *");
      case ExprKind::kUnary: {
        EASYTIME_ASSIGN_OR_RETURN(SemType t, TypeOf(*e.left, in_aggregate));
        if (e.unary_op == UnaryOp::kNeg) {
          if (!Compatible(t, SemType::kNumeric)) {
            return Status::TypeError("unary '-' needs a numeric operand");
          }
          return SemType::kNumeric;
        }
        return SemType::kBool;
      }
      case ExprKind::kBinary: {
        EASYTIME_ASSIGN_OR_RETURN(SemType lt, TypeOf(*e.left, in_aggregate));
        EASYTIME_ASSIGN_OR_RETURN(SemType rt, TypeOf(*e.right, in_aggregate));
        switch (e.binary_op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
          case BinaryOp::kMod:
            if (!Compatible(lt, SemType::kNumeric) ||
                !Compatible(rt, SemType::kNumeric)) {
              return Status::TypeError("arithmetic on non-numeric operands");
            }
            return SemType::kNumeric;
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            return SemType::kBool;
          default:
            if (!Compatible(lt, rt)) {
              return Status::TypeError(
                  "cannot compare " + std::string(SemTypeName(lt)) + " with " +
                  SemTypeName(rt));
            }
            return SemType::kBool;
        }
      }
      case ExprKind::kFunction: {
        const std::string& f = e.function;
        if (IsAggregateFunction(f)) {
          if (in_aggregate) {
            return Status::InvalidArgument("nested aggregate: " + f);
          }
          if (e.args.size() != 1) {
            return Status::InvalidArgument(f + " takes exactly one argument");
          }
          if (e.args[0]->kind == ExprKind::kStar) {
            if (f != "COUNT") {
              return Status::InvalidArgument("'*' only valid in COUNT(*)");
            }
            return SemType::kNumeric;
          }
          EASYTIME_ASSIGN_OR_RETURN(SemType at,
                                    TypeOf(*e.args[0], /*in_aggregate=*/true));
          if ((f == "SUM" || f == "AVG") &&
              !Compatible(at, SemType::kNumeric)) {
            return Status::TypeError(f + " needs a numeric argument");
          }
          if (f == "COUNT") return SemType::kNumeric;
          if (f == "MIN" || f == "MAX") return at;
          return SemType::kNumeric;
        }
        if (f == "ABS" || f == "ROUND") {
          if (e.args.size() != 1) {
            return Status::InvalidArgument(f + " takes exactly one argument");
          }
          EASYTIME_ASSIGN_OR_RETURN(SemType at, TypeOf(*e.args[0], in_aggregate));
          if (!Compatible(at, SemType::kNumeric)) {
            return Status::TypeError(f + " needs a numeric argument");
          }
          return SemType::kNumeric;
        }
        if (f == "LOWER" || f == "UPPER") {
          if (e.args.size() != 1) {
            return Status::InvalidArgument(f + " takes exactly one argument");
          }
          EASYTIME_ASSIGN_OR_RETURN(SemType at, TypeOf(*e.args[0], in_aggregate));
          if (!Compatible(at, SemType::kText)) {
            return Status::TypeError(f + " needs a text argument");
          }
          return SemType::kText;
        }
        return Status::NotFound("unknown function: " + f);
      }
      case ExprKind::kIsNull:
        EASYTIME_RETURN_IF_ERROR(TypeOf(*e.left, in_aggregate).status());
        return SemType::kBool;
      case ExprKind::kInList: {
        EASYTIME_ASSIGN_OR_RETURN(SemType lt, TypeOf(*e.left, in_aggregate));
        for (const auto& item : e.in_list) {
          EASYTIME_ASSIGN_OR_RETURN(SemType it, TypeOf(*item, in_aggregate));
          if (!Compatible(lt, it)) {
            return Status::TypeError("IN list element type mismatch");
          }
        }
        return SemType::kBool;
      }
      case ExprKind::kBetween: {
        EASYTIME_ASSIGN_OR_RETURN(SemType lt, TypeOf(*e.left, in_aggregate));
        EASYTIME_ASSIGN_OR_RETURN(SemType lo, TypeOf(*e.between_lo, in_aggregate));
        EASYTIME_ASSIGN_OR_RETURN(SemType hi, TypeOf(*e.between_hi, in_aggregate));
        if (!Compatible(lt, lo) || !Compatible(lt, hi)) {
          return Status::TypeError("BETWEEN bound type mismatch");
        }
        return SemType::kBool;
      }
      case ExprKind::kLike: {
        EASYTIME_ASSIGN_OR_RETURN(SemType lt, TypeOf(*e.left, in_aggregate));
        if (!Compatible(lt, SemType::kText)) {
          return Status::TypeError("LIKE needs a text operand");
        }
        return SemType::kBool;
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  const Database& db_;
  const SelectStatement& stmt_;
  Scope scope_;
  Table fn_table_;  ///< synthetic schema when FROM is a table function
};

}  // namespace

easytime::Status AnalyzeSelect(const Database& db,
                               const SelectStatement& stmt) {
  return SelectAnalyzer(db, stmt).Run();
}

easytime::Status AnalyzeStatement(const Database& db, const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return AnalyzeSelect(db, stmt.select);
    case Statement::Kind::kCreateTable:
      if (db.HasTable(stmt.create_table.table)) {
        return Status::AlreadyExists("table already exists: " +
                                     stmt.create_table.table);
      }
      return Status::OK();
    case Statement::Kind::kInsert: {
      EASYTIME_ASSIGN_OR_RETURN(const Table* t,
                                db.GetTable(stmt.insert.table));
      size_t expected = stmt.insert.columns.empty()
                            ? t->num_columns()
                            : stmt.insert.columns.size();
      for (const auto& col : stmt.insert.columns) {
        if (t->ColumnIndex(col) < 0) {
          return Status::NotFound("column '" + col +
                                  "' does not exist in table '" +
                                  stmt.insert.table + "'");
        }
      }
      for (const auto& row : stmt.insert.rows) {
        if (row.size() != expected) {
          return Status::InvalidArgument(
              "INSERT row has " + std::to_string(row.size()) +
              " values, expected " + std::to_string(expected));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace easytime::sql
