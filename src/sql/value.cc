#include "sql/value.h"

#include <cmath>

#include "common/string_util.h"

namespace easytime::sql {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInteger: return "INTEGER";
    case DataType::kReal: return "REAL";
    case DataType::kText: return "TEXT";
  }
  return "?";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_integer()) return DataType::kInteger;
  if (is_real()) return DataType::kReal;
  return DataType::kText;
}

double Value::ToDouble() const {
  if (is_integer()) return static_cast<double>(AsInteger());
  if (is_real()) return AsReal();
  return 0.0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(AsInteger());
  if (is_real()) return FormatDouble(AsReal(), 6);
  std::string out = "'";
  for (char c : AsText()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  return out + "'";
}

std::string Value::ToDisplay() const {
  if (is_text()) return AsText();
  if (is_real()) return FormatDouble(AsReal(), 4);
  return ToString();
}

easytime::Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    double a = ToDouble(), b = other.ToDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_text() && other.is_text()) {
    int c = AsText().compare(other.AsText());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return Status::TypeError("cannot compare " +
                           std::string(DataTypeName(type())) + " with " +
                           DataTypeName(other.type()));
}

bool Value::GroupEquals(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  auto c = Compare(other);
  return c.ok() && *c == 0;
}

}  // namespace easytime::sql
