#pragma once

/// \file analyzer.h
/// \brief Semantic verification of SQL before execution — the explicit
/// "verified for correctness before they are executed" step in the paper's
/// Q&A workflow (Fig. 3). Checks table/column resolution, type
/// compatibility, aggregate placement, and GROUP BY validity, returning a
/// descriptive error instead of executing a bad query.

#include "common/result.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace easytime::sql {

/// \brief Verifies a SELECT against a database schema. Returns OK when the
/// statement is executable; otherwise a ParseError/TypeError/NotFound status
/// describing the first problem found.
easytime::Status AnalyzeSelect(const Database& db, const SelectStatement& stmt);

/// Verifies any statement (SELECT analysis; CREATE/INSERT schema checks).
easytime::Status AnalyzeStatement(const Database& db, const Statement& stmt);

}  // namespace easytime::sql
