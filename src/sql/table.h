#pragma once

/// \file table.h
/// \brief In-memory relational storage: typed columns, row vectors, and a
/// Database of named tables. This is the store behind the benchmark
/// knowledge base the Q&A module queries.

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace easytime::sql {

/// Column schema.
struct Column {
  std::string name;
  DataType type = DataType::kText;
};

/// One row of values (aligned with the table's columns).
using Row = std::vector<Value>;

/// \brief A named table with a fixed schema.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by (case-insensitive) name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// \brief Appends a row after validating arity and types. Integer values
  /// are accepted into REAL columns (widened); NULL is accepted everywhere.
  easytime::Status Insert(Row row);

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

/// \brief A collection of named tables.
class Database {
 public:
  Database() = default;

  /// Creates an empty table; fails if the name exists.
  easytime::Status CreateTable(const std::string& name,
                               std::vector<Column> columns);

  /// Drops a table if present.
  void DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  easytime::Result<Table*> GetTable(const std::string& name);
  easytime::Result<const Table*> GetTable(const std::string& name) const;

  /// Table names in creation order.
  std::vector<std::string> TableNames() const;

  /// \brief Schema summary ("table(col TYPE, ...)" per line) — the metadata
  /// handed to the NL2SQL layer as "pre-stored benchmark metadata".
  std::string DescribeSchema() const;

 private:
  std::map<std::string, Table> tables_;
  std::vector<std::string> order_;
};

/// \brief A query result: named columns + rows, renderable as a table (the
/// Q&A module's "benchmark result data table" output).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  std::string Format() const;
};

}  // namespace easytime::sql
