#pragma once

/// \file ast.h
/// \brief SQL abstract syntax tree: expressions and the SELECT / CREATE
/// TABLE / INSERT statements the knowledge-base workload needs.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/table.h"
#include "sql/value.h"

namespace easytime::sql {

// ----------------------------------------------------------- expressions

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,     // 42, 3.14, 'text', NULL, TRUE/FALSE
  kColumnRef,   // col or table.col
  kUnary,       // -x, NOT x
  kBinary,      // arithmetic, comparison, AND/OR
  kFunction,    // COUNT/SUM/AVG/MIN/MAX/ABS/ROUND/LOWER/UPPER
  kIsNull,      // x IS [NOT] NULL
  kInList,      // x [NOT] IN (a, b, ...)
  kBetween,     // x [NOT] BETWEEN a AND b
  kLike,        // x [NOT] LIKE 'pattern'
  kStar,        // * (only inside COUNT(*) / SELECT *)
};

/// Binary operators.
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Unary operators.
enum class UnaryOp { kNeg, kNot };

/// \brief A SQL expression node (tagged union style).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   ///< optional qualifier
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  // kFunction
  std::string function;  ///< uppercase name
  std::vector<ExprPtr> args;
  bool distinct_arg = false;  ///< COUNT(DISTINCT x)

  // kIsNull / kInList / kBetween / kLike share `left` as the operand
  bool negated = false;
  std::vector<ExprPtr> in_list;
  ExprPtr between_lo;
  ExprPtr between_hi;
  std::string like_pattern;

  /// Renders the expression back to SQL text (diagnostics, Q&A display).
  std::string ToSql() const;

  /// True if this subtree contains an aggregate function call.
  bool ContainsAggregate() const;
};

/// Helper constructors.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);

/// True for COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& upper_name);

// ----------------------------------------------------------- statements

/// One SELECT-list item.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty = derive from expression

  /// Output column name (alias or rendered expression).
  std::string OutputName() const;
};

/// \brief A table-valued function call in the FROM clause, e.g.
/// TS_FORECAST(sales, day, amount, model := 'theta', horizon := 12).
/// Positional arguments are identifiers (table and column names); named
/// arguments are literal-valued options. Only allowed as the base FROM
/// reference, never in JOINs.
struct TableFunctionCall {
  std::string function;  ///< uppercase name, e.g. "TS_FORECAST"

  struct NamedArg {
    std::string name;  ///< lowercase option name
    Value value;
  };
  std::vector<std::string> positional;
  std::vector<NamedArg> named;

  std::string ToSql() const;
};

/// FROM-clause table reference with optional alias. When `fn` is set the
/// reference names a table-valued function result rather than a stored
/// table, and `table` holds the function name for diagnostics.
struct TableRef {
  std::string table;
  std::string alias;  ///< empty = table name
  std::unique_ptr<TableFunctionCall> fn;

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

/// One JOIN clause.
struct JoinClause {
  TableRef table;
  ExprPtr on;
  bool left_outer = false;  ///< LEFT [OUTER] JOIN: unmatched rows keep NULLs
};

/// ORDER BY key.
struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

/// \brief A SELECT statement.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;  ///< empty + star_all => SELECT *
  bool star_all = false;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   ///< -1 = no limit
  int64_t offset = 0;

  std::string ToSql() const;
};

/// CREATE TABLE statement.
struct CreateTableStatement {
  std::string table;
  std::vector<Column> columns;
};

/// INSERT INTO ... VALUES statement (possibly multi-row).
struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  ///< empty = full schema order
  std::vector<std::vector<ExprPtr>> rows;
};

/// \brief Any parsed statement.
struct Statement {
  enum class Kind { kSelect, kCreateTable, kInsert } kind = Kind::kSelect;
  SelectStatement select;
  CreateTableStatement create_table;
  InsertStatement insert;
};

}  // namespace easytime::sql
