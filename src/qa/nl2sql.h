#pragma once

/// \file nl2sql.h
/// \brief The NL2SQL stage of the Q&A workflow (Fig. 3, step 2). The paper
/// prompts an LLM with the benchmark metadata and Q&A history; this repo
/// substitutes a deterministic grammar/rule-based semantic parser with the
/// same contract — question text in, SQL out — so everything downstream
/// (verification, retrieval, generation) is exercised identically (see
/// DESIGN.md §1).
///
/// Supported question shapes (case-insensitive, synonyms handled):
///   - "What are the top-8 methods (ordered by MAE) for long term
///      forecasting on all multivariate datasets with trends?"
///   - "Which method is best for short term forecasting on traffic
///      datasets with strong seasonality?"
///   - "Is theta or gbdt better on datasets with trends (by rmse)?"
///   - "What is the average smape of holt_winters_add on electricity
///      datasets?"
///   - "How many datasets have strong seasonality?"
///   - "List all multivariate datasets with shifting."
///   - "Which methods are available?" / "list methods"
///   - "Which domains are covered?" / count per domain

#include <string>
#include <vector>

#include "common/result.h"

namespace easytime::qa {

/// Parsed filters extracted from a question.
struct QuestionFilters {
  bool want_multivariate = false;
  bool want_univariate = false;
  bool with_trend = false;
  bool with_seasonality = false;
  bool stationary = false;
  bool non_stationary = false;
  bool with_shifting = false;
  bool with_transition = false;
  std::string domain;          ///< empty = all domains
  std::string horizon_class;   ///< "", "long", "short"
};

/// What the question asks for.
enum class QuestionIntent {
  kTopKMethods,      ///< ranking of methods by a metric
  kCompareMethods,   ///< two named methods head-to-head
  kMethodAverage,    ///< average metric of one method
  kCountDatasets,    ///< how many datasets match filters
  kListDatasets,     ///< names of matching datasets
  kListMethods,      ///< the method catalog
  kDomainBreakdown,  ///< datasets per domain
  kFamilyRanking,    ///< method families ranked by a metric
};

/// \brief The NL2SQL translation output: the SQL plus everything the answer
/// generator needs to phrase the response.
struct TranslatedQuestion {
  QuestionIntent intent = QuestionIntent::kTopKMethods;
  std::string sql;
  std::string metric = "mae";
  size_t top_k = 5;
  std::vector<std::string> mentioned_methods;
  QuestionFilters filters;
};

/// \brief Translates a natural-language question to SQL. Returns
/// InvalidArgument when the question is outside the supported scope — the
/// Q&A engine reports that instead of executing anything.
///
/// When \p previous is non-null, follow-up phrasings ("what about short
/// term?", "and on traffic datasets?", "same but by rmse") inherit the
/// previous question's intent and slots and overlay only what the new
/// question mentions — the paper's "Q&A history" fed back into translation.
/// \param question the user's natural-language question
/// \param known_methods registered method names, used to spot mentions
/// \param known_domains domain names, used to spot mentions
/// \param previous the last successful translation, or nullptr
easytime::Result<TranslatedQuestion> TranslateQuestion(
    const std::string& question, const std::vector<std::string>& known_methods,
    const std::vector<std::string>& known_domains,
    const TranslatedQuestion* previous = nullptr);

/// Renders the filter set as a human-readable clause ("on multivariate
/// datasets with trend, long-term"); empty when no filters.
std::string DescribeFilters(const QuestionFilters& f);

}  // namespace easytime::qa
