#pragma once

/// \file qa_engine.h
/// \brief The natural-language Q&A module (paper §II-D, Fig. 3). Pipeline:
/// Input -> NL2SQL -> Verification (sql::AnalyzeSelect) -> Retrieval
/// (sql::ExecuteSelect) -> Generation (answer templates) ->
/// Post-processing (charts + structured outputs) -> Output.

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/result.h"
#include "knowledge/knowledge_base.h"
#include "qa/chart.h"
#include "qa/nl2sql.h"
#include "sql/table.h"

namespace easytime::qa {

/// \brief Everything the frontend renders for one question (Fig. 5):
/// natural-language answer, chart, the SQL itself, and the data table.
struct QaResponse {
  std::string question;
  std::string sql;            ///< the generated (and verified) SQL
  bool verified = false;      ///< passed semantic verification
  std::string answer;         ///< natural-language response
  sql::ResultSet table;       ///< benchmark result data table
  ChartSpec chart;            ///< selected visualization
  double seconds = 0.0;       ///< end-to-end latency

  /// Bundles the response as JSON (answer, sql, chart spec, rows).
  easytime::Json ToJson() const;

  /// Terminal rendering of the full response (answer, chart, SQL, table).
  std::string Render() const;
};

/// One Q&A exchange kept as history (the paper feeds history back into the
/// LLM prompt; here it is exposed for inspection and context listing).
struct QaHistoryEntry {
  std::string question;
  std::string sql;
  bool ok = false;
};

/// \brief The Q&A engine over a knowledge base.
class QaEngine {
 public:
  /// Builds the engine: exports \p kb into an internal SQL database.
  static easytime::Result<std::unique_ptr<QaEngine>> Create(
      const knowledge::KnowledgeBase& kb);

  /// \brief Answers a question end-to-end. Unsupported questions and
  /// verification failures produce an error Status — nothing is executed.
  /// Follow-up phrasings ("what about short term?") inherit the previous
  /// successful question's intent and filters.
  ///
  /// Thread-safe: exchanges are serialized on an internal mutex so the
  /// history/follow-up state never interleaves (AskSql shares the lock).
  easytime::Result<QaResponse> Ask(const std::string& question);

  /// \brief Runs a raw SQL statement through the same verify-then-execute
  /// path (the power-user escape hatch shown in the demo frontend). Accepts
  /// any statement — SELECTs (including TS_FORECAST/TS_FORECAST_BY table
  /// functions) return rows; CREATE TABLE / INSERT mutate the engine's
  /// database and answer "OK.". The deadline bounds long-running table
  /// functions (expired -> DeadlineExceeded, never a hang).
  easytime::Result<QaResponse> AskSql(
      const std::string& sql,
      const easytime::Deadline& deadline = easytime::Deadline());

  /// The benchmark metadata handed to the translator (schema description).
  std::string SchemaDescription() const { return db_.DescribeSchema(); }

  /// Exchange history. Not locked — read it only when no Ask is in flight.
  const std::vector<QaHistoryEntry>& history() const { return history_; }

 private:
  QaEngine() = default;

  mutable std::mutex mu_;  ///< serializes Ask/AskSql (history + follow-ups)
  sql::Database db_;
  std::vector<std::string> method_names_;
  std::vector<std::string> domain_names_;
  std::vector<QaHistoryEntry> history_;
  std::optional<TranslatedQuestion> last_translation_;
};

}  // namespace easytime::qa
