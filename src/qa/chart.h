#pragma once

/// \file chart.h
/// \brief Chart outputs for the Q&A module: chart-type selection from the
/// result shape, a structured JSON chart spec ("structured data outputs
/// compatible with various types of charts", paper §II-D), and ASCII
/// rendering standing in for the web frontend's visualizations.

#include <string>

#include "common/json.h"
#include "sql/table.h"

namespace easytime::qa {

/// Supported chart types.
enum class ChartType { kNone, kBar, kLine, kPie };

const char* ChartTypeName(ChartType t);

/// \brief A renderable chart: (label, value) pairs plus a title.
struct ChartSpec {
  ChartType type = ChartType::kNone;
  std::string title;
  std::vector<std::string> labels;
  std::vector<double> values;

  /// JSON the frontend would consume: {type, title, labels, values}.
  easytime::Json ToJson() const;

  /// Terminal rendering (horizontal bars / sparkline rows / share table).
  std::string RenderAscii(size_t width = 48) const;
};

/// \brief Picks a chart for a SQL result: two columns of (text, number) ->
/// bar chart (or pie for share-like counts); (number, number) -> line; a
/// single aggregate value or anything wider -> no chart.
ChartSpec SelectChart(const sql::ResultSet& result, const std::string& title);

}  // namespace easytime::qa
