#include "qa/qa_engine.h"

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "tsdata/series.h"

namespace easytime::qa {

easytime::Json QaResponse::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("question", question);
  j.Set("sql", sql);
  j.Set("verified", verified);
  j.Set("answer", answer);
  j.Set("chart", chart.ToJson());
  easytime::Json cols = easytime::Json::Array();
  for (const auto& c : table.columns) cols.Append(c);
  j.Set("columns", std::move(cols));
  easytime::Json rows = easytime::Json::Array();
  for (const auto& row : table.rows) {
    easytime::Json r = easytime::Json::Array();
    for (const auto& v : row) {
      if (v.is_null()) r.Append(easytime::Json(nullptr));
      else if (v.is_integer()) r.Append(easytime::Json(v.AsInteger()));
      else if (v.is_real()) r.Append(easytime::Json(v.AsReal()));
      else r.Append(easytime::Json(v.AsText()));
    }
    rows.Append(std::move(r));
  }
  j.Set("rows", std::move(rows));
  j.Set("seconds", seconds);
  return j;
}

std::string QaResponse::Render() const {
  std::string out;
  out += "Q: " + question + "\n";
  out += "A: " + answer + "\n";
  std::string ascii = chart.RenderAscii();
  if (!ascii.empty()) out += "\n" + ascii;
  out += "\nSQL: " + sql + "\n\n";
  out += table.Format();
  return out;
}

easytime::Result<std::unique_ptr<QaEngine>> QaEngine::Create(
    const knowledge::KnowledgeBase& kb) {
  auto engine = std::unique_ptr<QaEngine>(new QaEngine());
  EASYTIME_RETURN_IF_ERROR(kb.ExportToDatabase(&engine->db_));
  for (const auto& m : kb.methods()) engine->method_names_.push_back(m.name);
  for (int d = 0; d < tsdata::kNumDomains; ++d) {
    engine->domain_names_.push_back(
        tsdata::DomainName(static_cast<tsdata::Domain>(d)));
  }
  return engine;
}

namespace {

/// Phrases the answer from the intent and the result rows.
std::string GenerateAnswer(const TranslatedQuestion& t,
                           const sql::ResultSet& rs) {
  auto fmt_rank = [&](size_t max_items) {
    std::string out;
    size_t n = std::min(max_items, rs.rows.size());
    for (size_t i = 0; i < n; ++i) {
      if (i) out += ", ";
      out += std::to_string(i + 1) + ". " + rs.rows[i][0].ToDisplay() + " (" +
             rs.rows[i][1].ToDisplay() + ")";
    }
    return out;
  };
  std::string scope = DescribeFilters(t.filters);

  switch (t.intent) {
    case QuestionIntent::kTopKMethods: {
      if (rs.rows.empty()) {
        return "No benchmark results match that question (" + scope + ").";
      }
      if (t.top_k == 1 || rs.rows.size() == 1) {
        return "The best method by " + ToUpper(t.metric) + " on " + scope +
               " is " + rs.rows[0][0].ToDisplay() + " (average " +
               ToUpper(t.metric) + " " + rs.rows[0][1].ToDisplay() + ").";
      }
      return "Top " + std::to_string(rs.rows.size()) + " methods by " +
             ToUpper(t.metric) + " on " + scope + ": " + fmt_rank(t.top_k) +
             ".";
    }
    case QuestionIntent::kCompareMethods: {
      if (rs.rows.size() < 2) {
        return "Not enough benchmark coverage to compare those methods on " +
               scope + ".";
      }
      double a = rs.rows[0][1].ToDouble(), b = rs.rows[1][1].ToDouble();
      double rel = b > 1e-12 ? (b - a) / b * 100.0 : 0.0;
      return rs.rows[0][0].ToDisplay() + " beats " +
             rs.rows[1][0].ToDisplay() + " on " + scope + ": average " +
             ToUpper(t.metric) + " " + rs.rows[0][1].ToDisplay() + " vs " +
             rs.rows[1][1].ToDisplay() + " (" + FormatDouble(rel, 1) +
             "% better).";
    }
    case QuestionIntent::kMethodAverage: {
      if (rs.rows.empty()) {
        return "No benchmark results for that method on " + scope + ".";
      }
      return "The average " + ToUpper(t.metric) + " of " +
             rs.rows[0][0].ToDisplay() + " on " + scope + " is " +
             rs.rows[0][1].ToDisplay() + " (over " +
             rs.rows[0][2].ToDisplay() + " runs).";
    }
    case QuestionIntent::kCountDatasets: {
      std::string n = rs.rows.empty() ? "0" : rs.rows[0][0].ToDisplay();
      return n + " datasets match (" + scope + ").";
    }
    case QuestionIntent::kListDatasets: {
      if (rs.rows.empty()) return "No datasets match (" + scope + ").";
      std::string names;
      for (size_t i = 0; i < rs.rows.size(); ++i) {
        if (i) names += ", ";
        names += rs.rows[i][0].ToDisplay();
      }
      return std::to_string(rs.rows.size()) + " datasets match (" + scope +
             "): " + names + ".";
    }
    case QuestionIntent::kListMethods:
      return "EasyTime currently registers " + std::to_string(rs.rows.size()) +
             " forecasting methods across the statistical, ML, and deep "
             "families (see the table).";
    case QuestionIntent::kDomainBreakdown: {
      if (rs.rows.empty()) return "The benchmark has no datasets loaded.";
      return "Dataset coverage per domain is shown in the chart; " +
             rs.rows[0][0].ToDisplay() + " has the most datasets (" +
             rs.rows[0][1].ToDisplay() + ").";
    }
    case QuestionIntent::kFamilyRanking: {
      if (rs.rows.empty()) {
        return "No benchmark results match that question (" + scope + ").";
      }
      return "Ranking method families by " + ToUpper(t.metric) + " on " +
             scope + ": " + fmt_rank(rs.rows.size()) +
             " (average over every member method's runs).";
    }
  }
  return "Done.";
}

}  // namespace

easytime::Result<QaResponse> QaEngine::Ask(const std::string& question) {
  // One exchange at a time: the follow-up context (history, last
  // translation) is engine state, and interleaved questions would race on
  // it. Q&A is milliseconds of SQL over small tables, so serializing here
  // is cheap and keeps the serving layer's Ask endpoint thread-safe.
  std::lock_guard<std::mutex> guard(mu_);
  Stopwatch watch;

  // Step 2: NL2SQL (with Q&A history as context for follow-ups).
  auto translated = TranslateQuestion(
      question, method_names_, domain_names_,
      last_translation_ ? &*last_translation_ : nullptr);
  if (!translated.ok()) {
    history_.push_back({question, "", false});
    return translated.status();
  }
  const TranslatedQuestion& t = *translated;

  // Step 3: Retrieval — verify first, then execute.
  EASYTIME_ASSIGN_OR_RETURN(sql::SelectStatement stmt,
                            sql::ParseSelect(t.sql));
  Status verify = sql::AnalyzeSelect(db_, stmt);
  if (!verify.ok()) {
    history_.push_back({question, t.sql, false});
    return verify.WithContext("generated SQL failed verification");
  }
  EASYTIME_ASSIGN_OR_RETURN(sql::ResultSet rs, sql::ExecuteSelect(db_, stmt));

  // Steps 4-6: Generation, post-processing, output.
  QaResponse resp;
  resp.question = question;
  resp.sql = t.sql;
  resp.verified = true;
  resp.table = std::move(rs);
  resp.answer = GenerateAnswer(t, resp.table);
  resp.chart = SelectChart(resp.table, question);
  resp.seconds = watch.ElapsedSeconds();
  history_.push_back({question, t.sql, true});
  last_translation_ = t;
  return resp;
}

easytime::Result<QaResponse> QaEngine::AskSql(const std::string& query,
                                              const easytime::Deadline& deadline) {
  std::lock_guard<std::mutex> guard(mu_);
  Stopwatch watch;
  EASYTIME_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(query));
  // ExecuteStatement analyzes (verifies) before executing, so the
  // verify-then-execute contract of the paper's Fig. 3 still holds.
  EASYTIME_ASSIGN_OR_RETURN(sql::ResultSet rs,
                            sql::ExecuteStatement(&db_, stmt, deadline));
  QaResponse resp;
  resp.question = query;
  resp.sql = query;
  resp.verified = true;
  resp.table = std::move(rs);
  resp.answer = stmt.kind == sql::Statement::Kind::kSelect
                    ? std::to_string(resp.table.rows.size()) + " rows."
                    : "OK.";
  resp.chart = SelectChart(resp.table, "query result");
  resp.seconds = watch.ElapsedSeconds();
  history_.push_back({query, query, true});
  return resp;
}

}  // namespace easytime::qa
