#include "qa/nl2sql.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace easytime::qa {

namespace {

/// Characteristic thresholds shared with tsdata::Characteristics.
constexpr double kSeasonalityThreshold = 0.64;
constexpr double kTrendThreshold = 0.6;
constexpr double kStationarityThreshold = 0.5;
constexpr double kShiftingThreshold = 0.5;
constexpr double kTransitionThreshold = 0.5;
/// Horizon boundary between short- and long-term questions.
constexpr int kLongHorizon = 24;

/// Extracts a trailing integer from phrases like "top-8", "top 8", "best 3".
bool FindTopK(const std::string& q, size_t* k) {
  for (const char* prefix : {"top-", "top ", "best "}) {
    size_t pos = q.find(prefix);
    while (pos != std::string::npos) {
      size_t digit = pos + std::string(prefix).size();
      if (digit < q.size() && std::isdigit(static_cast<unsigned char>(q[digit]))) {
        *k = 0;
        while (digit < q.size() &&
               std::isdigit(static_cast<unsigned char>(q[digit]))) {
          *k = *k * 10 + static_cast<size_t>(q[digit] - '0');
          ++digit;
        }
        if (*k > 0) return true;
      }
      pos = q.find(prefix, pos + 1);
    }
  }
  return false;
}

/// Finds a metric mention; \p found reports whether the question named one.
std::string FindMetric(const std::string& q, bool* found) {
  struct Synonym {
    const char* phrase;
    const char* metric;
  };
  static const Synonym kSynonyms[] = {
      {"smape", "smape"}, {"mape", "mape"},   {"rmse", "rmse"},
      {"mse", "mse"},     {"mase", "mase"},   {"wape", "wape"},
      {"r2", "r2"},       {"r-squared", "r2"}, {"mae", "mae"},
      {"mean absolute error", "mae"}, {"squared error", "mse"},
  };
  for (const auto& s : kSynonyms) {
    if (q.find(s.phrase) != std::string::npos) {
      if (found) *found = true;
      return s.metric;
    }
  }
  if (found) *found = false;
  return "mae";
}

QuestionFilters FindFilters(const std::string& q,
                            const std::vector<std::string>& domains) {
  QuestionFilters f;
  if (q.find("multivariate") != std::string::npos) f.want_multivariate = true;
  if (q.find("univariate") != std::string::npos) f.want_univariate = true;
  if (q.find("trend") != std::string::npos) f.with_trend = true;
  if (q.find("seasonal") != std::string::npos ||
      q.find("seasonality") != std::string::npos) {
    f.with_seasonality = true;
  }
  if (q.find("non-stationary") != std::string::npos ||
      q.find("nonstationary") != std::string::npos ||
      q.find("non stationary") != std::string::npos) {
    f.non_stationary = true;
  } else if (q.find("stationary") != std::string::npos) {
    f.stationary = true;
  }
  if (q.find("shift") != std::string::npos) f.with_shifting = true;
  if (q.find("transition") != std::string::npos) f.with_transition = true;
  if (q.find("long term") != std::string::npos ||
      q.find("long-term") != std::string::npos) {
    f.horizon_class = "long";
  } else if (q.find("short term") != std::string::npos ||
             q.find("short-term") != std::string::npos) {
    f.horizon_class = "short";
  }
  for (const auto& d : domains) {
    if (q.find(ToLower(d)) != std::string::npos) {
      f.domain = d;
      break;
    }
  }
  return f;
}

/// WHERE fragments against the datasets table alias "d".
std::vector<std::string> DatasetPredicates(const QuestionFilters& f) {
  std::vector<std::string> preds;
  if (f.want_multivariate) preds.push_back("d.multivariate = 1");
  if (f.want_univariate) preds.push_back("d.multivariate = 0");
  if (f.with_trend) {
    preds.push_back("d.trend > " + FormatDouble(kTrendThreshold, 2));
  }
  if (f.with_seasonality) {
    preds.push_back("d.seasonality > " +
                    FormatDouble(kSeasonalityThreshold, 2));
  }
  if (f.stationary) {
    preds.push_back("d.stationarity > " +
                    FormatDouble(kStationarityThreshold, 2));
  }
  if (f.non_stationary) {
    preds.push_back("d.stationarity <= " +
                    FormatDouble(kStationarityThreshold, 2));
  }
  if (f.with_shifting) {
    preds.push_back("d.shifting > " + FormatDouble(kShiftingThreshold, 2));
  }
  if (f.with_transition) {
    preds.push_back("d.transition > " + FormatDouble(kTransitionThreshold, 2));
  }
  if (!f.domain.empty()) preds.push_back("d.domain = '" + f.domain + "'");
  return preds;
}

std::vector<std::string> ResultPredicates(const QuestionFilters& f,
                                          const std::string& metric) {
  std::vector<std::string> preds;
  preds.push_back("r.metric = '" + metric + "'");
  if (f.horizon_class == "long") {
    preds.push_back("r.horizon >= " + std::to_string(kLongHorizon));
  } else if (f.horizon_class == "short") {
    preds.push_back("r.horizon < " + std::to_string(kLongHorizon));
  }
  return preds;
}

std::string WhereClause(std::vector<std::string> preds) {
  if (preds.empty()) return "";
  std::string out = " WHERE " + preds[0];
  for (size_t i = 1; i < preds.size(); ++i) out += " AND " + preds[i];
  return out;
}

/// Strips the "d." qualifier for queries over the datasets table alone.
std::string Unqualified(std::string clause) {
  size_t pos;
  while ((pos = clause.find("d.")) != std::string::npos) clause.erase(pos, 2);
  return clause;
}

/// Finds registered method names mentioned in the question (word-boundary
/// aware enough for snake_case identifiers).
std::vector<std::string> FindMethods(const std::string& q,
                                     const std::vector<std::string>& methods) {
  std::vector<std::string> found;
  for (const auto& m : methods) {
    size_t pos = q.find(ToLower(m));
    while (pos != std::string::npos) {
      bool left_ok = pos == 0 || !(std::isalnum(static_cast<unsigned char>(
                                       q[pos - 1])) ||
                                   q[pos - 1] == '_');
      size_t endp = pos + m.size();
      bool right_ok = endp >= q.size() ||
                      !(std::isalnum(static_cast<unsigned char>(q[endp])) ||
                        q[endp] == '_');
      if (left_ok && right_ok) {
        found.push_back(m);
        break;
      }
      pos = q.find(ToLower(m), pos + 1);
    }
  }
  return found;
}

bool ContainsAny(const std::string& q,
                 std::initializer_list<const char*> phrases) {
  for (const char* p : phrases) {
    if (q.find(p) != std::string::npos) return true;
  }
  return false;
}

/// Generates the SQL for an intent + slot assignment. Kept separate from
/// detection so follow-up questions can overlay slots and regenerate.
easytime::Status BuildSql(TranslatedQuestion* t) {
  const std::string kJoin =
      "FROM results r JOIN datasets d ON r.dataset = d.name";
  std::string order_dir = t->metric == "r2" ? "DESC" : "ASC";

  switch (t->intent) {
    case QuestionIntent::kListMethods:
      t->sql =
          "SELECT name, family, description FROM methods "
          "ORDER BY family, name";
      return Status::OK();
    case QuestionIntent::kDomainBreakdown:
      t->sql =
          "SELECT domain, COUNT(*) AS dataset_count FROM datasets "
          "GROUP BY domain ORDER BY dataset_count DESC";
      return Status::OK();
    case QuestionIntent::kCountDatasets:
      t->sql = "SELECT COUNT(*) AS dataset_count FROM datasets" +
               Unqualified(WhereClause(DatasetPredicates(t->filters)));
      return Status::OK();
    case QuestionIntent::kListDatasets:
      t->sql = "SELECT name, domain, length FROM datasets" +
               Unqualified(WhereClause(DatasetPredicates(t->filters))) +
               " ORDER BY name";
      return Status::OK();
    case QuestionIntent::kCompareMethods: {
      if (t->mentioned_methods.size() < 2) {
        return Status::InvalidArgument(
            "a comparison question must name two methods");
      }
      auto preds = ResultPredicates(t->filters, t->metric);
      auto dpreds = DatasetPredicates(t->filters);
      preds.insert(preds.end(), dpreds.begin(), dpreds.end());
      preds.push_back("r.method IN ('" + t->mentioned_methods[0] + "', '" +
                      t->mentioned_methods[1] + "')");
      t->sql = "SELECT r.method, AVG(r.value) AS avg_" + t->metric + " " +
               kJoin + WhereClause(preds) +
               " GROUP BY r.method ORDER BY avg_" + t->metric + " " +
               order_dir;
      return Status::OK();
    }
    case QuestionIntent::kMethodAverage: {
      if (t->mentioned_methods.empty()) {
        return Status::InvalidArgument(
            "an average question must name a method");
      }
      auto preds = ResultPredicates(t->filters, t->metric);
      auto dpreds = DatasetPredicates(t->filters);
      preds.insert(preds.end(), dpreds.begin(), dpreds.end());
      preds.push_back("r.method = '" + t->mentioned_methods[0] + "'");
      t->sql = "SELECT r.method, AVG(r.value) AS avg_" + t->metric +
               ", COUNT(*) AS runs " + kJoin + WhereClause(preds) +
               " GROUP BY r.method";
      return Status::OK();
    }
    case QuestionIntent::kTopKMethods: {
      auto preds = ResultPredicates(t->filters, t->metric);
      auto dpreds = DatasetPredicates(t->filters);
      preds.insert(preds.end(), dpreds.begin(), dpreds.end());
      t->sql = "SELECT r.method, AVG(r.value) AS avg_" + t->metric + " " +
               kJoin + WhereClause(preds) +
               " GROUP BY r.method ORDER BY avg_" + t->metric + " " +
               order_dir + " LIMIT " + std::to_string(t->top_k);
      return Status::OK();
    }
    case QuestionIntent::kFamilyRanking: {
      auto preds = ResultPredicates(t->filters, t->metric);
      auto dpreds = DatasetPredicates(t->filters);
      preds.insert(preds.end(), dpreds.begin(), dpreds.end());
      t->sql = "SELECT m.family, AVG(r.value) AS avg_" + t->metric + " " +
               kJoin + " JOIN methods m ON r.method = m.name" +
               WhereClause(preds) + " GROUP BY m.family ORDER BY avg_" +
               t->metric + " " + order_dir;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable intent");
}

/// Merges slots found in a follow-up question over the inherited ones.
void OverlaySlots(const std::string& q, const QuestionFilters& fresh,
                  bool metric_found, const std::string& metric, size_t top_k,
                  bool top_k_found,
                  const std::vector<std::string>& mentioned,
                  TranslatedQuestion* t) {
  if (metric_found) t->metric = metric;
  if (top_k_found) t->top_k = top_k;
  if (!mentioned.empty()) t->mentioned_methods = mentioned;

  QuestionFilters& f = t->filters;
  if (!fresh.horizon_class.empty()) f.horizon_class = fresh.horizon_class;
  if (!fresh.domain.empty()) f.domain = fresh.domain;
  if (fresh.want_multivariate) {
    f.want_multivariate = true;
    f.want_univariate = false;
  }
  if (fresh.want_univariate) {
    f.want_univariate = true;
    f.want_multivariate = false;
  }
  if (fresh.with_trend) f.with_trend = true;
  if (fresh.with_seasonality) f.with_seasonality = true;
  if (fresh.stationary) {
    f.stationary = true;
    f.non_stationary = false;
  }
  if (fresh.non_stationary) {
    f.non_stationary = true;
    f.stationary = false;
  }
  if (fresh.with_shifting) f.with_shifting = true;
  if (fresh.with_transition) f.with_transition = true;
  (void)q;
}

bool LooksLikeFollowUp(const std::string& q) {
  return ContainsAny(q, {"what about", "how about", "and for", "and on",
                         "same but", "same for", "what if"}) ||
         StartsWith(q, "and ") || StartsWith(q, "now ");
}

}  // namespace

std::string DescribeFilters(const QuestionFilters& f) {
  std::vector<std::string> parts;
  if (f.want_multivariate) parts.push_back("multivariate");
  if (f.want_univariate) parts.push_back("univariate");
  if (!f.domain.empty()) parts.push_back(f.domain + "-domain");
  if (f.with_trend) parts.push_back("trending");
  if (f.with_seasonality) parts.push_back("seasonal");
  if (f.stationary) parts.push_back("stationary");
  if (f.non_stationary) parts.push_back("non-stationary");
  if (f.with_shifting) parts.push_back("shifting");
  if (f.with_transition) parts.push_back("transitioning");
  std::string out =
      parts.empty() ? "all datasets" : Join(parts, ", ") + " datasets";
  if (f.horizon_class == "long") out += ", long-term horizons";
  if (f.horizon_class == "short") out += ", short-term horizons";
  return out;
}

easytime::Result<TranslatedQuestion> TranslateQuestion(
    const std::string& question, const std::vector<std::string>& known_methods,
    const std::vector<std::string>& known_domains,
    const TranslatedQuestion* previous) {
  std::string q = ToLower(Trim(question));
  if (q.empty()) return Status::InvalidArgument("empty question");

  bool metric_found = false;
  std::string metric = FindMetric(q, &metric_found);
  QuestionFilters filters = FindFilters(q, known_domains);
  std::vector<std::string> mentioned = FindMethods(q, known_methods);
  size_t top_k = 5;
  bool top_k_found = FindTopK(q, &top_k);

  // Follow-up path: inherit the previous question and overlay new slots.
  if (previous != nullptr && LooksLikeFollowUp(q)) {
    TranslatedQuestion t = *previous;
    OverlaySlots(q, filters, metric_found, metric, top_k, top_k_found,
                 mentioned, &t);
    EASYTIME_RETURN_IF_ERROR(BuildSql(&t));
    return t;
  }

  TranslatedQuestion t;
  t.metric = metric;
  t.filters = filters;
  t.mentioned_methods = mentioned;

  // ---- intent detection (most specific first) ----
  if (ContainsAny(q, {"methods are available", "list methods",
                      "available methods", "what methods", "which methods are",
                      "supported methods"}) &&
      !ContainsAny(q, {"top", "best"})) {
    t.intent = QuestionIntent::kListMethods;
  } else if (ContainsAny(q, {"per domain", "by domain", "each domain",
                             "domains are covered", "which domains"})) {
    t.intent = QuestionIntent::kDomainBreakdown;
  } else if (ContainsAny(q, {"family", "families",
                             "statistical or deep", "deep or statistical",
                             "statistical or machine"})) {
    t.intent = QuestionIntent::kFamilyRanking;
  } else if (ContainsAny(q, {"how many datasets", "number of datasets",
                             "count of datasets"})) {
    t.intent = QuestionIntent::kCountDatasets;
  } else if (ContainsAny(q, {"list all datasets", "list datasets",
                             "which datasets", "show datasets",
                             "list all multivariate datasets",
                             "list the datasets"})) {
    t.intent = QuestionIntent::kListDatasets;
  } else if (t.mentioned_methods.size() >= 2 &&
             ContainsAny(q, {"better", "worse", " or ", "versus", " vs "})) {
    t.intent = QuestionIntent::kCompareMethods;
  } else if (t.mentioned_methods.size() == 1 &&
             ContainsAny(q, {"average", "mean", "what is the"}) &&
             !ContainsAny(q, {"top", "best method", "which method"})) {
    t.intent = QuestionIntent::kMethodAverage;
  } else if (ContainsAny(q, {"top", "best", "which method", "what method",
                             "rank", "most accurate"})) {
    t.intent = QuestionIntent::kTopKMethods;
    if (top_k_found) {
      t.top_k = top_k;
    } else if (ContainsAny(q, {"best method", "which method", "what method",
                               "most accurate"})) {
      t.top_k = 1;
    } else {
      t.top_k = 5;
    }
  } else {
    return Status::InvalidArgument(
        "question is outside the supported scope; try e.g. \"What are the "
        "top-5 methods by MAE on multivariate datasets with trends?\"");
  }

  EASYTIME_RETURN_IF_ERROR(BuildSql(&t));
  return t;
}

}  // namespace easytime::qa
