#include "qa/chart.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace easytime::qa {

const char* ChartTypeName(ChartType t) {
  switch (t) {
    case ChartType::kNone: return "none";
    case ChartType::kBar: return "bar";
    case ChartType::kLine: return "line";
    case ChartType::kPie: return "pie";
  }
  return "?";
}

easytime::Json ChartSpec::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("type", ChartTypeName(type));
  j.Set("title", title);
  easytime::Json l = easytime::Json::Array();
  for (const auto& s : labels) l.Append(s);
  j.Set("labels", std::move(l));
  easytime::Json v = easytime::Json::Array();
  for (double x : values) v.Append(x);
  j.Set("values", std::move(v));
  return j;
}

std::string ChartSpec::RenderAscii(size_t width) const {
  if (type == ChartType::kNone || values.empty()) return "";
  std::string out = title.empty() ? "" : title + "\n";

  size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());

  if (type == ChartType::kPie) {
    double total = 0.0;
    for (double v : values) total += std::fabs(v);
    if (total <= 0.0) total = 1.0;
    for (size_t i = 0; i < values.size(); ++i) {
      double share = std::fabs(values[i]) / total;
      size_t bars = static_cast<size_t>(std::round(share * width));
      out += labels[i] + std::string(label_w - labels[i].size(), ' ') + " |" +
             std::string(bars, '@') + "| " +
             FormatDouble(100.0 * share, 1) + "%\n";
    }
    return out;
  }

  double mx = *std::max_element(values.begin(), values.end());
  double mn = *std::min_element(values.begin(), values.end());
  double lo = std::min(0.0, mn);
  double span = std::max(mx - lo, 1e-12);
  for (size_t i = 0; i < values.size(); ++i) {
    size_t bars = static_cast<size_t>(
        std::round((values[i] - lo) / span * static_cast<double>(width)));
    std::string label = i < labels.size() ? labels[i] : std::to_string(i);
    out += label + std::string(label_w >= label.size()
                                   ? label_w - label.size()
                                   : 0, ' ') +
           " |" + std::string(bars, type == ChartType::kLine ? '*' : '#') +
           " " + FormatDouble(values[i], 4) + "\n";
  }
  return out;
}

ChartSpec SelectChart(const sql::ResultSet& result, const std::string& title) {
  ChartSpec spec;
  spec.title = title;
  if (result.rows.empty() || result.columns.size() < 2) return spec;

  // Find the first text column and first numeric column.
  int text_col = -1, num_col = -1;
  bool first_col_numeric = false;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    bool numeric = true, text = true;
    for (const auto& row : result.rows) {
      if (!row[c].is_numeric()) numeric = false;
      if (!row[c].is_text()) text = false;
    }
    if (text && text_col < 0) text_col = static_cast<int>(c);
    if (numeric && num_col < 0) {
      num_col = static_cast<int>(c);
      if (c == 0) first_col_numeric = true;
    }
  }
  if (num_col < 0) return spec;

  // Numeric-vs-numeric => line chart over the first column.
  if (text_col < 0 && first_col_numeric && result.columns.size() >= 2) {
    bool second_numeric = true;
    for (const auto& row : result.rows) {
      if (!row[1].is_numeric()) second_numeric = false;
    }
    if (second_numeric) {
      spec.type = ChartType::kLine;
      for (const auto& row : result.rows) {
        spec.labels.push_back(row[0].ToDisplay());
        spec.values.push_back(row[1].ToDouble());
      }
      return spec;
    }
  }
  if (text_col < 0) return spec;

  // Share-like counts (small category set, integer values) => pie.
  bool all_integer = true;
  for (const auto& row : result.rows) {
    if (!row[static_cast<size_t>(num_col)].is_integer()) all_integer = false;
  }
  spec.type = (all_integer && result.rows.size() <= 12 &&
               ContainsIgnoreCase(result.columns[static_cast<size_t>(num_col)],
                                  "count"))
                  ? ChartType::kPie
                  : ChartType::kBar;
  for (const auto& row : result.rows) {
    spec.labels.push_back(row[static_cast<size_t>(text_col)].ToDisplay());
    spec.values.push_back(row[static_cast<size_t>(num_col)].ToDouble());
  }
  return spec;
}

}  // namespace easytime::qa
