#pragma once

/// \file layers.h
/// \brief Layer abstraction with explicit forward/backward passes. Each
/// layer caches what its backward pass needs; Backward() receives dL/dout
/// and returns dL/din while accumulating parameter gradients.

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace easytime::nn {

/// \brief Base class of all differentiable layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for \p x (shape contract is per-layer;
  /// fully-connected layers take (batch x features), sequence layers take
  /// (time x channels)).
  virtual Matrix Forward(const Matrix& x) = 0;

  /// Backpropagates \p grad_out (dL/doutput, same shape as the last
  /// Forward's result), accumulates parameter gradients, and returns
  /// dL/dinput.
  virtual Matrix Backward(const Matrix& grad_out) = 0;

  /// Trainable parameters (value + grad); empty for stateless layers.
  virtual std::vector<Param*> Params() { return {}; }

  /// Diagnostic name.
  virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x W + b, x is (batch x in).
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

 private:
  Param weight_;  // (in x out)
  Param bias_;    // (1 x out)
  Matrix cached_input_;
};

/// Element-wise ReLU.
class ReLU : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

/// Element-wise tanh.
class Tanh : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

/// Element-wise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
};

/// \brief Ordered container of layers applied in sequence.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership).
  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "Sequential"; }

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// \brief Causal dilated 1-D convolution over a (time x in_channels)
/// sequence, producing (time x out_channels). Left-pads with zeros so output
/// length equals input length; position t only sees inputs at
/// t, t-d, ..., t-(k-1)d — the TCN/TS2Vec building block.
class CausalConv1d : public Layer {
 public:
  CausalConv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
               size_t dilation, Rng* rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "CausalConv1d"; }

  size_t kernel_size() const { return kernel_size_; }
  size_t dilation() const { return dilation_; }

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_size_;
  size_t dilation_;
  Param weight_;  // (kernel*in x out)
  Param bias_;    // (1 x out)
  Matrix cached_input_;
};

/// \brief Residual dilated-conv block: Conv -> ReLU -> Conv, plus a skip
/// connection (1x1 conv when channel counts differ). The encoder stacks
/// these with dilation 2^i.
class ResidualConvBlock : public Layer {
 public:
  ResidualConvBlock(size_t in_channels, size_t out_channels,
                    size_t kernel_size, size_t dilation, Rng* rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "ResidualConvBlock"; }

 private:
  CausalConv1d conv1_;
  ReLU relu1_;
  CausalConv1d conv2_;
  std::unique_ptr<CausalConv1d> skip_;  // nullptr when identity skip works
};

}  // namespace easytime::nn
