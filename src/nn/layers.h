#pragma once

/// \file layers.h
/// \brief Layer abstraction with explicit forward/backward passes. Each
/// layer caches what its backward pass needs; backward receives dL/dout
/// and produces dL/din while accumulating parameter gradients.
///
/// The primitive operations are the *Into variants, which write results into
/// caller-owned matrices so steady-state training reuses buffers instead of
/// allocating per step. ForwardConst is a cache-free, thread-safe inference
/// pass (used by the parallel encode paths). The allocating Forward /
/// Backward wrappers on Layer keep the original call style working.

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace easytime::nn {

/// \brief Base class of all differentiable layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for \p x into \p out (shape contract is
  /// per-layer; fully-connected layers take (batch x features), sequence
  /// layers take (time x channels)). \p out must not alias \p x. Caches
  /// whatever the next BackwardInto needs.
  virtual void ForwardInto(const Matrix& x, Matrix* out) = 0;

  /// Backpropagates \p grad_out (dL/doutput, same shape as the last
  /// forward's result), accumulates parameter gradients, and writes
  /// dL/dinput into \p grad_in (must not alias \p grad_out).
  virtual void BackwardInto(const Matrix& grad_out, Matrix* grad_in) = 0;

  /// Inference-only forward: no caching, no mutation, safe to call from
  /// multiple threads concurrently on the same layer.
  virtual void ForwardConst(const Matrix& x, Matrix* out) const = 0;

  /// Allocating convenience wrappers (non-virtual on purpose: derived
  /// classes implement the Into variants only).
  Matrix Forward(const Matrix& x) {
    Matrix out;
    ForwardInto(x, &out);
    return out;
  }
  Matrix Backward(const Matrix& grad_out) {
    Matrix grad_in;
    BackwardInto(grad_out, &grad_in);
    return grad_in;
  }

  /// Trainable parameters (value + grad); empty for stateless layers.
  virtual std::vector<Param*> Params() { return {}; }

  /// Diagnostic name.
  virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x W + b, x is (batch x in).
class Linear : public Layer {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

 private:
  Param weight_;  // (in x out)
  Param bias_;    // (1 x out)
  Matrix cached_input_;
  Matrix dw_ws_;  // per-step dW, summed into weight_.grad in one shot
};

/// Element-wise ReLU.
class ReLU : public Layer {
 public:
  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::string name() const override { return "ReLU"; }

 private:
  Matrix cached_input_;
};

/// Element-wise tanh.
class Tanh : public Layer {
 public:
  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::string name() const override { return "Tanh"; }

 private:
  Matrix cached_output_;
};

/// Element-wise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Matrix cached_output_;
};

/// \brief Ordered container of layers applied in sequence.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership).
  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "Sequential"; }

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Matrix fwd_ws_[2];  // ping-pong buffers between layers
  Matrix bwd_ws_[2];
};

/// \brief Causal dilated 1-D convolution over a (time x in_channels)
/// sequence, producing (time x out_channels). Left-pads with zeros so output
/// length equals input length; position t only sees inputs at
/// t, t-d, ..., t-(k-1)d — the TCN/TS2Vec building block.
///
/// Implemented as one shifted GEMM per kernel tap: tap kk contributes
/// out[s..T) += x[0..T-s) * W_block(kk) with s = kk*dilation, which keeps
/// every pass on the blocked kernels instead of scalar loops.
class CausalConv1d : public Layer {
 public:
  CausalConv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
               size_t dilation, Rng* rng);

  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "CausalConv1d"; }

  size_t kernel_size() const { return kernel_size_; }
  size_t dilation() const { return dilation_; }

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_size_;
  size_t dilation_;
  Param weight_;  // (kernel*in x out)
  Param bias_;    // (1 x out)
  Matrix cached_input_;
};

/// \brief Residual dilated-conv block: Conv -> ReLU -> Conv, plus a skip
/// connection (1x1 conv when channel counts differ). The encoder stacks
/// these with dilation 2^i.
class ResidualConvBlock : public Layer {
 public:
  ResidualConvBlock(size_t in_channels, size_t out_channels,
                    size_t kernel_size, size_t dilation, Rng* rng);

  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "ResidualConvBlock"; }

 private:
  CausalConv1d conv1_;
  ReLU relu1_;
  CausalConv1d conv2_;
  std::unique_ptr<CausalConv1d> skip_;  // nullptr when identity skip works
  Matrix ws1_, ws2_, skip_ws_;          // forward intermediates
  Matrix bws1_, bws2_, skip_bws_;       // backward intermediates
};

}  // namespace easytime::nn
