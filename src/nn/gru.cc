#include "nn/gru.h"

#include <cmath>

namespace easytime::nn {

namespace {
double SigmoidScalar(double v) { return 1.0 / (1.0 + std::exp(-v)); }
}  // namespace

Gru::Gru(size_t input_size, size_t hidden_size, Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_ir_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_iz_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_in_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_hr_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      w_hz_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      w_hn_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      b_r_(Matrix::Zeros(1, hidden_size)),
      b_z_(Matrix::Zeros(1, hidden_size)),
      b_n_(Matrix::Zeros(1, hidden_size)),
      b_hn_(Matrix::Zeros(1, hidden_size)) {}

Matrix Gru::Forward(const Matrix& x) {
  cached_input_ = x;
  const size_t T = x.rows();
  const size_t H = hidden_size_;
  r_.assign(T, std::vector<double>(H));
  z_.assign(T, std::vector<double>(H));
  n_.assign(T, std::vector<double>(H));
  h_.assign(T, std::vector<double>(H));
  hn_lin_.assign(T, std::vector<double>(H));

  Matrix out(T, H);
  std::vector<double> h_prev(H, 0.0);
  for (size_t t = 0; t < T; ++t) {
    for (size_t j = 0; j < H; ++j) {
      double ar = b_r_.value.at(0, j);
      double az = b_z_.value.at(0, j);
      double an = b_n_.value.at(0, j);
      double hn = b_hn_.value.at(0, j);
      for (size_t i = 0; i < input_size_; ++i) {
        double xv = x.at(t, i);
        ar += xv * w_ir_.value.at(i, j);
        az += xv * w_iz_.value.at(i, j);
        an += xv * w_in_.value.at(i, j);
      }
      for (size_t i = 0; i < H; ++i) {
        double hv = h_prev[i];
        ar += hv * w_hr_.value.at(i, j);
        az += hv * w_hz_.value.at(i, j);
        hn += hv * w_hn_.value.at(i, j);
      }
      double r = SigmoidScalar(ar);
      double z = SigmoidScalar(az);
      double n = std::tanh(an + r * hn);
      double h = (1.0 - z) * n + z * h_prev[j];
      r_[t][j] = r;
      z_[t][j] = z;
      n_[t][j] = n;
      hn_lin_[t][j] = hn;
      h_[t][j] = h;
      out.at(t, j) = h;
    }
    h_prev = h_[t];
  }
  return out;
}

Matrix Gru::Backward(const Matrix& grad_out) {
  const size_t T = cached_input_.rows();
  const size_t H = hidden_size_;
  Matrix dx(T, input_size_);
  std::vector<double> dh_next(H, 0.0);  // dL/dh_t carried backward
  const std::vector<double> zero_state(H, 0.0);

  for (size_t ti = T; ti-- > 0;) {
    const std::vector<double>& h_prev = ti > 0 ? h_[ti - 1] : zero_state;
    std::vector<double> dh(H);
    for (size_t j = 0; j < H; ++j) dh[j] = grad_out.at(ti, j) + dh_next[j];

    std::vector<double> dh_prev(H, 0.0);
    std::vector<double> dar(H), daz(H), dan(H), dhn(H);
    for (size_t j = 0; j < H; ++j) {
      double r = r_[ti][j], z = z_[ti][j], n = n_[ti][j];
      double dn = dh[j] * (1.0 - z);
      double dz = dh[j] * (h_prev[j] - n);
      dh_prev[j] += dh[j] * z;

      double dan_j = dn * (1.0 - n * n);          // grad wrt tanh pre-act
      double dhn_j = dan_j * r;                   // grad wrt (h W_hn + b_hn)
      double dr = dan_j * hn_lin_[ti][j];
      double dar_j = dr * r * (1.0 - r);
      double daz_j = dz * z * (1.0 - z);

      dar[j] = dar_j;
      daz[j] = daz_j;
      dan[j] = dan_j;
      dhn[j] = dhn_j;

      b_r_.grad.at(0, j) += dar_j;
      b_z_.grad.at(0, j) += daz_j;
      b_n_.grad.at(0, j) += dan_j;
      b_hn_.grad.at(0, j) += dhn_j;
    }

    // Parameter and input/hidden gradients.
    for (size_t i = 0; i < input_size_; ++i) {
      double xv = cached_input_.at(ti, i);
      double dxi = 0.0;
      for (size_t j = 0; j < H; ++j) {
        w_ir_.grad.at(i, j) += xv * dar[j];
        w_iz_.grad.at(i, j) += xv * daz[j];
        w_in_.grad.at(i, j) += xv * dan[j];
        dxi += dar[j] * w_ir_.value.at(i, j) + daz[j] * w_iz_.value.at(i, j) +
               dan[j] * w_in_.value.at(i, j);
      }
      dx.at(ti, i) = dxi;
    }
    for (size_t i = 0; i < H; ++i) {
      double hv = h_prev[i];
      double acc = 0.0;
      for (size_t j = 0; j < H; ++j) {
        w_hr_.grad.at(i, j) += hv * dar[j];
        w_hz_.grad.at(i, j) += hv * daz[j];
        w_hn_.grad.at(i, j) += hv * dhn[j];
        acc += dar[j] * w_hr_.value.at(i, j) + daz[j] * w_hz_.value.at(i, j) +
               dhn[j] * w_hn_.value.at(i, j);
      }
      dh_prev[i] += acc;
    }
    dh_next = std::move(dh_prev);
  }
  return dx;
}

std::vector<Param*> Gru::Params() {
  return {&w_ir_, &w_iz_, &w_in_, &w_hr_, &w_hz_, &w_hn_,
          &b_r_,  &b_z_,  &b_n_,  &b_hn_};
}

}  // namespace easytime::nn
