#include "nn/gru.h"

#include <algorithm>
#include <cmath>

namespace easytime::nn {

namespace {
double SigmoidScalar(double v) { return 1.0 / (1.0 + std::exp(-v)); }
}  // namespace

Gru::Gru(size_t input_size, size_t hidden_size, Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_ir_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_iz_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_in_(Matrix::Xavier(input_size, hidden_size, rng)),
      w_hr_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      w_hz_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      w_hn_(Matrix::Xavier(hidden_size, hidden_size, rng)),
      b_r_(Matrix::Zeros(1, hidden_size)),
      b_z_(Matrix::Zeros(1, hidden_size)),
      b_n_(Matrix::Zeros(1, hidden_size)),
      b_hn_(Matrix::Zeros(1, hidden_size)) {}

void Gru::ForwardImpl(const Matrix& x, Matrix* out, Matrix* gates,
                      Matrix* wi_rz, Matrix* wh, Matrix* r, Matrix* z,
                      Matrix* n, Matrix* h) const {
  const size_t T = x.rows();
  const size_t H = hidden_size_;
  const size_t G = 4 * H;  // gate blocks: [pre_r | pre_z | hn_lin | pre_n]

  // Pack the per-gate weights into concatenated column blocks. Column j of
  // each gate keeps its exact weight column, so every pre-activation element
  // sees the same values in the same ascending-k order as the unfused
  // per-gate GEMMs — the batching below is bit-exact.
  wi_rz->Resize(input_size_, 2 * H);
  for (size_t i = 0; i < input_size_; ++i) {
    double* row = wi_rz->row_data(i);
    std::copy_n(w_ir_.value.row_data(i), H, row);
    std::copy_n(w_iz_.value.row_data(i), H, row + H);
  }
  wh->Resize(H, 3 * H);
  for (size_t i = 0; i < H; ++i) {
    double* row = wh->row_data(i);
    std::copy_n(w_hr_.value.row_data(i), H, row);
    std::copy_n(w_hz_.value.row_data(i), H, row + H);
    std::copy_n(w_hn_.value.row_data(i), H, row + 2 * H);
  }

  // Each gate pre-activation accumulates bias first, then the x terms, then
  // (per step) the h terms — the per-element order of the scalar loop.
  gates->Resize(T, G);
  for (size_t t = 0; t < T; ++t) {
    double* row = gates->row_data(t);
    std::copy_n(b_r_.value.data(), H, row);
    std::copy_n(b_z_.value.data(), H, row + H);
    std::copy_n(b_hn_.value.data(), H, row + 2 * H);
    std::copy_n(b_n_.value.data(), H, row + 3 * H);
  }

  // Whole-sequence input products: r+z in one GEMM into blocks 0-1, n into
  // block 3 (block 2, hn_lin, takes the recurrent term instead).
  kernel::GemmAcc(T, 2 * H, input_size_, x.data(), input_size_,
                  wi_rz->data(), 2 * H, gates->data(), G);
  kernel::GemmAcc(T, H, input_size_, x.data(), input_size_,
                  w_in_.value.data(), H, gates->data() + 3 * H, G);

  r->Resize(T, H);
  z->Resize(T, H);
  n->Resize(T, H);
  h->Resize(T, H);
  out->Resize(T, H);

  const std::vector<double> zero_state(H, 0.0);
  const double* h_prev = zero_state.data();
  for (size_t t = 0; t < T; ++t) {
    // One batched recurrent product per step over blocks 0-2 (r, z, hn).
    kernel::GemmAcc(1, 3 * H, H, h_prev, H, wh->data(), 3 * H,
                    gates->row_data(t), G);
    const double* ar = gates->row_data(t);
    const double* az = ar + H;
    const double* hn = ar + 2 * H;
    const double* an = ar + 3 * H;
    double* rr = r->row_data(t);
    double* zr = z->row_data(t);
    double* nr = n->row_data(t);
    double* hr = h->row_data(t);
    double* orow = out->row_data(t);
    for (size_t j = 0; j < H; ++j) {
      const double rj = SigmoidScalar(ar[j]);
      const double zj = SigmoidScalar(az[j]);
      const double nj = std::tanh(an[j] + rj * hn[j]);
      const double hj = (1.0 - zj) * nj + zj * h_prev[j];
      rr[j] = rj;
      zr[j] = zj;
      nr[j] = nj;
      hr[j] = hj;
      orow[j] = hj;
    }
    h_prev = h->row_data(t);
  }
}

void Gru::ForwardInto(const Matrix& x, Matrix* out) {
  cached_input_ = x;
  ForwardImpl(x, out, &gates_, &wi_rz_pack_, &wh_pack_, &r_, &z_, &n_, &h_);
}

void Gru::ForwardConst(const Matrix& x, Matrix* out) const {
  Matrix gates, wi_rz, wh, r, z, n, h;
  ForwardImpl(x, out, &gates, &wi_rz, &wh, &r, &z, &n, &h);
}

void Gru::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  const size_t T = cached_input_.rows();
  const size_t H = hidden_size_;
  grad_in->Resize(T, input_size_);

  bwd_dh_.resize(H);
  bwd_dh_prev_.resize(H);
  bwd_dh_next_.assign(H, 0.0);
  bwd_dar_.resize(H);
  bwd_daz_.resize(H);
  bwd_dan_.resize(H);
  bwd_dhn_.resize(H);
  const std::vector<double> zero_state(H, 0.0);

  for (size_t ti = T; ti-- > 0;) {
    const double* h_prev = ti > 0 ? h_.row_data(ti - 1) : zero_state.data();
    std::vector<double>& dh = bwd_dh_;
    const double* grow = grad_out.row_data(ti);
    for (size_t j = 0; j < H; ++j) dh[j] = grow[j] + bwd_dh_next_[j];

    std::vector<double>& dh_prev = bwd_dh_prev_;
    std::fill(dh_prev.begin(), dh_prev.end(), 0.0);
    std::vector<double>& dar = bwd_dar_;
    std::vector<double>& daz = bwd_daz_;
    std::vector<double>& dan = bwd_dan_;
    std::vector<double>& dhn = bwd_dhn_;
    const double* rrow = r_.row_data(ti);
    const double* zrow = z_.row_data(ti);
    const double* nrow = n_.row_data(ti);
    const double* hnrow = gates_.row_data(ti) + 2 * H;  // hn_lin block
    for (size_t j = 0; j < H; ++j) {
      double r = rrow[j], z = zrow[j], n = nrow[j];
      double dn = dh[j] * (1.0 - z);
      double dz = dh[j] * (h_prev[j] - n);
      dh_prev[j] += dh[j] * z;

      double dan_j = dn * (1.0 - n * n);          // grad wrt tanh pre-act
      double dhn_j = dan_j * r;                   // grad wrt (h W_hn + b_hn)
      double dr = dan_j * hnrow[j];
      double dar_j = dr * r * (1.0 - r);
      double daz_j = dz * z * (1.0 - z);

      dar[j] = dar_j;
      daz[j] = daz_j;
      dan[j] = dan_j;
      dhn[j] = dhn_j;

      b_r_.grad.at(0, j) += dar_j;
      b_z_.grad.at(0, j) += daz_j;
      b_n_.grad.at(0, j) += dan_j;
      b_hn_.grad.at(0, j) += dhn_j;
    }

    // Parameter and input/hidden gradients. The dxi/acc summations
    // interleave the three gate terms per j, so they stay scalar to keep
    // the accumulation order of the reference implementation.
    for (size_t i = 0; i < input_size_; ++i) {
      double xv = cached_input_.at(ti, i);
      double dxi = 0.0;
      double* gir = w_ir_.grad.row_data(i);
      double* giz = w_iz_.grad.row_data(i);
      double* gin = w_in_.grad.row_data(i);
      const double* vir = w_ir_.value.row_data(i);
      const double* viz = w_iz_.value.row_data(i);
      const double* vin = w_in_.value.row_data(i);
      for (size_t j = 0; j < H; ++j) {
        gir[j] += xv * dar[j];
        giz[j] += xv * daz[j];
        gin[j] += xv * dan[j];
        dxi += dar[j] * vir[j] + daz[j] * viz[j] + dan[j] * vin[j];
      }
      grad_in->at(ti, i) = dxi;
    }
    for (size_t i = 0; i < H; ++i) {
      double hv = h_prev[i];
      double acc = 0.0;
      double* ghr = w_hr_.grad.row_data(i);
      double* ghz = w_hz_.grad.row_data(i);
      double* ghn = w_hn_.grad.row_data(i);
      const double* vhr = w_hr_.value.row_data(i);
      const double* vhz = w_hz_.value.row_data(i);
      const double* vhn = w_hn_.value.row_data(i);
      for (size_t j = 0; j < H; ++j) {
        ghr[j] += hv * dar[j];
        ghz[j] += hv * daz[j];
        ghn[j] += hv * dhn[j];
        acc += dar[j] * vhr[j] + daz[j] * vhz[j] + dhn[j] * vhn[j];
      }
      dh_prev[i] += acc;
    }
    std::swap(bwd_dh_next_, bwd_dh_prev_);
  }
}

std::vector<Param*> Gru::Params() {
  return {&w_ir_, &w_iz_, &w_in_, &w_hr_, &w_hz_, &w_hn_,
          &b_r_,  &b_z_,  &b_n_,  &b_hn_};
}

}  // namespace easytime::nn
