#include "nn/matrix_fast.h"

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/thread_pool.h"

// This TU is compiled with -ffp-contract=fast plus reassociation
// (-fassociative-math and friends, see src/nn/CMakeLists.txt), so mul+add
// chains fuse into FMA and dot-product reductions vectorize. That is exactly
// the freedom the reference kernels in matrix.cc give up to stay bit-exact;
// here the only contract is the rel-err envelope of tests/test_fast_math.cc.

namespace easytime::nn::kernel {

namespace {

// Same cache blocking as the reference kernel: the (kKBlock x kNBlock) B
// panel sits in L2, the active C rows in L1. The register tile is taller
// than the reference's 4 rows: 8 rows x 2 vectors = 16 accumulator chains,
// enough to cover FMA latency x ports, and each packed B load is reused 8x.
// The reference kernel cannot grow its tile without re-pinning goldens; this
// TU has no bit-exactness contract, so it takes the better shape.
constexpr size_t kKBlock = 64;
constexpr size_t kNBlock = 256;
constexpr size_t kMr = 8;

// float32 partial sums are folded into the fp64 C at least every kChunk
// k-steps, bounding single-precision accumulation length.
constexpr size_t kChunk = 4 * kKBlock;

// Row-parallel dispatch threshold (m*n*k), as in the reference kernel.
constexpr size_t kParallelMinWork = size_t{1} << 22;

// float32 only pays off once the blocked micro-kernel engages and the
// double->float conversion cost amortizes over enough arithmetic. Below
// these cutoffs the f32 entry points run the fp64 FMA path instead — it is
// both faster (measured on the encoder's 64x24x24-class shapes) and more
// accurate, and the f32 tier's contract is a tolerance envelope, not a
// representation guarantee.
constexpr size_t kF32MinRows = 16;       // 2 * kMr (the blocked-path gate)
constexpr size_t kF32MinCols = 32;       // f32 micro-tile width
constexpr size_t kF32MinDotWork = size_t{1} << 19;  // TransB m*n*k crossover

#if defined(__GNUC__)
#define EASYTIME_FAST_VECTOR_KERNEL 1
#if defined(__AVX512F__)
constexpr size_t kVecBytes = 64;
#elif defined(__AVX__)
constexpr size_t kVecBytes = 32;
#else
constexpr size_t kVecBytes = 16;
#endif

template <typename T>
struct VecOf {
  typedef T type __attribute__((vector_size(kVecBytes)));
};
template <typename T>
using Vec = typename VecOf<T>::type;
template <typename T>
inline constexpr size_t kVw = kVecBytes / sizeof(T);
/// Micro-tile width in elements: two vectors per C row. Twice as wide for
/// float as for double, which is where the f32 tier's throughput comes from.
template <typename T>
inline constexpr size_t kNrOf = 2 * kVw<T>;

template <typename T>
inline Vec<T> LoadV(const T* p) {
  Vec<T> v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
inline Vec<T> Splat(T x) {
  return Vec<T>{} + x;  // scalar broadcasts over the vector
}

/// (kMr x 2-vector) micro-kernel over a packed TC strip. Unlike the
/// reference kernel the accumulators start at zero and the block sum is
/// folded into the fp64 C afterwards — for TC=float that is what keeps
/// single-precision error growth bounded to one k-block; for TC=double it
/// frees the compiler to contract every step into FMA. The k loop is
/// unrolled by two so the B loads of step kk+1 issue while step kk's FMAs
/// retire — measured ~1.3x over the rolled loop on 256^3.
template <typename TC>
inline void MicroKernelFast(size_t kb, const double* const* ar, const TC* bp,
                            double* const* cr) {
  using V = Vec<TC>;
  constexpr size_t W = kVw<TC>;
  V acc[kMr][2];
  for (size_t r = 0; r < kMr; ++r) {
    acc[r][0] = V{};
    acc[r][1] = V{};
  }
  size_t kk = 0;
  for (; kk + 2 <= kb; kk += 2) {
    const TC* br = bp + kk * 2 * W;
    const V b0 = LoadV(br);
    const V b1 = LoadV(br + W);
    const V b2 = LoadV(br + 2 * W);
    const V b3 = LoadV(br + 3 * W);
    for (size_t r = 0; r < kMr; ++r) {
      const V av = Splat(static_cast<TC>(ar[r][kk]));
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
      const V aw = Splat(static_cast<TC>(ar[r][kk + 1]));
      acc[r][0] += aw * b2;
      acc[r][1] += aw * b3;
    }
  }
  for (; kk < kb; ++kk) {
    const TC* br = bp + kk * 2 * W;
    const V b0 = LoadV(br);
    const V b1 = LoadV(br + W);
    for (size_t r = 0; r < kMr; ++r) {
      const V av = Splat(static_cast<TC>(ar[r][kk]));
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  for (size_t r = 0; r < kMr; ++r) {
    for (size_t l = 0; l < W; ++l) {
      cr[r][l] += static_cast<double>(acc[r][0][l]);
      cr[r][W + l] += static_cast<double>(acc[r][1][l]);
    }
  }
}
#endif  // __GNUC__

/// Streaming kernel for shapes the blocked path cannot tile (short row
/// ranges, n narrower than a micro-tile). The independent-per-column inner
/// loop vectorizes with FMA; for TC=float, B is packed to float once per
/// call and partial row sums fold into the fp64 C every kChunk steps.
template <typename TC>
void FastStreamRows(size_t i_begin, size_t i_end, size_t n, size_t k,
                    const double* a, size_t lda, const double* b, size_t ldb,
                    double* c, size_t ldc) {
  if constexpr (std::is_same_v<TC, double>) {
    for (size_t i = i_begin; i < i_end; ++i) {
      const double* ar = a + i * lda;
      double* cr = c + i * ldc;
      for (size_t kk = 0; kk < k; ++kk) {
        const double av = ar[kk];
        const double* br = b + kk * ldb;
        for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
      }
    }
  } else {
    thread_local std::vector<TC> packb;
    thread_local std::vector<TC> rowacc;
    packb.resize(k * n);
    rowacc.resize(n);
    for (size_t kk = 0; kk < k; ++kk) {
      const double* br = b + kk * ldb;
      TC* dst = packb.data() + kk * n;
      for (size_t j = 0; j < n; ++j) dst[j] = static_cast<TC>(br[j]);
    }
    for (size_t i = i_begin; i < i_end; ++i) {
      const double* ar = a + i * lda;
      double* cr = c + i * ldc;
      for (size_t k0 = 0; k0 < k; k0 += kChunk) {
        const size_t kend = std::min(k, k0 + kChunk);
        TC* acc = rowacc.data();
        std::fill(acc, acc + n, TC{0});
        for (size_t kk = k0; kk < kend; ++kk) {
          const TC av = static_cast<TC>(ar[kk]);
          const TC* br = packb.data() + kk * n;
          for (size_t j = 0; j < n; ++j) acc[j] += av * br[j];
        }
        for (size_t j = 0; j < n; ++j) cr[j] += static_cast<double>(acc[j]);
      }
    }
  }
}

#if defined(EASYTIME_FAST_VECTOR_KERNEL)
/// Blocked fast GEMM over C rows [i_begin, i_end): B panels are packed into
/// contiguous micro-tile strips (converted to TC during the pack), then the
/// register micro-kernel sweeps 4-row tiles.
template <typename TC>
void FastGemmRows(size_t i_begin, size_t i_end, size_t n, size_t k,
                  const double* a, size_t lda, const double* b, size_t ldb,
                  double* c, size_t ldc) {
  constexpr size_t kNr = kNrOf<TC>;
  if (i_end - i_begin < 2 * kMr || n < kNr) {
    FastStreamRows<TC>(i_begin, i_end, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  thread_local std::vector<TC> packb;
  packb.resize(kKBlock * kNBlock);
  for (size_t j0 = 0; j0 < n; j0 += kNBlock) {
    const size_t jend = std::min(n, j0 + kNBlock);
    const size_t full_tiles = (jend - j0) / kNr;
    const size_t tiled_w = full_tiles * kNr;
    for (size_t k0 = 0; k0 < k; k0 += kKBlock) {
      const size_t kend = std::min(k, k0 + kKBlock);
      const size_t kb = kend - k0;
      // Pack: strip t holds B(k0..kend, j0+t*kNr .. +kNr) as kb rows of kNr.
      for (size_t kk = 0; kk < kb; ++kk) {
        const double* br = b + (k0 + kk) * ldb + j0;
        TC* dst = packb.data() + kk * kNr;
        for (size_t t = 0; t < full_tiles; ++t) {
          const double* src = br + t * kNr;
          TC* d = dst + t * kb * kNr;
          for (size_t jj = 0; jj < kNr; ++jj) d[jj] = static_cast<TC>(src[jj]);
        }
      }
      size_t i = i_begin;
      for (; i + kMr <= i_end; i += kMr) {
        const double* ar[kMr];
        double* cr0[kMr];
        for (size_t r = 0; r < kMr; ++r) {
          ar[r] = a + (i + r) * lda + k0;
          cr0[r] = c + (i + r) * ldc + j0;
        }
        for (size_t t = 0; t < full_tiles; ++t) {
          double* cr[kMr];
          for (size_t r = 0; r < kMr; ++r) cr[r] = cr0[r] + t * kNr;
          MicroKernelFast<TC>(kb, ar, packb.data() + t * kb * kNr, cr);
        }
        for (size_t j = j0 + tiled_w; j < jend; ++j) {
          for (size_t r = 0; r < kMr; ++r) {
            double s = 0.0;
            for (size_t kk = k0; kk < kend; ++kk) {
              s += ar[r][kk - k0] * b[kk * ldb + j];
            }
            cr0[r][j - j0] += s;
          }
        }
      }
      for (; i < i_end; ++i) {
        const double* ar = a + i * lda + k0;
        double* cr = c + i * ldc + j0;
        for (size_t t = 0; t < full_tiles; ++t) {
          const TC* bp = packb.data() + t * kb * kNr;
          TC acc[kNr] = {};
          for (size_t kk = 0; kk < kb; ++kk) {
            const TC av = static_cast<TC>(ar[kk]);
            const TC* br = bp + kk * kNr;
            for (size_t jj = 0; jj < kNr; ++jj) acc[jj] += av * br[jj];
          }
          for (size_t jj = 0; jj < kNr; ++jj) {
            cr[t * kNr + jj] += static_cast<double>(acc[jj]);
          }
        }
        for (size_t j = j0 + tiled_w; j < jend; ++j) {
          double s = 0.0;
          for (size_t kk = k0; kk < kend; ++kk) {
            s += ar[kk - k0] * b[kk * ldb + j];
          }
          cr[j - j0] += s;
        }
      }
    }
  }
}
#else
template <typename TC>
void FastGemmRows(size_t i_begin, size_t i_end, size_t n, size_t k,
                  const double* a, size_t lda, const double* b, size_t ldb,
                  double* c, size_t ldc) {
  FastStreamRows<TC>(i_begin, i_end, n, k, a, lda, b, ldb, c, ldc);
}
#endif

/// Row-parallel dispatch shared by both scalar types; mirrors the reference
/// kernel's split (each C row is still produced by exactly one thread).
template <typename TC>
void FastGemmAccT(size_t m, size_t n, size_t k, const double* a, size_t lda,
                  const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  if (m >= 2 * kMr && m * n * k >= kParallelMinWork &&
      GlobalThreadPool().size() >= 2) {
    ThreadPool& pool = GlobalThreadPool();
    const size_t blocks = std::min(pool.size() + 1, m / kMr);
    if (blocks > 1) {
      const size_t rows_per = (m + blocks - 1) / blocks;
      pool.ParallelFor(blocks, [&](size_t bi) {
        const size_t i0 = bi * rows_per;
        const size_t i1 = std::min(m, i0 + rows_per);
        if (i0 < i1) FastGemmRows<TC>(i0, i1, n, k, a, lda, b, ldb, c, ldc);
      });
      return;
    }
  }
  FastGemmRows<TC>(0, m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace

void GemmAccFast(size_t m, size_t n, size_t k, const double* a, size_t lda,
                 const double* b, size_t ldb, double* c, size_t ldc) {
  FastGemmAccT<double>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmAccFastF32(size_t m, size_t n, size_t k, const double* a, size_t lda,
                    const double* b, size_t ldb, double* c, size_t ldc) {
  if (m < kF32MinRows || n < kF32MinCols) {
    FastGemmAccT<double>(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  FastGemmAccT<float>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTransAAccFast(size_t m, size_t n, size_t k, const double* a,
                       size_t lda, const double* b, size_t ldb, double* c,
                       size_t ldc) {
  // k rank-1 updates, as in the reference kernel; contraction makes each
  // inner step one FMA.
  for (size_t kk = 0; kk < k; ++kk) {
    const double* ar = a + kk * lda;
    const double* br = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double av = ar[i];
      double* cr = c + i * ldc;
      for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

void GemmTransAAccFastF32(size_t m, size_t n, size_t k, const double* a,
                          size_t lda, const double* b, size_t ldb, double* c,
                          size_t ldc) {
  // The C panel (a weight gradient, small) accumulates in a float scratch
  // for up to kChunk rank-1 updates, then folds into the fp64 grad.
  thread_local std::vector<float> scratch;
  thread_local std::vector<float> browf;
  scratch.resize(m * n);
  browf.resize(n);
  for (size_t k0 = 0; k0 < k; k0 += kChunk) {
    const size_t kend = std::min(k, k0 + kChunk);
    std::fill(scratch.begin(), scratch.end(), 0.0f);
    for (size_t kk = k0; kk < kend; ++kk) {
      const double* ar = a + kk * lda;
      const double* br = b + kk * ldb;
      float* bf = browf.data();
      for (size_t j = 0; j < n; ++j) bf[j] = static_cast<float>(br[j]);
      for (size_t i = 0; i < m; ++i) {
        const float av = static_cast<float>(ar[i]);
        float* sr = scratch.data() + i * n;
        for (size_t j = 0; j < n; ++j) sr[j] += av * bf[j];
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const float* sr = scratch.data() + i * n;
      double* cr = c + i * ldc;
      for (size_t j = 0; j < n; ++j) cr[j] += static_cast<double>(sr[j]);
    }
  }
}

namespace {

/// Shared dot-product TransB body: TC accumulator chains vectorize as
/// reductions thanks to the reassociation flags on this TU; float partial
/// sums fold into fp64 per k-chunk.
template <typename TC>
void FastGemmTransBT(size_t m, size_t n, size_t k, const double* a,
                     size_t lda, const double* b, size_t ldb, double* c,
                     size_t ldc) {
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + i * ldc;
    double* c1 = c0 + ldc;
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      double s00 = 0.0, s01 = 0.0, s10 = 0.0, s11 = 0.0;
      for (size_t k0 = 0; k0 < k; k0 += kChunk) {
        const size_t kend = std::min(k, k0 + kChunk);
        TC f00{}, f01{}, f10{}, f11{};
        for (size_t kk = k0; kk < kend; ++kk) {
          const TC av0 = static_cast<TC>(a0[kk]);
          const TC av1 = static_cast<TC>(a1[kk]);
          const TC bv0 = static_cast<TC>(b0[kk]);
          const TC bv1 = static_cast<TC>(b1[kk]);
          f00 += av0 * bv0;
          f01 += av0 * bv1;
          f10 += av1 * bv0;
          f11 += av1 * bv1;
        }
        s00 += static_cast<double>(f00);
        s01 += static_cast<double>(f01);
        s10 += static_cast<double>(f10);
        s11 += static_cast<double>(f11);
      }
      c0[j] += s00;
      c0[j + 1] += s01;
      c1[j] += s10;
      c1[j + 1] += s11;
    }
    for (; j < n; ++j) {
      const double* b0 = b + j * ldb;
      TC f0{}, f1{};
      for (size_t kk = 0; kk < k; ++kk) {
        f0 += static_cast<TC>(a0[kk]) * static_cast<TC>(b0[kk]);
        f1 += static_cast<TC>(a1[kk]) * static_cast<TC>(b0[kk]);
      }
      c0[j] += static_cast<double>(f0);
      c1[j] += static_cast<double>(f1);
    }
  }
  for (; i < m; ++i) {
    const double* a0 = a + i * lda;
    double* c0 = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const double* b0 = b + j * ldb;
      TC f0{};
      for (size_t kk = 0; kk < k; ++kk) {
        f0 += static_cast<TC>(a0[kk]) * static_cast<TC>(b0[kk]);
      }
      c0[j] += static_cast<double>(f0);
    }
  }
}

}  // namespace

void GemmTransBAccFast(size_t m, size_t n, size_t k, const double* a,
                       size_t lda, const double* b, size_t ldb, double* c,
                       size_t ldc) {
  FastGemmTransBT<double>(m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTransBAccFastF32(size_t m, size_t n, size_t k, const double* a,
                          size_t lda, const double* b, size_t ldb, double* c,
                          size_t ldc) {
  if (m * n * k < kF32MinDotWork) {
    FastGemmTransBT<double>(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  FastGemmTransBT<float>(m, n, k, a, lda, b, ldb, c, ldc);
}

double DotFast(const double* a, const double* b, size_t n) {
  double s = 0.0;  // reassociation on this TU vectorizes the reduction
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyFast(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace easytime::nn::kernel
