/// \file matrix_naive.cc
/// \brief The seed's original single-threaded GEMM, kept verbatim as the
/// reference kernel for equivalence tests and the BM_Gemm*Naive benchmarks.
/// It lives in its own translation unit so it is compiled with the default
/// project flags — the blocked kernel's tuned flags (-O3, host ISA) must not
/// leak into the baseline it is measured against.

#include <cassert>

#include "nn/matrix.h"

namespace easytime::nn {

Matrix Matrix::MatMulNaive(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

}  // namespace easytime::nn
