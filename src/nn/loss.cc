#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace easytime::nn {

std::pair<double, Matrix> MseLoss(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  Matrix grad(pred.rows(), pred.cols());
  double loss = 0.0;
  double n = static_cast<double>(pred.size());
  for (size_t i = 0; i < pred.raw().size(); ++i) {
    double d = pred.raw()[i] - target.raw()[i];
    loss += d * d;
    grad.raw()[i] = 2.0 * d / n;
  }
  return {loss / n, std::move(grad)};
}

std::pair<double, Matrix> MaeLoss(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  Matrix grad(pred.rows(), pred.cols());
  double loss = 0.0;
  double n = static_cast<double>(pred.size());
  for (size_t i = 0; i < pred.raw().size(); ++i) {
    double d = pred.raw()[i] - target.raw()[i];
    loss += std::fabs(d);
    grad.raw()[i] = (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) / n;
  }
  return {loss / n, std::move(grad)};
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out = logits;
  for (size_t r = 0; r < out.rows(); ++r) {
    double mx = out.at(r, 0);
    for (size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out.at(r, c));
    double sum = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = std::exp(out.at(r, c) - mx);
      sum += out.at(r, c);
    }
    for (size_t c = 0; c < out.cols(); ++c) out.at(r, c) /= sum;
  }
  return out;
}

std::pair<double, Matrix> SoftCrossEntropyLoss(const Matrix& logits,
                                               const Matrix& soft_targets) {
  assert(logits.rows() == soft_targets.rows() &&
         logits.cols() == soft_targets.cols());
  Matrix probs = RowSoftmax(logits);
  double loss = 0.0;
  Matrix grad(logits.rows(), logits.cols());
  double batch = static_cast<double>(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    for (size_t c = 0; c < logits.cols(); ++c) {
      double t = soft_targets.at(r, c);
      double p = std::max(probs.at(r, c), 1e-12);
      if (t > 0.0) loss -= t * std::log(p);
      // d(CE)/dlogit = softmax - target (per row), averaged over batch.
      grad.at(r, c) = (probs.at(r, c) - t) / batch;
    }
  }
  return {loss / batch, std::move(grad)};
}

}  // namespace easytime::nn
