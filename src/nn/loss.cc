#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace easytime::nn {

double MseLossInto(const Matrix& pred, const Matrix& target, Matrix* grad) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  grad->Resize(pred.rows(), pred.cols());
  double loss = 0.0;
  double n = static_cast<double>(pred.size());
  const double* pp = pred.data();
  const double* pt = target.data();
  double* pg = grad->data();
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pp[i] - pt[i];
    loss += d * d;
    pg[i] = 2.0 * d / n;
  }
  return loss / n;
}

std::pair<double, Matrix> MseLoss(const Matrix& pred, const Matrix& target) {
  Matrix grad;
  double loss = MseLossInto(pred, target, &grad);
  return {loss, std::move(grad)};
}

double MaeLossInto(const Matrix& pred, const Matrix& target, Matrix* grad) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  grad->Resize(pred.rows(), pred.cols());
  double loss = 0.0;
  double n = static_cast<double>(pred.size());
  const double* pp = pred.data();
  const double* pt = target.data();
  double* pg = grad->data();
  for (size_t i = 0; i < pred.size(); ++i) {
    double d = pp[i] - pt[i];
    loss += std::fabs(d);
    pg[i] = (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) / n;
  }
  return loss / n;
}

std::pair<double, Matrix> MaeLoss(const Matrix& pred, const Matrix& target) {
  Matrix grad;
  double loss = MaeLossInto(pred, target, &grad);
  return {loss, std::move(grad)};
}

void RowSoftmaxInto(const Matrix& logits, Matrix* out) {
  *out = logits;
  for (size_t r = 0; r < out->rows(); ++r) {
    double* row = out->row_data(r);
    double mx = row[0];
    for (size_t c = 1; c < out->cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (size_t c = 0; c < out->cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (size_t c = 0; c < out->cols(); ++c) row[c] /= sum;
  }
}

Matrix RowSoftmax(const Matrix& logits) {
  Matrix out;
  RowSoftmaxInto(logits, &out);
  return out;
}

double SoftCrossEntropyLossInto(const Matrix& logits,
                                const Matrix& soft_targets, Matrix* grad,
                                Matrix* probs_ws) {
  assert(logits.rows() == soft_targets.rows() &&
         logits.cols() == soft_targets.cols());
  RowSoftmaxInto(logits, probs_ws);
  double loss = 0.0;
  grad->Resize(logits.rows(), logits.cols());
  double batch = static_cast<double>(logits.rows());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const double* trow = soft_targets.row_data(r);
    const double* prow = probs_ws->row_data(r);
    double* grow = grad->row_data(r);
    for (size_t c = 0; c < logits.cols(); ++c) {
      double t = trow[c];
      double p = std::max(prow[c], 1e-12);
      if (t > 0.0) loss -= t * std::log(p);
      // d(CE)/dlogit = softmax - target (per row), averaged over batch.
      grow[c] = (prow[c] - t) / batch;
    }
  }
  return loss / batch;
}

std::pair<double, Matrix> SoftCrossEntropyLoss(const Matrix& logits,
                                               const Matrix& soft_targets) {
  Matrix grad, probs;
  double loss = SoftCrossEntropyLossInto(logits, soft_targets, &grad, &probs);
  return {loss, std::move(grad)};
}

}  // namespace easytime::nn
