#pragma once

/// \file optimizer.h
/// \brief Parameter update rules. Layers expose Param* lists; optimizers
/// step on those after each backward pass and zero gradients.

#include <vector>

#include "nn/matrix.h"

namespace easytime::nn {

/// \brief Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using each param's accumulated gradient.
  virtual void Step() = 0;

  /// Clears all gradients (call after Step).
  void ZeroGrad() {
    for (Param* p : params_) p->ZeroGrad();
  }

  /// Rescales gradients so their global L2 norm is at most \p max_norm.
  void ClipGradNorm(double max_norm);

 protected:
  std::vector<Param*> params_;
};

/// SGD with momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0);
  void Step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<Matrix> m_, v_;
};

}  // namespace easytime::nn
