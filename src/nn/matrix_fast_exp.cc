#include "nn/matrix_fast.h"

#include <cmath>

namespace easytime::nn::kernel {

// Compiled with -ffast-math (see src/nn/CMakeLists.txt): __FAST_MATH__ turns
// on glibc's SIMD declarations for exp, so this loop vectorizes into libmvec
// calls instead of 145k scalar exp@PLT calls per contrastive-loss step. The
// TU is kept to this one function because -ffast-math implies
// -ffinite-math-only; callers guarantee finite inputs (max-shifted logits).
double ExpSumFast(double* v, size_t n, double shift) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::exp(v[i] - shift);
    sum += v[i];
  }
  return sum;
}

}  // namespace easytime::nn::kernel
