#pragma once

/// \file matrix_fast.h
/// \brief Fast-tier GEMM kernels (internal; dispatched from kernel::GemmAcc
/// and friends when MatrixMode != kReference). The implementations live in
/// matrix_fast.cc, the one TU compiled with -ffp-contract=fast and the host
/// ISA, so mul+add chains contract to FMA. The *F32 variants compute in
/// float32 (operand panels are packed to float; partial sums are folded back
/// into the fp64 C at k-block granularity) while every interface stays
/// double, so callers never change and losses/metrics keep fp64.
///
/// These kernels carry NO bit-exactness guarantee; their accuracy envelope
/// is pinned by tests/test_fast_math.cc.

#include <cstddef>

namespace easytime::nn::kernel {

/// C (m x n) += A (m x k) * B (k x n), FMA-contracted fp64.
void GemmAccFast(size_t m, size_t n, size_t k, const double* a, size_t lda,
                 const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n) += A * B with float32 multiply-accumulate.
void GemmAccFastF32(size_t m, size_t n, size_t k, const double* a, size_t lda,
                    const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n) += A^T * B with A (k x m), B (k x n), FMA-contracted fp64.
void GemmTransAAccFast(size_t m, size_t n, size_t k, const double* a,
                       size_t lda, const double* b, size_t ldb, double* c,
                       size_t ldc);

/// float32 variant of GemmTransAAccFast.
void GemmTransAAccFastF32(size_t m, size_t n, size_t k, const double* a,
                          size_t lda, const double* b, size_t ldb, double* c,
                          size_t ldc);

/// C (m x n) += A * B^T with A (m x k), B (n x k), FMA-contracted fp64.
void GemmTransBAccFast(size_t m, size_t n, size_t k, const double* a,
                       size_t lda, const double* b, size_t ldb, double* c,
                       size_t ldc);

/// float32 variant of GemmTransBAccFast.
void GemmTransBAccFastF32(size_t m, size_t n, size_t k, const double* a,
                          size_t lda, const double* b, size_t ldb, double* c,
                          size_t ldc);

/// sum_i a[i] * b[i], fp64 with a reassociated (vectorized) reduction.
/// For hot inner products outside GEMM (e.g. the contrastive loss) on the
/// fast tiers; the reference tier must keep its own strictly-ordered loops.
double DotFast(const double* a, const double* b, size_t n);

/// y += alpha * x over n fp64 elements, FMA-contracted.
void AxpyFast(size_t n, double alpha, const double* x, double* y);

/// In place v[i] = exp(v[i] - shift); returns sum(v). Vectorized through
/// libmvec (its own TU, matrix_fast_exp.cc, built with -ffast-math), so the
/// inputs MUST be finite; a max-shifted softmax logit row qualifies.
double ExpSumFast(double* v, size_t n, double shift);

}  // namespace easytime::nn::kernel
