#include "nn/optimizer.h"

#include <cmath>

namespace easytime::nn {

void Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (Param* p : params_) total += p->grad.SquaredNorm();
  total = std::sqrt(total);
  if (total <= max_norm || total == 0.0) return;
  double scale = max_norm / total;
  for (Param* p : params_) p->grad.Scale(scale);
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    if (momentum_ > 0.0) {
      velocity_[i].Scale(momentum_);
      velocity_[i].Axpy(1.0, p->grad);
      p->value.Axpy(-lr_, velocity_[i]);
    } else {
      p->value.Axpy(-lr_, p->grad);
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, t_);
  double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& m = m_[i].raw();
    auto& v = v_[i].raw();
    const auto& g = p->grad.raw();
    auto& val = p->value.raw();
    for (size_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      double mhat = m[j] / bc1;
      double vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace easytime::nn
