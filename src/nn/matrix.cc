#include "nn/matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/thread_pool.h"
#include "nn/matrix_fast.h"

namespace easytime::nn {

namespace {

MatrixMode ModeFromEnv() {
  const char* env = std::getenv("EASYTIME_FAST_MATH");
  if (env == nullptr) return MatrixMode::kReference;
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
      std::strcmp(env, "fast") == 0) {
    return MatrixMode::kFast;
  }
  if (std::strcmp(env, "2") == 0 || std::strcmp(env, "f32") == 0) {
    return MatrixMode::kFastF32;
  }
  return MatrixMode::kReference;
}

std::atomic<int>& ModeFlag() {
  static std::atomic<int> mode{static_cast<int>(ModeFromEnv())};
  return mode;
}

}  // namespace

MatrixMode GetMatrixMode() {
  return static_cast<MatrixMode>(ModeFlag().load(std::memory_order_relaxed));
}

void SetMatrixMode(MatrixMode mode) {
  ModeFlag().store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace kernel {

namespace {

// Panel sizes: the (kKBlock x kNBlock) B panel is 128 KiB, sized to sit in
// L2 while the four active C rows (kMr x kNBlock = 8 KiB) stay in L1.
constexpr size_t kKBlock = 64;
constexpr size_t kNBlock = 256;
constexpr size_t kMr = 4;

#if defined(__GNUC__)
// GCC/Clang vector extension: element-wise mul and add round exactly like
// the scalar code (this TU is built with -ffp-contract=off, so no FMA
// contraction), keeping the blocked kernel bit-identical to the naive
// reference. Width follows the best ISA the TU is compiled for.
#define EASYTIME_GEMM_VECTOR_KERNEL 1
#if defined(__AVX512F__)
typedef double VecD __attribute__((vector_size(64)));
#elif defined(__AVX__)
typedef double VecD __attribute__((vector_size(32)));
#else
typedef double VecD __attribute__((vector_size(16)));
#endif
constexpr size_t kVw = sizeof(VecD) / sizeof(double);
constexpr size_t kNr = 2 * kVw;  ///< micro-tile width: 2 vectors per C row

inline VecD LoadV(const double* p) {
  VecD v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreV(double* p, VecD v) { __builtin_memcpy(p, &v, sizeof(v)); }
// Braced init lowers to a single vbroadcastsd; a lane loop would emit one
// masked insert per lane.
inline VecD Splat(double x) {
  if constexpr (kVw == 8) {
    return VecD{x, x, x, x, x, x, x, x};
  } else if constexpr (kVw == 4) {
    return VecD{x, x, x, x};
  } else {
    return VecD{x, x};
  }
}
#else
constexpr size_t kNr = 8;
#endif

// Row-parallel dispatch threshold (m*n*k). Below this the ParallelFor
// handoff costs more than it saves.
constexpr size_t kParallelMinWork = size_t{1} << 22;

/// (kMr x kNr) register micro-kernel over a packed B strip (kNr contiguous
/// doubles per k step): accumulators live in local arrays for the whole
/// k-block (the compiler keeps them in registers because they cannot alias
/// the packed panel), so C traffic is one load + one store per block instead
/// of per k. Each accumulator chain still adds its terms in ascending k
/// order.
inline void MicroKernel4xN(size_t kb, const double* a0, const double* a1,
                           const double* a2, const double* a3,
                           const double* bp, double* c0, double* c1,
                           double* c2, double* c3) {
#if defined(EASYTIME_GEMM_VECTOR_KERNEL)
  VecD acc00 = LoadV(c0), acc01 = LoadV(c0 + kVw);
  VecD acc10 = LoadV(c1), acc11 = LoadV(c1 + kVw);
  VecD acc20 = LoadV(c2), acc21 = LoadV(c2 + kVw);
  VecD acc30 = LoadV(c3), acc31 = LoadV(c3 + kVw);
  for (size_t kk = 0; kk < kb; ++kk) {
    const double* br = bp + kk * kNr;
    const VecD b0 = LoadV(br);
    const VecD b1 = LoadV(br + kVw);
    VecD av;
    av = Splat(a0[kk]);
    acc00 += av * b0;
    acc01 += av * b1;
    av = Splat(a1[kk]);
    acc10 += av * b0;
    acc11 += av * b1;
    av = Splat(a2[kk]);
    acc20 += av * b0;
    acc21 += av * b1;
    av = Splat(a3[kk]);
    acc30 += av * b0;
    acc31 += av * b1;
  }
  StoreV(c0, acc00);
  StoreV(c0 + kVw, acc01);
  StoreV(c1, acc10);
  StoreV(c1 + kVw, acc11);
  StoreV(c2, acc20);
  StoreV(c2 + kVw, acc21);
  StoreV(c3, acc30);
  StoreV(c3 + kVw, acc31);
#else
  double acc0[kNr], acc1[kNr], acc2[kNr], acc3[kNr];
  for (size_t jj = 0; jj < kNr; ++jj) {
    acc0[jj] = c0[jj];
    acc1[jj] = c1[jj];
    acc2[jj] = c2[jj];
    acc3[jj] = c3[jj];
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const double av0 = a0[kk];
    const double av1 = a1[kk];
    const double av2 = a2[kk];
    const double av3 = a3[kk];
    const double* br = bp + kk * kNr;
    for (size_t jj = 0; jj < kNr; ++jj) {
      const double bv = br[jj];
      acc0[jj] += av0 * bv;
      acc1[jj] += av1 * bv;
      acc2[jj] += av2 * bv;
      acc3[jj] += av3 * bv;
    }
  }
  for (size_t jj = 0; jj < kNr; ++jj) {
    c0[jj] = acc0[jj];
    c1[jj] = acc1[jj];
    c2[jj] = acc2[jj];
    c3[jj] = acc3[jj];
  }
#endif
}

/// Streaming row-broadcast kernel for short C row ranges, where packing a B
/// panel would not amortize: walks B rows sequentially, accumulating into C
/// in ascending k order.
void GemmAccRowsStreaming(size_t i_begin, size_t i_end, size_t n, size_t k,
                          const double* a, size_t lda, const double* b,
                          size_t ldb, double* c, size_t ldc) {
  for (size_t i = i_begin; i < i_end; ++i) {
    const double* ar = a + i * lda;
    double* cr = c + i * ldc;
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = ar[kk];
      const double* br = b + kk * ldb;
      for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

/// Serial blocked GEMM over C rows [i_begin, i_end); each C element
/// accumulates its k terms one by one in ascending order. The active B panel
/// is packed into contiguous kNr-wide strips so the micro-kernel reads it
/// sequentially (the raw panel's ldb-strided columns thrash L1 sets).
/// Packing is a pure copy, so results are unchanged.
void GemmAccRows(size_t i_begin, size_t i_end, size_t n, size_t k,
                 const double* a, size_t lda, const double* b, size_t ldb,
                 double* c, size_t ldc) {
  if (i_end - i_begin < 2 * kMr) {
    GemmAccRowsStreaming(i_begin, i_end, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  thread_local std::vector<double> packb;
  packb.resize(kKBlock * kNBlock);
  for (size_t j0 = 0; j0 < n; j0 += kNBlock) {
    const size_t jend = std::min(n, j0 + kNBlock);
    const size_t full_tiles = (jend - j0) / kNr;
    const size_t tiled_w = full_tiles * kNr;
    for (size_t k0 = 0; k0 < k; k0 += kKBlock) {
      const size_t kend = std::min(k, k0 + kKBlock);
      const size_t kb = kend - k0;
      // Pack: strip t holds B(k0..kend, j0+t*kNr .. +kNr) as kb rows of kNr.
      for (size_t kk = 0; kk < kb; ++kk) {
        const double* br = b + (k0 + kk) * ldb + j0;
        double* dst = packb.data() + kk * kNr;
        for (size_t t = 0; t < full_tiles; ++t) {
          std::copy(br + t * kNr, br + (t + 1) * kNr, dst + t * kb * kNr);
        }
      }
      size_t i = i_begin;
      for (; i + kMr <= i_end; i += kMr) {
        const double* a0 = a + i * lda + k0;
        const double* a1 = a0 + lda;
        const double* a2 = a1 + lda;
        const double* a3 = a2 + lda;
        double* c0 = c + i * ldc + j0;
        double* c1 = c0 + ldc;
        double* c2 = c1 + ldc;
        double* c3 = c2 + ldc;
        for (size_t t = 0; t < full_tiles; ++t) {
          MicroKernel4xN(kb, a0, a1, a2, a3, packb.data() + t * kb * kNr,
                         c0 + t * kNr, c1 + t * kNr, c2 + t * kNr,
                         c3 + t * kNr);
        }
        for (size_t j = j0 + tiled_w; j < jend; ++j) {
          double s0 = c0[j - j0], s1 = c1[j - j0];
          double s2 = c2[j - j0], s3 = c3[j - j0];
          for (size_t kk = k0; kk < kend; ++kk) {
            const double bv = b[kk * ldb + j];
            s0 += a0[kk - k0] * bv;
            s1 += a1[kk - k0] * bv;
            s2 += a2[kk - k0] * bv;
            s3 += a3[kk - k0] * bv;
          }
          c0[j - j0] = s0;
          c1[j - j0] = s1;
          c2[j - j0] = s2;
          c3[j - j0] = s3;
        }
      }
      for (; i < i_end; ++i) {
        const double* ar = a + i * lda + k0;
        double* cr = c + i * ldc + j0;
        for (size_t t = 0; t < full_tiles; ++t) {
          const double* bp = packb.data() + t * kb * kNr;
          double acc[kNr];
          for (size_t jj = 0; jj < kNr; ++jj) acc[jj] = cr[t * kNr + jj];
          for (size_t kk = 0; kk < kb; ++kk) {
            const double av = ar[kk];
            const double* br = bp + kk * kNr;
            for (size_t jj = 0; jj < kNr; ++jj) acc[jj] += av * br[jj];
          }
          for (size_t jj = 0; jj < kNr; ++jj) cr[t * kNr + jj] = acc[jj];
        }
        for (size_t j = j0 + tiled_w; j < jend; ++j) {
          double s = cr[j - j0];
          for (size_t kk = k0; kk < kend; ++kk) {
            s += ar[kk - k0] * b[kk * ldb + j];
          }
          cr[j - j0] = s;
        }
      }
    }
  }
}

}  // namespace

void GemmAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  switch (GetMatrixMode()) {
    case MatrixMode::kFast:
      GemmAccFast(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kFastF32:
      GemmAccFastF32(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kReference:
      break;
  }
  // Row ranges are independent, so splitting them across the shared pool is
  // deterministic (each C element is produced by exactly one thread with the
  // same instruction sequence as the serial path). With fewer than two
  // workers the split just timeshares one core, so stay serial.
  if (m >= 2 * kMr && m * n * k >= kParallelMinWork &&
      GlobalThreadPool().size() >= 2) {
    ThreadPool& pool = GlobalThreadPool();
    const size_t blocks =
        std::min(pool.size() + 1, m / kMr);
    if (blocks > 1) {
      const size_t rows_per = (m + blocks - 1) / blocks;
      pool.ParallelFor(blocks, [&](size_t bi) {
        const size_t i0 = bi * rows_per;
        const size_t i1 = std::min(m, i0 + rows_per);
        if (i0 < i1) GemmAccRows(i0, i1, n, k, a, lda, b, ldb, c, ldc);
      });
      return;
    }
  }
  GemmAccRows(0, m, n, k, a, lda, b, ldb, c, ldc);
}

void GemmTransAAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  switch (GetMatrixMode()) {
    case MatrixMode::kFast:
      GemmTransAAccFast(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kFastF32:
      GemmTransAAccFastF32(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kReference:
      break;
  }
  // C = A^T B accumulates as k rank-1 updates: for each kk, row kk of A and
  // row kk of B are both contiguous, and C (a gradient panel, small here)
  // stays cache-resident. Per-element order is kk-ascending.
  for (size_t kk = 0; kk < k; ++kk) {
    const double* ar = a + kk * lda;
    const double* br = b + kk * ldb;
    for (size_t i = 0; i < m; ++i) {
      const double av = ar[i];
      double* cr = c + i * ldc;
      for (size_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

void GemmTransBAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* c, size_t ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  switch (GetMatrixMode()) {
    case MatrixMode::kFast:
      GemmTransBAccFast(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kFastF32:
      GemmTransBAccFastF32(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case MatrixMode::kReference:
      break;
  }
  // C[i][j] = dot(A row i, B row j): both operands stream contiguously.
  // 2x2 register tile -> four independent accumulator chains; each chain
  // adds its k terms sequentially in ascending order.
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + i * lda;
    const double* a1 = a0 + lda;
    double* c0 = c + i * ldc;
    double* c1 = c0 + ldc;
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const double* b0 = b + j * ldb;
      const double* b1 = b0 + ldb;
      double s00 = c0[j];
      double s01 = c0[j + 1];
      double s10 = c1[j];
      double s11 = c1[j + 1];
      for (size_t kk = 0; kk < k; ++kk) {
        const double av0 = a0[kk];
        const double av1 = a1[kk];
        const double bv0 = b0[kk];
        const double bv1 = b1[kk];
        s00 += av0 * bv0;
        s01 += av0 * bv1;
        s10 += av1 * bv0;
        s11 += av1 * bv1;
      }
      c0[j] = s00;
      c0[j + 1] = s01;
      c1[j] = s10;
      c1[j + 1] = s11;
    }
    for (; j < n; ++j) {
      const double* b0 = b + j * ldb;
      double s0 = c0[j];
      double s1 = c1[j];
      for (size_t kk = 0; kk < k; ++kk) {
        s0 += a0[kk] * b0[kk];
        s1 += a1[kk] * b0[kk];
      }
      c0[j] = s0;
      c1[j] = s1;
    }
  }
  for (; i < m; ++i) {
    const double* a0 = a + i * lda;
    double* c0 = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const double* b0 = b + j * ldb;
      double s0 = c0[j];
      for (size_t kk = 0; kk < k; ++kk) s0 += a0[kk] * b0[kk];
      c0[j] = s0;
    }
  }
}

}  // namespace kernel

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::FromVector(const std::vector<double>& v) {
  Matrix m(1, v.size());
  m.data_ = v;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::Fill(double v) {
  for (auto& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(double s) {
  for (auto& x : data_) x *= s;
}

void Matrix::Axpy(double s, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  Matrix out;
  HadamardInto(*this, other, &out);
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(*this, other, &out);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0);
  kernel::GemmAcc(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), b.data(),
                  b.cols(), out->data(), b.cols());
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  if (!accumulate) {
    out->Resize(a.cols(), b.cols());
    out->Fill(0.0);
  } else {
    assert(out->rows() == a.cols() && out->cols() == b.cols());
  }
  kernel::GemmTransAAcc(a.cols(), b.cols(), a.rows(), a.data(), a.cols(),
                        b.data(), b.cols(), out->data(), b.cols());
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransAInto(a, b, &out);
  return out;
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  if (!accumulate) {
    out->Resize(a.rows(), b.rows());
    out->Fill(0.0);
  } else {
    assert(out->rows() == a.rows() && out->cols() == b.rows());
  }
  kernel::GemmTransBAcc(a.rows(), b.rows(), a.cols(), a.data(), a.cols(),
                        b.data(), b.cols(), out->data(), b.rows());
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix out;
  MatMulTransBInto(a, b, &out);
  return out;
}

void AddInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  out->Resize(a.rows(), b.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  out->Resize(a.rows(), b.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

}  // namespace easytime::nn
