#include "nn/matrix.h"

#include <cmath>

namespace easytime::nn {

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng->Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::FromVector(const std::vector<double>& v) {
  Matrix m(1, v.size());
  m.data_ = v;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

void Matrix::Fill(double v) {
  for (auto& x : data_) x = v;
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(double s) {
  for (auto& x : data_) x *= s;
}

void Matrix::Axpy(double s, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

}  // namespace easytime::nn
