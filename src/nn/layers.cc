#include "nn/layers.h"

#include <cmath>

namespace easytime::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(Matrix::Xavier(in_features, out_features, rng)),
      bias_(Matrix::Zeros(1, out_features)) {}

void Linear::ForwardInto(const Matrix& x, Matrix* out) {
  cached_input_ = x;
  ForwardConst(x, out);
}

void Linear::ForwardConst(const Matrix& x, Matrix* out) const {
  MatMulInto(x, weight_.value, out);
  const double* bias = bias_.value.data();
  for (size_t r = 0; r < out->rows(); ++r) {
    double* orow = out->row_data(r);
    for (size_t c = 0; c < out->cols(); ++c) orow[c] += bias[c];
  }
}

void Linear::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  // dW = x^T g ; db = column sums of g ; dx = g W^T. dW is built in a
  // zeroed workspace and summed into the grad in one shot, matching the
  // accumulation order of grad.Add(x.Transposed().MatMul(g)).
  MatMulTransAInto(cached_input_, grad_out, &dw_ws_, /*accumulate=*/false);
  weight_.grad.Add(dw_ws_);
  double* bias_grad = bias_.grad.data();
  for (size_t r = 0; r < grad_out.rows(); ++r) {
    const double* grow = grad_out.row_data(r);
    for (size_t c = 0; c < grad_out.cols(); ++c) bias_grad[c] += grow[c];
  }
  MatMulTransBInto(grad_out, weight_.value, grad_in);
}

void ReLU::ForwardInto(const Matrix& x, Matrix* out) {
  cached_input_ = x;
  ForwardConst(x, out);
}

void ReLU::ForwardConst(const Matrix& x, Matrix* out) const {
  out->Resize(x.rows(), x.cols());
  const double* px = x.data();
  double* po = out->data();
  for (size_t i = 0; i < x.size(); ++i) po[i] = px[i] > 0.0 ? px[i] : 0.0;
}

void ReLU::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  grad_in->Resize(grad_out.rows(), grad_out.cols());
  const double* pg = grad_out.data();
  const double* px = cached_input_.data();
  double* po = grad_in->data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    po[i] = px[i] <= 0.0 ? 0.0 : pg[i];
  }
}

void Tanh::ForwardInto(const Matrix& x, Matrix* out) {
  ForwardConst(x, out);
  cached_output_ = *out;
}

void Tanh::ForwardConst(const Matrix& x, Matrix* out) const {
  out->Resize(x.rows(), x.cols());
  const double* px = x.data();
  double* po = out->data();
  for (size_t i = 0; i < x.size(); ++i) po[i] = std::tanh(px[i]);
}

void Tanh::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  grad_in->Resize(grad_out.rows(), grad_out.cols());
  const double* pg = grad_out.data();
  const double* py = cached_output_.data();
  double* po = grad_in->data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    po[i] = pg[i] * (1.0 - py[i] * py[i]);
  }
}

void Sigmoid::ForwardInto(const Matrix& x, Matrix* out) {
  ForwardConst(x, out);
  cached_output_ = *out;
}

void Sigmoid::ForwardConst(const Matrix& x, Matrix* out) const {
  out->Resize(x.rows(), x.cols());
  const double* px = x.data();
  double* po = out->data();
  for (size_t i = 0; i < x.size(); ++i) po[i] = 1.0 / (1.0 + std::exp(-px[i]));
}

void Sigmoid::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  grad_in->Resize(grad_out.rows(), grad_out.cols());
  const double* pg = grad_out.data();
  const double* py = cached_output_.data();
  double* po = grad_in->data();
  for (size_t i = 0; i < grad_out.size(); ++i) {
    po[i] = pg[i] * py[i] * (1.0 - py[i]);
  }
}

void Sequential::ForwardInto(const Matrix& x, Matrix* out) {
  if (layers_.empty()) {
    *out = x;
    return;
  }
  const Matrix* cur = &x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    Matrix* dst = &fwd_ws_[i % 2];
    layers_[i]->ForwardInto(*cur, dst);
    cur = dst;
  }
  layers_.back()->ForwardInto(*cur, out);
}

void Sequential::ForwardConst(const Matrix& x, Matrix* out) const {
  if (layers_.empty()) {
    *out = x;
    return;
  }
  Matrix ws[2];
  const Matrix* cur = &x;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    Matrix* dst = &ws[i % 2];
    layers_[i]->ForwardConst(*cur, dst);
    cur = dst;
  }
  layers_.back()->ForwardConst(*cur, out);
}

void Sequential::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  if (layers_.empty()) {
    *grad_in = grad_out;
    return;
  }
  const Matrix* cur = &grad_out;
  size_t step = 0;
  for (size_t i = layers_.size(); i-- > 1; ++step) {
    Matrix* dst = &bwd_ws_[step % 2];
    layers_[i]->BackwardInto(*cur, dst);
    cur = dst;
  }
  layers_.front()->BackwardInto(*cur, grad_in);
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    auto p = layer->Params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

CausalConv1d::CausalConv1d(size_t in_channels, size_t out_channels,
                           size_t kernel_size, size_t dilation, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation == 0 ? 1 : dilation),
      weight_(Matrix::Xavier(kernel_size * in_channels, out_channels, rng)),
      bias_(Matrix::Zeros(1, out_channels)) {}

void CausalConv1d::ForwardInto(const Matrix& x, Matrix* out) {
  cached_input_ = x;
  ForwardConst(x, out);
}

void CausalConv1d::ForwardConst(const Matrix& x, Matrix* out) const {
  const size_t T = x.rows();
  out->Resize(T, out_channels_);
  // Bias is seeded before the tap accumulations, as in the scalar version;
  // taps then accumulate in ascending (kk, ci) order via the shifted GEMMs.
  const double* bias = bias_.value.data();
  for (size_t t = 0; t < T; ++t) {
    double* orow = out->row_data(t);
    for (size_t o = 0; o < out_channels_; ++o) orow[o] = bias[o];
  }
  for (size_t kk = 0; kk < kernel_size_; ++kk) {
    const size_t shift = kk * dilation_;
    if (shift >= T) break;
    kernel::GemmAcc(T - shift, out_channels_, in_channels_, x.data(),
                    in_channels_, weight_.value.row_data(kk * in_channels_),
                    out_channels_, out->row_data(shift), out_channels_);
  }
}

void CausalConv1d::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  const size_t T = cached_input_.rows();
  // The scalar version interleaved the three targets inside one t loop, but
  // each target element still received its contributions in ascending t
  // order, so three independent t-ascending passes accumulate identically.
  double* bias_grad = bias_.grad.data();
  for (size_t t = 0; t < T; ++t) {
    const double* grow = grad_out.row_data(t);
    for (size_t o = 0; o < out_channels_; ++o) bias_grad[o] += grow[o];
  }
  for (size_t kk = 0; kk < kernel_size_; ++kk) {
    const size_t shift = kk * dilation_;
    if (shift >= T) break;
    // dW_block(kk) += x[0..T-s)^T g[s..T)
    kernel::GemmTransAAcc(in_channels_, out_channels_, T - shift,
                          cached_input_.data(), in_channels_,
                          grad_out.row_data(shift), out_channels_,
                          weight_.grad.row_data(kk * in_channels_),
                          out_channels_);
  }
  grad_in->Resize(T, in_channels_);
  grad_in->Fill(0.0);
  for (size_t kk = 0; kk < kernel_size_; ++kk) {
    const size_t shift = kk * dilation_;
    if (shift >= T) break;
    // dx[0..T-s) += g[s..T) W_block(kk)^T
    kernel::GemmTransBAcc(T - shift, in_channels_, out_channels_,
                          grad_out.row_data(shift), out_channels_,
                          weight_.value.row_data(kk * in_channels_),
                          out_channels_, grad_in->data(), in_channels_);
  }
}

ResidualConvBlock::ResidualConvBlock(size_t in_channels, size_t out_channels,
                                     size_t kernel_size, size_t dilation,
                                     Rng* rng)
    : conv1_(in_channels, out_channels, kernel_size, dilation, rng),
      conv2_(out_channels, out_channels, kernel_size, dilation, rng) {
  if (in_channels != out_channels) {
    skip_ = std::make_unique<CausalConv1d>(in_channels, out_channels, 1, 1,
                                           rng);
  }
}

void ResidualConvBlock::ForwardInto(const Matrix& x, Matrix* out) {
  conv1_.ForwardInto(x, &ws1_);
  relu1_.ForwardInto(ws1_, &ws2_);
  conv2_.ForwardInto(ws2_, out);
  if (skip_) {
    skip_->ForwardInto(x, &skip_ws_);
    out->Add(skip_ws_);
  } else {
    out->Add(x);
  }
}

void ResidualConvBlock::ForwardConst(const Matrix& x, Matrix* out) const {
  Matrix ws1, ws2;
  conv1_.ForwardConst(x, &ws1);
  relu1_.ForwardConst(ws1, &ws2);
  conv2_.ForwardConst(ws2, out);
  if (skip_) {
    Matrix skip_ws;
    skip_->ForwardConst(x, &skip_ws);
    out->Add(skip_ws);
  } else {
    out->Add(x);
  }
}

void ResidualConvBlock::BackwardInto(const Matrix& grad_out, Matrix* grad_in) {
  conv2_.BackwardInto(grad_out, &bws1_);
  relu1_.BackwardInto(bws1_, &bws2_);
  conv1_.BackwardInto(bws2_, grad_in);
  if (skip_) {
    skip_->BackwardInto(grad_out, &skip_bws_);
    grad_in->Add(skip_bws_);
  } else {
    grad_in->Add(grad_out);
  }
}

std::vector<Param*> ResidualConvBlock::Params() {
  std::vector<Param*> out = conv1_.Params();
  auto p2 = conv2_.Params();
  out.insert(out.end(), p2.begin(), p2.end());
  if (skip_) {
    auto ps = skip_->Params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

}  // namespace easytime::nn
