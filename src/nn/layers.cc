#include "nn/layers.h"

#include <cmath>

namespace easytime::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(Matrix::Xavier(in_features, out_features, rng)),
      bias_(Matrix::Zeros(1, out_features)) {}

Matrix Linear::Forward(const Matrix& x) {
  cached_input_ = x;
  Matrix out = x.MatMul(weight_.value);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) += bias_.value.at(0, c);
    }
  }
  return out;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  // dW = x^T g ; db = column sums of g ; dx = g W^T.
  Matrix dw = cached_input_.Transposed().MatMul(grad_out);
  weight_.grad.Add(dw);
  for (size_t r = 0; r < grad_out.rows(); ++r) {
    for (size_t c = 0; c < grad_out.cols(); ++c) {
      bias_.grad.at(0, c) += grad_out.at(r, c);
    }
  }
  return grad_out.MatMul(weight_.value.Transposed());
}

Matrix ReLU::Forward(const Matrix& x) {
  cached_input_ = x;
  Matrix out = x;
  for (auto& v : out.raw()) v = v > 0.0 ? v : 0.0;
  return out;
}

Matrix ReLU::Backward(const Matrix& grad_out) {
  Matrix out = grad_out;
  for (size_t i = 0; i < out.raw().size(); ++i) {
    if (cached_input_.raw()[i] <= 0.0) out.raw()[i] = 0.0;
  }
  return out;
}

Matrix Tanh::Forward(const Matrix& x) {
  Matrix out = x;
  for (auto& v : out.raw()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Matrix Tanh::Backward(const Matrix& grad_out) {
  Matrix out = grad_out;
  for (size_t i = 0; i < out.raw().size(); ++i) {
    double y = cached_output_.raw()[i];
    out.raw()[i] *= (1.0 - y * y);
  }
  return out;
}

Matrix Sigmoid::Forward(const Matrix& x) {
  Matrix out = x;
  for (auto& v : out.raw()) v = 1.0 / (1.0 + std::exp(-v));
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::Backward(const Matrix& grad_out) {
  Matrix out = grad_out;
  for (size_t i = 0; i < out.raw().size(); ++i) {
    double y = cached_output_.raw()[i];
    out.raw()[i] *= y * (1.0 - y);
  }
  return out;
}

Matrix Sequential::Forward(const Matrix& x) {
  Matrix cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur);
  return cur;
}

Matrix Sequential::Backward(const Matrix& grad_out) {
  Matrix cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->Backward(cur);
  }
  return cur;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    auto p = layer->Params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

CausalConv1d::CausalConv1d(size_t in_channels, size_t out_channels,
                           size_t kernel_size, size_t dilation, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation == 0 ? 1 : dilation),
      weight_(Matrix::Xavier(kernel_size * in_channels, out_channels, rng)),
      bias_(Matrix::Zeros(1, out_channels)) {}

Matrix CausalConv1d::Forward(const Matrix& x) {
  cached_input_ = x;
  size_t T = x.rows();
  Matrix out(T, out_channels_);
  for (size_t t = 0; t < T; ++t) {
    for (size_t o = 0; o < out_channels_; ++o) {
      out.at(t, o) = bias_.value.at(0, o);
    }
    for (size_t kk = 0; kk < kernel_size_; ++kk) {
      // tap index: t - kk * dilation (causal; zero-padded on the left)
      long src = static_cast<long>(t) - static_cast<long>(kk * dilation_);
      if (src < 0) continue;
      for (size_t ci = 0; ci < in_channels_; ++ci) {
        double xv = x.at(static_cast<size_t>(src), ci);
        if (xv == 0.0) continue;
        const size_t wrow = kk * in_channels_ + ci;
        for (size_t o = 0; o < out_channels_; ++o) {
          out.at(t, o) += xv * weight_.value.at(wrow, o);
        }
      }
    }
  }
  return out;
}

Matrix CausalConv1d::Backward(const Matrix& grad_out) {
  size_t T = cached_input_.rows();
  Matrix dx(T, in_channels_);
  for (size_t t = 0; t < T; ++t) {
    for (size_t o = 0; o < out_channels_; ++o) {
      double g = grad_out.at(t, o);
      if (g == 0.0) continue;
      bias_.grad.at(0, o) += g;
      for (size_t kk = 0; kk < kernel_size_; ++kk) {
        long src = static_cast<long>(t) - static_cast<long>(kk * dilation_);
        if (src < 0) continue;
        for (size_t ci = 0; ci < in_channels_; ++ci) {
          const size_t wrow = kk * in_channels_ + ci;
          weight_.grad.at(wrow, o) +=
              g * cached_input_.at(static_cast<size_t>(src), ci);
          dx.at(static_cast<size_t>(src), ci) += g * weight_.value.at(wrow, o);
        }
      }
    }
  }
  return dx;
}

ResidualConvBlock::ResidualConvBlock(size_t in_channels, size_t out_channels,
                                     size_t kernel_size, size_t dilation,
                                     Rng* rng)
    : conv1_(in_channels, out_channels, kernel_size, dilation, rng),
      conv2_(out_channels, out_channels, kernel_size, dilation, rng) {
  if (in_channels != out_channels) {
    skip_ = std::make_unique<CausalConv1d>(in_channels, out_channels, 1, 1,
                                           rng);
  }
}

Matrix ResidualConvBlock::Forward(const Matrix& x) {
  Matrix h = conv2_.Forward(relu1_.Forward(conv1_.Forward(x)));
  Matrix skip = skip_ ? skip_->Forward(x) : x;
  h.Add(skip);
  return h;
}

Matrix ResidualConvBlock::Backward(const Matrix& grad_out) {
  Matrix dmain = conv1_.Backward(relu1_.Backward(conv2_.Backward(grad_out)));
  Matrix dskip = skip_ ? skip_->Backward(grad_out) : grad_out;
  dmain.Add(dskip);
  return dmain;
}

std::vector<Param*> ResidualConvBlock::Params() {
  std::vector<Param*> out = conv1_.Params();
  auto p2 = conv2_.Params();
  out.insert(out.end(), p2.begin(), p2.end());
  if (skip_) {
    auto ps = skip_->Params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

}  // namespace easytime::nn
