#pragma once

/// \file matrix.h
/// \brief Dense row-major matrix used as the tensor type of the mini NN
/// engine. Sequences are (time x channels) matrices; batches are vectors of
/// matrices. Sized for CPU training of the small models EasyTime uses
/// (TS2Vec encoder, method classifier, MLP/GRU/TCN forecasters).
///
/// The hot products go through cache-blocked, register-tiled GEMM kernels
/// (kernel::GemmAcc and friends) that accumulate each output element in
/// strictly ascending k order, so they are bit-compatible with the naive
/// reference kernel (MatMulNaive) kept for equivalence testing.

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace easytime::nn {

/// \brief Numeric tier of the GEMM kernels (DESIGN.md §10). The reference
/// tier is the default: bit-exact ascending-k accumulation with FMA
/// contraction disabled, pinned by the determinism suite. The fast tiers
/// trade bit-exactness for speed and are covered by the relaxed-tolerance
/// suite (tests/test_fast_math.cc) instead.
enum class MatrixMode : int {
  /// Bit-exact kernels; blocked == naive bit-for-bit.
  kReference = 0,
  /// FMA-contracted fp64 kernels compiled for the host ISA.
  kFast = 1,
  /// float32 multiply-accumulate inside a k-block, fp64 storage and fp64
  /// accumulation across blocks (and at all loss/metric boundaries, which
  /// never leave fp64). Fastest tier for the encoder stack.
  kFastF32 = 2,
};

/// The process-wide kernel tier. Initialized once from EASYTIME_FAST_MATH
/// ("1"/"on"/"fast" = kFast, "2"/"f32" = kFastF32, anything else =
/// reference); reads are a single relaxed atomic load.
MatrixMode GetMatrixMode();
void SetMatrixMode(MatrixMode mode);

/// RAII mode override for tests and benchmarks.
class ScopedMatrixMode {
 public:
  explicit ScopedMatrixMode(MatrixMode mode) : previous_(GetMatrixMode()) {
    SetMatrixMode(mode);
  }
  ~ScopedMatrixMode() { SetMatrixMode(previous_); }
  ScopedMatrixMode(const ScopedMatrixMode&) = delete;
  ScopedMatrixMode& operator=(const ScopedMatrixMode&) = delete;

 private:
  MatrixMode previous_;
};

/// \brief Raw row-major GEMM micro-kernels. All variants *accumulate* into C
/// (callers zero or bias-seed C first). In MatrixMode::kReference they keep
/// per-element accumulation in ascending k order, which makes them drop-in
/// replacements for naive loops without numerical drift; the fast tiers
/// dispatch to FMA/float32 kernels instead. Strides (lda/ldb/ldc) are row
/// strides, allowing shifted / sub-panel views (used by the causal
/// convolutions).
namespace kernel {

/// C (m x n) += A (m x k) * B (k x n).
void GemmAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
             const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n) += A^T * B where A is (k x m), B is (k x n). The transpose is
/// fused into the access pattern; no transposed copy is materialized.
void GemmTransAAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* c, size_t ldc);

/// C (m x n) += A * B^T where A is (m x k), B is (n x k). Fused transpose.
void GemmTransBAcc(size_t m, size_t n, size_t k, const double* a, size_t lda,
                   const double* b, size_t ldb, double* c, size_t ldc);

}  // namespace kernel

/// \brief A dense row-major double matrix with the handful of operations the
/// layer implementations need.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot uniform initialization.
  static Matrix Xavier(size_t rows, size_t cols, Rng* rng);

  /// Gaussian initialization with the given std.
  static Matrix Gaussian(size_t rows, size_t cols, double stddev, Rng* rng);

  /// Builds a 1 x n row vector from \p v.
  static Matrix FromVector(const std::vector<double>& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reshapes to (rows x cols) without initializing entries. Keeps the
  /// underlying buffer when the element count allows, so workspace matrices
  /// resized to a steady-state shape stop allocating after the first call.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// Pointer to row \p r.
  double* row_data(size_t r) { return data_.data() + r * cols_; }
  const double* row_data(size_t r) const { return data_.data() + r * cols_; }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Row r as a vector copy.
  std::vector<double> Row(size_t r) const;

  /// Sets all entries to \p v.
  void Fill(double v);

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= s.
  void Scale(double s);
  /// this += s * other (axpy, same shape).
  void Axpy(double s, const Matrix& other);

  /// Element-wise product (same shape).
  Matrix Hadamard(const Matrix& other) const;

  /// Matrix product: (m x k) * (k x n) -> (m x n). Blocked kernel.
  Matrix MatMul(const Matrix& other) const;

  /// Naive triple-loop reference product, kept for equivalence testing of
  /// the blocked kernels.
  Matrix MatMulNaive(const Matrix& other) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// Sum of all entries.
  double Sum() const;

  /// Frobenius norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b, blocked kernel; out is resized (buffer reused when possible).
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out (+)= a^T * b with a (k x m), b (k x n); no transposed copy is made.
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate = false);
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// out (+)= a * b^T with a (m x k), b (n x k); no transposed copy is made.
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate = false);
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// out = a + b (same shape); out is resized.
void AddInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a .* b (same shape); out is resized.
void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out);

/// \brief A trainable parameter: value plus accumulated gradient.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}
  Param() = default;

  void ZeroGrad() { grad.Fill(0.0); }
};

}  // namespace easytime::nn
