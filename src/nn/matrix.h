#pragma once

/// \file matrix.h
/// \brief Dense row-major matrix used as the tensor type of the mini NN
/// engine. Sequences are (time x channels) matrices; batches are vectors of
/// matrices. Sized for CPU training of the small models EasyTime uses
/// (TS2Vec encoder, method classifier, MLP/GRU/TCN forecasters).

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace easytime::nn {

/// \brief A dense row-major double matrix with the handful of operations the
/// layer implementations need.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot uniform initialization.
  static Matrix Xavier(size_t rows, size_t cols, Rng* rng);

  /// Gaussian initialization with the given std.
  static Matrix Gaussian(size_t rows, size_t cols, double stddev, Rng* rng);

  /// Builds a 1 x n row vector from \p v.
  static Matrix FromVector(const std::vector<double>& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Row r as a vector copy.
  std::vector<double> Row(size_t r) const;

  /// Sets all entries to \p v.
  void Fill(double v);

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= s.
  void Scale(double s);
  /// this += s * other (axpy, same shape).
  void Axpy(double s, const Matrix& other);

  /// Element-wise product (same shape).
  Matrix Hadamard(const Matrix& other) const;

  /// Matrix product: (m x k) * (k x n) -> (m x n).
  Matrix MatMul(const Matrix& other) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// Sum of all entries.
  double Sum() const;

  /// Frobenius norm squared.
  double SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief A trainable parameter: value plus accumulated gradient.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}
  Param() = default;

  void ZeroGrad() { grad.Fill(0.0); }
};

}  // namespace easytime::nn
