#include "nn/contrastive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/matrix_fast.h"

namespace easytime::nn {

namespace {

/// Accumulates one InfoNCE term: anchor dotted against candidates, softmax
/// cross-entropy with the positive at \p pos_index. cand[k] points at row
/// vectors of length D; grads are accumulated into ganchor / gcand[k].
/// \p logits is caller-provided scratch (resized here) so the per-term
/// buffer is allocated once per loss call, not once per term.
/// \p fast routes the dot products, the softmax exp row, and the rank-1 grad
/// updates through the vectorized helpers of the fast kernel TUs — still
/// double precision, but reassociated sums and libmvec exp, so only the
/// non-reference tiers use it (the reference tier's strictly-ordered loops
/// are golden-pinned by test_determinism).
double InfoNceTerm(const double* anchor,
                   const std::vector<const double*>& cand, size_t pos_index,
                   size_t dim, double* ganchor,
                   const std::vector<double*>& gcand, double weight,
                   std::vector<double>* logits_scratch, bool fast) {
  size_t k = cand.size();
  std::vector<double>& logits = *logits_scratch;
  logits.resize(k);
  double mx = -1e300;
  for (size_t i = 0; i < k; ++i) {
    double dot;
    if (fast) {
      dot = kernel::DotFast(anchor, cand[i], dim);
    } else {
      dot = 0.0;
      for (size_t d = 0; d < dim; ++d) dot += anchor[d] * cand[i][d];
    }
    logits[i] = dot;
    if (dot > mx) mx = dot;
  }
  double sum = 0.0;
  if (fast) {
    sum = kernel::ExpSumFast(logits.data(), k, mx);
  } else {
    for (size_t i = 0; i < k; ++i) {
      logits[i] = std::exp(logits[i] - mx);
      sum += logits[i];
    }
  }
  double loss = -std::log(std::max(logits[pos_index] / sum, 1e-300));
  for (size_t i = 0; i < k; ++i) {
    double p = logits[i] / sum;
    double coef = weight * (p - (i == pos_index ? 1.0 : 0.0));
    if (coef == 0.0) continue;
    if (fast) {
      kernel::AxpyFast(dim, coef, cand[i], ganchor);
      kernel::AxpyFast(dim, coef, anchor, gcand[i]);
    } else {
      for (size_t d = 0; d < dim; ++d) {
        ganchor[d] += coef * cand[i][d];
        gcand[i][d] += coef * anchor[d];
      }
    }
  }
  return weight * loss;
}

}  // namespace

double DualContrastiveLoss(const std::vector<Matrix>& view1,
                           const std::vector<Matrix>& view2, double alpha,
                           std::vector<Matrix>* grad1,
                           std::vector<Matrix>* grad2) {
  const size_t B = view1.size();
  assert(view2.size() == B);
  if (B == 0) return 0.0;
  const size_t T = view1[0].rows();
  const size_t D = view1[0].cols();

  if (grad1) {
    grad1->assign(B, Matrix(T, D));
  }
  if (grad2) {
    grad2->assign(B, Matrix(T, D));
  }
  // Local grads (always computed; cheap relative to the loss itself).
  std::vector<Matrix> g1(B, Matrix(T, D)), g2(B, Matrix(T, D));

  double loss = 0.0;
  size_t terms = 0;
  // One mode read per loss call; see InfoNceTerm's fast-path contract.
  const bool fast = GetMatrixMode() != MatrixMode::kReference;

  // Per-term scratch, hoisted out of the loops: clear() keeps capacity so
  // only the first term of each section allocates.
  std::vector<const double*> cand;
  std::vector<double*> gcand;
  std::vector<double> logits;

  // Instance contrast: anchor z1[i][t]; candidates z2[j][t] (all j) and
  // z1[j][t] (j != i). Symmetrized by swapping the views.
  if (B >= 2 && alpha > 0.0) {
    cand.reserve(2 * B - 1);
    gcand.reserve(2 * B - 1);
    for (size_t t = 0; t < T; ++t) {
      for (size_t i = 0; i < B; ++i) {
        for (int dir = 0; dir < 2; ++dir) {
          const auto& va = dir == 0 ? view1 : view2;
          const auto& vb = dir == 0 ? view2 : view1;
          auto& ga = dir == 0 ? g1 : g2;
          auto& gb = dir == 0 ? g2 : g1;
          const double* anchor = va[i].data() + t * D;
          double* ganchor = ga[i].data() + t * D;
          cand.clear();
          gcand.clear();
          size_t pos = 0;
          for (size_t j = 0; j < B; ++j) {
            if (j == i) pos = cand.size();
            cand.push_back(vb[j].data() + t * D);
            gcand.push_back(gb[j].data() + t * D);
          }
          for (size_t j = 0; j < B; ++j) {
            if (j == i) continue;
            cand.push_back(va[j].data() + t * D);
            gcand.push_back(ga[j].data() + t * D);
          }
          loss += InfoNceTerm(anchor, cand, pos, D, ganchor, gcand, alpha,
                              &logits, fast);
          ++terms;
        }
      }
    }
  }

  // Temporal contrast: anchor z1[i][t]; candidates z2[i][t'] (all t') and
  // z1[i][t'] (t' != t). Symmetrized.
  double beta = 1.0 - alpha;
  if (T >= 2 && beta > 0.0) {
    cand.reserve(2 * T - 1);
    gcand.reserve(2 * T - 1);
    for (size_t i = 0; i < B; ++i) {
      for (size_t t = 0; t < T; ++t) {
        for (int dir = 0; dir < 2; ++dir) {
          const auto& va = dir == 0 ? view1 : view2;
          const auto& vb = dir == 0 ? view2 : view1;
          auto& ga = dir == 0 ? g1 : g2;
          auto& gb = dir == 0 ? g2 : g1;
          const double* anchor = va[i].data() + t * D;
          double* ganchor = ga[i].data() + t * D;
          cand.clear();
          gcand.clear();
          size_t pos = 0;
          for (size_t u = 0; u < T; ++u) {
            if (u == t) pos = cand.size();
            cand.push_back(vb[i].data() + u * D);
            gcand.push_back(gb[i].data() + u * D);
          }
          for (size_t u = 0; u < T; ++u) {
            if (u == t) continue;
            cand.push_back(va[i].data() + u * D);
            gcand.push_back(ga[i].data() + u * D);
          }
          loss += InfoNceTerm(anchor, cand, pos, D, ganchor, gcand, beta,
                              &logits, fast);
          ++terms;
        }
      }
    }
  }

  if (terms == 0) return 0.0;
  double norm = 1.0 / static_cast<double>(terms);
  loss *= norm;
  for (size_t i = 0; i < B; ++i) {
    g1[i].Scale(norm);
    g2[i].Scale(norm);
    if (grad1) (*grad1)[i] = std::move(g1[i]);
    if (grad2) (*grad2)[i] = std::move(g2[i]);
  }
  return loss;
}

namespace {

/// Max-pool over time by 2; records the source row of each pooled entry.
Matrix MaxPoolTime(const Matrix& x, std::vector<size_t>* argmax) {
  size_t T = x.rows(), D = x.cols();
  size_t T2 = (T + 1) / 2;
  Matrix out(T2, D);
  argmax->assign(T2 * D, 0);
  for (size_t t = 0; t < T2; ++t) {
    size_t a = 2 * t;
    size_t b = std::min(2 * t + 1, T - 1);
    for (size_t d = 0; d < D; ++d) {
      if (x.at(a, d) >= x.at(b, d)) {
        out.at(t, d) = x.at(a, d);
        (*argmax)[t * D + d] = a;
      } else {
        out.at(t, d) = x.at(b, d);
        (*argmax)[t * D + d] = b;
      }
    }
  }
  return out;
}

/// Routes pooled grads back to the rows recorded by MaxPoolTime.
Matrix UnpoolTime(const Matrix& gpooled, const std::vector<size_t>& argmax,
                  size_t orig_T) {
  size_t T2 = gpooled.rows(), D = gpooled.cols();
  Matrix out(orig_T, D);
  for (size_t t = 0; t < T2; ++t) {
    for (size_t d = 0; d < D; ++d) {
      out.at(argmax[t * D + d], d) += gpooled.at(t, d);
    }
  }
  return out;
}

}  // namespace

double HierarchicalContrastiveLoss(const std::vector<Matrix>& view1,
                                   const std::vector<Matrix>& view2,
                                   std::vector<Matrix>* grad1,
                                   std::vector<Matrix>* grad2,
                                   const ContrastiveOptions& options) {
  const size_t B = view1.size();
  if (B == 0 || view2.size() != B) return 0.0;

  // Level data.
  std::vector<std::vector<Matrix>> lv1{view1}, lv2{view2};
  std::vector<std::vector<std::vector<size_t>>> maps1, maps2;  // per level, per series
  std::vector<size_t> lengths{view1[0].rows()};

  while (lv1.back()[0].rows() > 1 &&
         static_cast<int>(lv1.size()) < options.max_levels) {
    std::vector<Matrix> n1(B), n2(B);
    std::vector<std::vector<size_t>> m1(B), m2(B);
    for (size_t i = 0; i < B; ++i) {
      n1[i] = MaxPoolTime(lv1.back()[i], &m1[i]);
      n2[i] = MaxPoolTime(lv2.back()[i], &m2[i]);
    }
    maps1.push_back(std::move(m1));
    maps2.push_back(std::move(m2));
    lengths.push_back(n1[0].rows());
    lv1.push_back(std::move(n1));
    lv2.push_back(std::move(n2));
  }

  const size_t L = lv1.size();
  double total = 0.0;
  std::vector<std::vector<Matrix>> lg1(L), lg2(L);
  for (size_t l = 0; l < L; ++l) {
    total += DualContrastiveLoss(lv1[l], lv2[l], options.alpha,
                                 grad1 ? &lg1[l] : nullptr,
                                 grad2 ? &lg2[l] : nullptr);
  }
  total /= static_cast<double>(L);

  auto collapse = [&](std::vector<std::vector<Matrix>>& lg,
                      const std::vector<std::vector<std::vector<size_t>>>& maps,
                      std::vector<Matrix>* out) {
    if (!out) return;
    // acc = G_{L-1}; for l = L-2..0: acc = G_l + Unpool(acc).
    std::vector<Matrix> acc = std::move(lg[L - 1]);
    for (size_t l = L - 1; l-- > 0;) {
      std::vector<Matrix> up(B);
      for (size_t i = 0; i < B; ++i) {
        up[i] = UnpoolTime(acc[i], maps[l][i], lengths[l]);
        up[i].Add(lg[l][i]);
      }
      acc = std::move(up);
    }
    for (auto& g : acc) g.Scale(1.0 / static_cast<double>(L));
    *out = std::move(acc);
  };
  collapse(lg1, maps1, grad1);
  collapse(lg2, maps2, grad2);
  return total;
}

}  // namespace easytime::nn
