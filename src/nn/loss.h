#pragma once

/// \file loss.h
/// \brief Loss functions returning (scalar loss, dL/dpred). Includes the
/// soft-label cross-entropy the method classifier trains with ([10] in the
/// paper: SimpleTS-style soft labels).

#include <utility>

#include "nn/matrix.h"

namespace easytime::nn {

/// Mean squared error over all entries; grad has pred's shape.
std::pair<double, Matrix> MseLoss(const Matrix& pred, const Matrix& target);

/// Mean absolute error over all entries.
std::pair<double, Matrix> MaeLoss(const Matrix& pred, const Matrix& target);

/// \brief Cross-entropy between row-wise softmax(logits) and a *soft* target
/// distribution (rows sum to 1). With one-hot targets this is standard CE;
/// with performance-derived soft labels it trains the classifier to produce
/// a probability *ranking* over methods rather than a single winner.
std::pair<double, Matrix> SoftCrossEntropyLoss(const Matrix& logits,
                                               const Matrix& soft_targets);

/// Row-wise softmax of \p logits.
Matrix RowSoftmax(const Matrix& logits);

}  // namespace easytime::nn
