#pragma once

/// \file loss.h
/// \brief Loss functions returning (scalar loss, dL/dpred). Includes the
/// soft-label cross-entropy the method classifier trains with ([10] in the
/// paper: SimpleTS-style soft labels).
///
/// The *Into variants write the gradient into a caller-owned matrix so
/// per-epoch training loops reuse one buffer; the pair-returning forms wrap
/// them.

#include <utility>

#include "nn/matrix.h"

namespace easytime::nn {

/// Mean squared error over all entries; grad gets pred's shape.
double MseLossInto(const Matrix& pred, const Matrix& target, Matrix* grad);
std::pair<double, Matrix> MseLoss(const Matrix& pred, const Matrix& target);

/// Mean absolute error over all entries.
double MaeLossInto(const Matrix& pred, const Matrix& target, Matrix* grad);
std::pair<double, Matrix> MaeLoss(const Matrix& pred, const Matrix& target);

/// \brief Cross-entropy between row-wise softmax(logits) and a *soft* target
/// distribution (rows sum to 1). With one-hot targets this is standard CE;
/// with performance-derived soft labels it trains the classifier to produce
/// a probability *ranking* over methods rather than a single winner.
/// \p probs_ws is caller scratch for the softmax (reused across epochs).
double SoftCrossEntropyLossInto(const Matrix& logits,
                                const Matrix& soft_targets, Matrix* grad,
                                Matrix* probs_ws);
std::pair<double, Matrix> SoftCrossEntropyLoss(const Matrix& logits,
                                               const Matrix& soft_targets);

/// Row-wise softmax of \p logits.
void RowSoftmaxInto(const Matrix& logits, Matrix* out);
Matrix RowSoftmax(const Matrix& logits);

}  // namespace easytime::nn
