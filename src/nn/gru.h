#pragma once

/// \file gru.h
/// \brief A GRU layer processing one sequence (time x input) into hidden
/// states (time x hidden), with full backpropagation-through-time. Used by
/// the GRU forecaster.

#include <vector>

#include "nn/layers.h"

namespace easytime::nn {

/// \brief Gated recurrent unit (PyTorch gate convention):
///   r_t = sigma(x_t W_ir + h_{t-1} W_hr + b_r)
///   z_t = sigma(x_t W_iz + h_{t-1} W_hz + b_z)
///   n_t = tanh (x_t W_in + r_t * (h_{t-1} W_hn + b_hn) + b_n)
///   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
/// Forward takes the whole sequence; the initial hidden state is zero.
///
/// The input-to-hidden products for the whole sequence go through one GEMM
/// per gate; the recurrent products are one GEMM row per step. Each gate
/// pre-activation accumulates bias, then x terms, then h terms — the same
/// per-element order as the scalar reference. The backward pass stays
/// scalar: its input/hidden gradients interleave the three gate terms inside
/// one summation, which separate GEMMs cannot reproduce bit-for-bit.
class Gru : public Layer {
 public:
  Gru(size_t input_size, size_t hidden_size, Rng* rng);

  /// \param x (time x input) -> (time x hidden)
  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "Gru"; }

  size_t hidden_size() const { return hidden_size_; }

 private:
  /// Shared forward computation; fills the caches when they are given.
  void ForwardImpl(const Matrix& x, Matrix* out, Matrix* pre_r, Matrix* pre_z,
                   Matrix* pre_n, Matrix* hn_lin, Matrix* r, Matrix* z,
                   Matrix* n, Matrix* h) const;

  size_t input_size_;
  size_t hidden_size_;

  // Input-to-hidden and hidden-to-hidden weights per gate.
  Param w_ir_, w_iz_, w_in_;  // (input x hidden)
  Param w_hr_, w_hz_, w_hn_;  // (hidden x hidden)
  Param b_r_, b_z_, b_n_, b_hn_;  // (1 x hidden)

  // Per-timestep caches for BPTT (rows are timesteps); reused across calls.
  Matrix cached_input_;
  Matrix r_, z_, n_, h_, hn_lin_;
  Matrix pre_r_, pre_z_, pre_n_;  // gate pre-activation workspaces

  // Backward scratch, reused across calls.
  std::vector<double> bwd_dh_, bwd_dh_prev_, bwd_dh_next_;
  std::vector<double> bwd_dar_, bwd_daz_, bwd_dan_, bwd_dhn_;
};

}  // namespace easytime::nn
