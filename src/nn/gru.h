#pragma once

/// \file gru.h
/// \brief A GRU layer processing one sequence (time x input) into hidden
/// states (time x hidden), with full backpropagation-through-time. Used by
/// the GRU forecaster.

#include <vector>

#include "nn/layers.h"

namespace easytime::nn {

/// \brief Gated recurrent unit (PyTorch gate convention):
///   r_t = sigma(x_t W_ir + h_{t-1} W_hr + b_r)
///   z_t = sigma(x_t W_iz + h_{t-1} W_hz + b_z)
///   n_t = tanh (x_t W_in + r_t * (h_{t-1} W_hn + b_hn) + b_n)
///   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
/// Forward takes the whole sequence; the initial hidden state is zero.
///
/// The gate pre-activations live in one (time x 4H) matrix with column
/// blocks [pre_r | pre_z | hn_lin | pre_n], and the per-gate weights are
/// packed into matching concatenated blocks. That batches the gate products:
/// the input-to-hidden work is two whole-sequence GEMMs (r+z fused, n
/// separate because hn_lin takes the recurrent term instead), and the
/// recurrent work is ONE (1 x 3H) GEMM per step instead of three (1 x H)
/// calls. Each gate pre-activation element accumulates bias, then its x
/// terms, then its h terms in ascending k order — exactly the per-element
/// chains of the unfused per-gate GEMMs, so the fusion is bit-exact. The
/// backward pass stays scalar: its input/hidden gradients interleave the
/// three gate terms inside one summation, which separate GEMMs cannot
/// reproduce bit-for-bit.
class Gru : public Layer {
 public:
  Gru(size_t input_size, size_t hidden_size, Rng* rng);

  /// \param x (time x input) -> (time x hidden)
  void ForwardInto(const Matrix& x, Matrix* out) override;
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in) override;
  void ForwardConst(const Matrix& x, Matrix* out) const override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "Gru"; }

  size_t hidden_size() const { return hidden_size_; }

 private:
  /// Shared forward computation; fills the caches when they are given.
  /// \p gates is the (time x 4H) pre-activation matrix described above;
  /// \p wi_rz / \p wh are workspaces for the packed weight blocks
  /// ([W_ir|W_iz], input x 2H and [W_hr|W_hz|W_hn], H x 3H).
  void ForwardImpl(const Matrix& x, Matrix* out, Matrix* gates, Matrix* wi_rz,
                   Matrix* wh, Matrix* r, Matrix* z, Matrix* n,
                   Matrix* h) const;

  size_t input_size_;
  size_t hidden_size_;

  // Input-to-hidden and hidden-to-hidden weights per gate.
  Param w_ir_, w_iz_, w_in_;  // (input x hidden)
  Param w_hr_, w_hz_, w_hn_;  // (hidden x hidden)
  Param b_r_, b_z_, b_n_, b_hn_;  // (1 x hidden)

  // Per-timestep caches for BPTT (rows are timesteps); reused across calls.
  Matrix cached_input_;
  Matrix r_, z_, n_, h_;
  Matrix gates_;               // (time x 4H): [pre_r | pre_z | hn_lin | pre_n]
  Matrix wi_rz_pack_, wh_pack_;  // packed weight workspaces

  // Backward scratch, reused across calls.
  std::vector<double> bwd_dh_, bwd_dh_prev_, bwd_dh_next_;
  std::vector<double> bwd_dar_, bwd_daz_, bwd_dan_, bwd_dhn_;
};

}  // namespace easytime::nn
