#pragma once

/// \file gru.h
/// \brief A GRU layer processing one sequence (time x input) into hidden
/// states (time x hidden), with full backpropagation-through-time. Used by
/// the GRU forecaster.

#include <vector>

#include "nn/layers.h"

namespace easytime::nn {

/// \brief Gated recurrent unit (PyTorch gate convention):
///   r_t = sigma(x_t W_ir + h_{t-1} W_hr + b_r)
///   z_t = sigma(x_t W_iz + h_{t-1} W_hz + b_z)
///   n_t = tanh (x_t W_in + r_t * (h_{t-1} W_hn + b_hn) + b_n)
///   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
/// Forward takes the whole sequence; the initial hidden state is zero.
class Gru : public Layer {
 public:
  Gru(size_t input_size, size_t hidden_size, Rng* rng);

  /// \param x (time x input) -> (time x hidden)
  Matrix Forward(const Matrix& x) override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Param*> Params() override;
  std::string name() const override { return "Gru"; }

  size_t hidden_size() const { return hidden_size_; }

 private:
  size_t input_size_;
  size_t hidden_size_;

  // Input-to-hidden and hidden-to-hidden weights per gate.
  Param w_ir_, w_iz_, w_in_;  // (input x hidden)
  Param w_hr_, w_hz_, w_hn_;  // (hidden x hidden)
  Param b_r_, b_z_, b_n_, b_hn_;  // (1 x hidden)

  // Per-timestep caches for BPTT.
  Matrix cached_input_;
  std::vector<std::vector<double>> r_, z_, n_, h_, hn_lin_;
};

}  // namespace easytime::nn
