#pragma once

/// \file contrastive.h
/// \brief TS2Vec's hierarchical contrastive loss (Yue et al., AAAI'22) with
/// analytic gradients. Two augmented views of each series in a batch are
/// encoded to representation sequences; the loss contrasts them temporally
/// (same series, other timestamps are negatives) and instance-wise (same
/// timestamp, other series are negatives), at every level of a max-pool
/// hierarchy over time.

#include <vector>

#include "nn/matrix.h"

namespace easytime::nn {

/// Options for the hierarchical contrastive loss.
struct ContrastiveOptions {
  double alpha = 0.5;   ///< weight of the instance term (1-alpha temporal)
  int max_levels = 8;   ///< cap on pooling depth
};

/// \brief Computes the hierarchical contrastive loss between two views.
///
/// \param view1 batch of representation sequences, each (T x D); all series
///        must share T and D
/// \param view2 the second view, same shapes, aligned on the overlap
/// \param grad1 output: dL/dview1 (same shapes); may be nullptr
/// \param grad2 output: dL/dview2; may be nullptr
/// \returns the scalar loss (averaged over hierarchy levels)
double HierarchicalContrastiveLoss(const std::vector<Matrix>& view1,
                                   const std::vector<Matrix>& view2,
                                   std::vector<Matrix>* grad1,
                                   std::vector<Matrix>* grad2,
                                   const ContrastiveOptions& options = {});

/// \brief Single-level dual contrastive loss (instance + temporal) used by
/// the hierarchy; exposed for testing.
double DualContrastiveLoss(const std::vector<Matrix>& view1,
                           const std::vector<Matrix>& view2, double alpha,
                           std::vector<Matrix>* grad1,
                           std::vector<Matrix>* grad2);

}  // namespace easytime::nn
