#include "tsdata/append_log.h"

#include <cmath>

#include "common/logging.h"

namespace easytime::tsdata {

easytime::Json AppendRecord::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("dataset", dataset);
  j.Set("start", static_cast<int64_t>(start));
  easytime::Json chans = easytime::Json::Array();
  for (const auto& ch : channels) {
    easytime::Json arr = easytime::Json::Array();
    for (double v : ch) arr.Append(v);
    chans.Append(std::move(arr));
  }
  j.Set("channels", std::move(chans));
  return j;
}

easytime::Result<AppendRecord> AppendRecord::FromJson(const easytime::Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("append record must be an object");
  }
  AppendRecord rec;
  rec.dataset = j.GetString("dataset", "");
  if (rec.dataset.empty()) {
    return Status::InvalidArgument("append record missing dataset");
  }
  int64_t start = j.GetInt("start", -1);
  if (start < 0) {
    return Status::InvalidArgument("append record missing start offset");
  }
  rec.start = static_cast<size_t>(start);
  if (!j.Has("channels") || !j.Get("channels").is_array()) {
    return Status::InvalidArgument("append record missing channels array");
  }
  for (const auto& ch : j.Get("channels").items()) {
    if (!ch.is_array() || ch.items().empty()) {
      return Status::InvalidArgument(
          "append record channels must be non-empty arrays");
    }
    std::vector<double> values;
    values.reserve(ch.items().size());
    for (const auto& v : ch.items()) {
      if (!v.is_number() || !std::isfinite(v.AsDouble())) {
        return Status::InvalidArgument(
            "append record values must be finite numbers");
      }
      values.push_back(v.AsDouble());
    }
    rec.channels.push_back(std::move(values));
  }
  if (rec.channels.empty()) {
    return Status::InvalidArgument("append record has no channels");
  }
  size_t batch = rec.channels[0].size();
  for (const auto& ch : rec.channels) {
    if (ch.size() != batch) {
      return Status::InvalidArgument("append record channels unequal length");
    }
  }
  return rec;
}

namespace {

/// Applies an appended suffix to a repository dataset. \p base is the series
/// length the suffix starts at. Idempotent: already-covered prefixes are
/// skipped; a gap (acknowledged data depending on lost data) is an IOError.
easytime::Result<bool> ApplySuffix(
    Repository* repo, const std::string& name, size_t base,
    const std::vector<std::vector<double>>& channels) {
  auto ds_or = repo->GetMutable(name);
  if (!ds_or.ok()) {
    // The base suite no longer contains this dataset (suite spec changed);
    // keep the data in the log but there is nothing to extend.
    EASYTIME_LOG(Warning) << "append log: skipping appends for unknown "
                          << "dataset '" << name << "'";
    return false;
  }
  Dataset* ds = *ds_or;
  const size_t len = ds->length();
  const size_t batch = channels.empty() ? 0 : channels[0].size();
  if (len < base) {
    return Status::IOError(
        "append log references '" + name + "' at offset " +
        std::to_string(base) + " but the series is only " +
        std::to_string(len) + " long — base data is missing");
  }
  if (len >= base + batch) return false;  // fully covered already
  std::vector<std::vector<double>> suffix;
  suffix.reserve(channels.size());
  const size_t from = len - base;
  for (const auto& ch : channels) {
    suffix.emplace_back(ch.begin() + static_cast<long>(from), ch.end());
  }
  easytime::Status applied = ds->AppendObservations(suffix);
  if (!applied.ok()) {
    // Channel arity changed under the log (regenerated suite with a new
    // shape): the appended tail no longer fits this dataset.
    EASYTIME_LOG(Warning) << "append log: cannot re-apply appends to '"
                          << name << "': " << applied.ToString();
    return false;
  }
  return true;
}

}  // namespace

easytime::Result<std::unique_ptr<AppendLog>> AppendLog::Open(
    const AppendLogOptions& options, Repository* repo, ReplayStats* stats) {
  if (repo == nullptr) {
    return Status::InvalidArgument("append log needs a repository");
  }
  store::RecordStoreOptions store_options;
  store_options.segment_bytes = options.segment_bytes;
  store_options.sync_every_append = options.sync_every_append;
  store_options.group_commit = options.group_commit;
  store_options.group_commit_max_batch = options.group_commit_max_batch;
  store::RecordStoreRecovery recovery;
  EASYTIME_ASSIGN_OR_RETURN(
      auto record_store,
      store::RecordStore::Open(options.dir, store_options, &recovery));

  auto log = std::unique_ptr<AppendLog>(
      new AppendLog(options, std::move(record_store)));
  ReplayStats replay;

  // 1. The snapshot holds cumulative per-dataset tails.
  if (recovery.has_snapshot) {
    auto snap_or = easytime::Json::Parse(recovery.snapshot);
    if (!snap_or.ok()) {
      return snap_or.status().WithContext("append log snapshot");
    }
    const easytime::Json& snap = *snap_or;
    if (snap.Has("tails")) {
      const easytime::Json& tails = snap.Get("tails");
      for (const auto& name : tails.keys()) {
        const easytime::Json& t = tails.Get(name);
        AppendRecord rec;
        rec.dataset = name;
        easytime::Json encoded = t;
        encoded.Set("dataset", name);
        encoded.Set("start", t.GetInt("base", 0));
        EASYTIME_ASSIGN_OR_RETURN(rec, AppendRecord::FromJson(encoded));
        Tail tail;
        tail.base = rec.start;
        tail.channels = std::move(rec.channels);
        EASYTIME_ASSIGN_OR_RETURN(
            bool applied, ApplySuffix(repo, name, tail.base, tail.channels));
        applied ? ++replay.applied : ++replay.skipped;
        log->tails_[name] = std::move(tail);
      }
    }
  }

  // 2. WAL records past the snapshot, in sequence order (= start order per
  // dataset, by the ordering contract).
  for (const auto& [seq, payload] : recovery.tail) {
    (void)seq;
    auto parsed = easytime::Json::Parse(payload);
    if (!parsed.ok()) return parsed.status().WithContext("append log record");
    EASYTIME_ASSIGN_OR_RETURN(AppendRecord rec,
                              AppendRecord::FromJson(*parsed));
    auto it = log->tails_.find(rec.dataset);
    if (it == log->tails_.end()) {
      Tail tail;
      tail.base = rec.start;
      tail.channels.resize(rec.channels.size());
      it = log->tails_.emplace(rec.dataset, std::move(tail)).first;
    }
    Tail& tail = it->second;
    if (rec.channels.size() != tail.channels.size()) {
      return Status::IOError("append log record for '" + rec.dataset +
                              "' changes channel arity mid-log");
    }
    const size_t tail_len =
        tail.channels.empty() ? 0 : tail.channels[0].size();
    const size_t expected = tail.base + tail_len;
    if (rec.start < expected) {
      // Already inside the snapshot (compaction raced the record's fsync).
      ++replay.skipped;
      continue;
    }
    if (rec.start > expected) {
      return Status::IOError(
          "append log gap for '" + rec.dataset + "': record starts at " +
          std::to_string(rec.start) + ", expected " +
          std::to_string(expected));
    }
    for (size_t c = 0; c < tail.channels.size(); ++c) {
      tail.channels[c].insert(tail.channels[c].end(), rec.channels[c].begin(),
                              rec.channels[c].end());
    }
    EASYTIME_ASSIGN_OR_RETURN(
        bool applied, ApplySuffix(repo, rec.dataset, rec.start, rec.channels));
    applied ? ++replay.applied : ++replay.skipped;
  }

  if (replay.applied > 0 || replay.skipped > 0) {
    EASYTIME_LOG(Info) << "append log: replayed " << replay.applied
                       << " appends (" << replay.skipped << " skipped) from "
                       << options.dir;
  }
  if (stats != nullptr) *stats = replay;
  return log;
}

easytime::Status AppendLog::Append(const AppendRecord& record) {
  if (record.channels.empty() || record.channels[0].empty()) {
    return Status::InvalidArgument("append record must carry values");
  }
  {
    // Tails first: any record that later obtains a WAL sequence number is
    // already inside the state a concurrent compaction would snapshot (the
    // replay path's duplicate guard absorbs the overlap).
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tails_.find(record.dataset);
    if (it == tails_.end()) {
      Tail tail;
      tail.base = record.start;
      tail.channels.resize(record.channels.size());
      it = tails_.emplace(record.dataset, std::move(tail)).first;
    }
    Tail& tail = it->second;
    if (record.channels.size() != tail.channels.size()) {
      return Status::InvalidArgument("append changes channel arity");
    }
    const size_t tail_len =
        tail.channels.empty() ? 0 : tail.channels[0].size();
    if (record.start != tail.base + tail_len) {
      return Status::Internal(
          "append log ordering violated for '" + record.dataset +
          "': start " + std::to_string(record.start) + ", expected " +
          std::to_string(tail.base + tail_len) +
          " (same-dataset appends must be serialized)");
    }
    for (size_t c = 0; c < tail.channels.size(); ++c) {
      tail.channels[c].insert(tail.channels[c].end(),
                              record.channels[c].begin(),
                              record.channels[c].end());
    }
  }
  // Durable outside the tails lock: concurrent appenders (to different
  // datasets) group-commit into shared fsyncs.
  EASYTIME_ASSIGN_OR_RETURN(uint64_t seq,
                            store_->Append(record.ToJson().Dump()));
  (void)seq;
  return MaybeCompact();
}

std::string AppendLog::EncodeTailsLocked() const {
  easytime::Json tails = easytime::Json::Object();
  for (const auto& [name, tail] : tails_) {
    easytime::Json t = easytime::Json::Object();
    t.Set("base", static_cast<int64_t>(tail.base));
    easytime::Json chans = easytime::Json::Array();
    for (const auto& ch : tail.channels) {
      easytime::Json arr = easytime::Json::Array();
      for (double v : ch) arr.Append(v);
      chans.Append(std::move(arr));
    }
    t.Set("channels", std::move(chans));
    tails.Set(name, std::move(t));
  }
  easytime::Json snap = easytime::Json::Object();
  snap.Set("tails", std::move(tails));
  return snap.Dump();
}

easytime::Status AppendLog::MaybeCompact() {
  if (options_.compact_every == 0) return Status::OK();
  if (store_->appends_since_compaction() < options_.compact_every) {
    return Status::OK();
  }
  std::string state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state = EncodeTailsLocked();
  }
  return store_->Compact(state);
}

}  // namespace easytime::tsdata
