#include "tsdata/scaler.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace easytime::tsdata {

easytime::Status ZScoreScaler::Fit(const std::vector<double>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty training data");
  }
  mean_ = Mean(train);
  stddev_ = StdDev(train);
  if (stddev_ < 1e-12) stddev_ = 1.0;  // constant series: center only
  return Status::OK();
}

std::vector<double> ZScoreScaler::Transform(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - mean_) / stddev_;
  return out;
}

std::vector<double> ZScoreScaler::Inverse(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * stddev_ + mean_;
  return out;
}

easytime::Status MinMaxScaler::Fit(const std::vector<double>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty training data");
  }
  auto [mn, mx] = std::minmax_element(train.begin(), train.end());
  min_ = *mn;
  range_ = *mx - *mn;
  if (range_ < 1e-12) range_ = 1.0;
  return Status::OK();
}

std::vector<double> MinMaxScaler::Transform(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - min_) / range_;
  return out;
}

std::vector<double> MinMaxScaler::Inverse(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * range_ + min_;
  return out;
}

easytime::Result<std::unique_ptr<Scaler>> MakeScaler(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "zscore" || lower == "standard") {
    return std::unique_ptr<Scaler>(new ZScoreScaler());
  }
  if (lower == "minmax") {
    return std::unique_ptr<Scaler>(new MinMaxScaler());
  }
  if (lower == "none" || lower == "identity" || lower.empty()) {
    return std::unique_ptr<Scaler>(new IdentityScaler());
  }
  return Status::NotFound("unknown scaler: " + name);
}

}  // namespace easytime::tsdata
