#include "tsdata/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace easytime::tsdata {

namespace {

/// Deterministic component synthesis shared by all channels of a dataset;
/// per-channel randomness comes from the caller's rng.
std::vector<double> SynthesizeValues(const GeneratorConfig& cfg, Rng* rng) {
  const size_t n = cfg.length;
  std::vector<double> v(n, 0.0);

  // Trend with an optional slope break at a random interior point.
  size_t break_at = n / 2;
  if (cfg.trend_break != 0.0) {
    break_at = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(n / 4), static_cast<int64_t>(3 * n / 4)));
  }
  double slope = cfg.trend_slope;
  double level = cfg.level;
  for (size_t t = 0; t < n; ++t) {
    if (t == break_at) slope += cfg.trend_break;
    if (t > 0) level += slope;
    v[t] = level;
  }

  // Harmonic seasonality with a random phase per harmonic.
  if (cfg.period >= 2 && cfg.season_amp > 0.0) {
    int harmonics = std::clamp(static_cast<int>(cfg.season_harmonics), 1, 3);
    for (int h = 1; h <= harmonics; ++h) {
      double phase = rng->Uniform(0.0, 2.0 * std::numbers::pi);
      double amp = cfg.season_amp / static_cast<double>(h);
      for (size_t t = 0; t < n; ++t) {
        v[t] += amp * std::sin(2.0 * std::numbers::pi * h *
                                   static_cast<double>(t) /
                                   static_cast<double>(cfg.period) +
                               phase);
      }
    }
  }

  // AR(1) noise, optionally integrated (random walk) and heavy-tailed.
  double prev = 0.0;
  double walk = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double eps = rng->Gaussian(0.0, cfg.noise_std);
    if (cfg.heavy_tail && rng->Uniform() < 0.02) {
      eps *= rng->Uniform(4.0, 8.0);  // rare large shock
    }
    double noise = cfg.ar_coef * prev + eps;
    prev = noise;
    if (cfg.random_walk) {
      walk += noise;
      v[t] += walk;
    } else {
      v[t] += noise;
    }
  }

  // Level shift (distribution shifting) at a random point in the second half.
  if (cfg.level_shift != 0.0) {
    size_t at = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(n / 2), static_cast<int64_t>(7 * n / 8)));
    for (size_t t = at; t < n; ++t) v[t] += cfg.level_shift;
  }
  return v;
}

}  // namespace

Series GenerateSeries(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Series s(config.name.empty() ? "synthetic" : config.name,
           SynthesizeValues(config, &rng));
  s.set_domain(config.domain);
  s.set_period_hint(config.period);
  return s;
}

Dataset GenerateDataset(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Dataset ds(config.name.empty() ? "synthetic" : config.name);
  ds.set_domain(config.domain);

  size_t k = std::max<size_t>(1, config.num_channels);
  if (k == 1) {
    (void)ds.AddChannel(GenerateSeries(config));
    return ds;
  }

  // Latent-factor model: shared factor + idiosyncratic component, mixed so
  // that the expected pairwise correlation approximates the target rho.
  GeneratorConfig shared_cfg = config;
  shared_cfg.seed = rng.Next();
  Rng shared_rng(shared_cfg.seed);
  std::vector<double> shared = SynthesizeValues(shared_cfg, &shared_rng);

  double rho = std::clamp(config.channel_correlation, 0.0, 0.99);
  double a = std::sqrt(rho);          // shared weight
  double b = std::sqrt(1.0 - rho);    // idiosyncratic weight

  for (size_t c = 0; c < k; ++c) {
    GeneratorConfig ch_cfg = config;
    ch_cfg.seed = rng.Next();
    // Idiosyncratic channels keep the same structure but fresh randomness.
    Rng ch_rng(ch_cfg.seed);
    std::vector<double> own = SynthesizeValues(ch_cfg, &ch_rng);
    std::vector<double> mixed(config.length);
    for (size_t t = 0; t < config.length; ++t) {
      mixed[t] = a * shared[t] + b * own[t];
    }
    Series s(config.name + "_ch" + std::to_string(c), std::move(mixed));
    s.set_domain(config.domain);
    s.set_period_hint(config.period);
    (void)ds.AddChannel(std::move(s));
  }
  return ds;
}

GeneratorConfig DomainProfile(Domain domain, Rng* rng) {
  GeneratorConfig c;
  c.domain = domain;
  c.level = rng->Uniform(5.0, 50.0);
  c.noise_std = rng->Uniform(0.3, 1.0);
  switch (domain) {
    case Domain::kTraffic:
      c.period = 24;
      c.season_amp = rng->Uniform(4.0, 9.0);
      c.season_harmonics = 2;
      c.ar_coef = rng->Uniform(0.2, 0.5);
      break;
    case Domain::kElectricity:
      c.period = 24;
      c.season_amp = rng->Uniform(5.0, 10.0);
      c.season_harmonics = 3;
      c.trend_slope = rng->Uniform(0.0, 0.01);
      c.ar_coef = rng->Uniform(0.1, 0.4);
      break;
    case Domain::kEnergy:
      c.period = 24;
      c.season_amp = rng->Uniform(2.0, 6.0);
      c.trend_slope = rng->Uniform(0.0, 0.02);
      c.level_shift = rng->Uniform() < 0.4 ? rng->Uniform(3.0, 8.0) : 0.0;
      break;
    case Domain::kEnvironment:
      c.period = 12;
      c.season_amp = rng->Uniform(2.0, 5.0);
      c.ar_coef = rng->Uniform(0.4, 0.7);
      c.trend_slope = rng->Uniform(-0.01, 0.02);
      break;
    case Domain::kNature:
      c.period = 7;
      c.season_amp = rng->Uniform(1.0, 3.0);
      c.ar_coef = rng->Uniform(0.5, 0.8);
      c.trend_break = rng->Uniform() < 0.4 ? rng->Uniform(-0.06, 0.06) : 0.0;
      break;
    case Domain::kEconomic:
      c.period = 12;
      c.season_amp = rng->Uniform(0.5, 2.0);
      c.trend_slope = rng->Uniform(0.02, 0.08);
      c.trend_break = rng->Uniform() < 0.5 ? rng->Uniform(-0.1, 0.1) : 0.0;
      break;
    case Domain::kStock:
      c.random_walk = true;
      c.heavy_tail = true;
      c.noise_std = rng->Uniform(0.5, 1.5);
      c.period = 0;
      break;
    case Domain::kBanking:
      c.period = 7;
      c.season_amp = rng->Uniform(1.0, 4.0);
      c.trend_slope = rng->Uniform(0.0, 0.04);
      c.level_shift = rng->Uniform() < 0.3 ? rng->Uniform(2.0, 6.0) : 0.0;
      break;
    case Domain::kHealth:
      c.period = 52;
      c.season_amp = rng->Uniform(2.0, 5.0);
      c.ar_coef = rng->Uniform(0.2, 0.5);
      break;
    case Domain::kWeb:
      c.period = 7;
      c.season_amp = rng->Uniform(2.0, 6.0);
      c.season_harmonics = 2;
      c.trend_break = rng->Uniform() < 0.5 ? rng->Uniform(-0.08, 0.08) : 0.0;
      c.ar_coef = rng->Uniform(0.1, 0.4);
      break;
  }
  return c;
}

std::vector<Dataset> GenerateSuite(const SuiteSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Dataset> out;
  out.reserve(spec.univariate_per_domain * kNumDomains +
              spec.multivariate_total);

  for (int d = 0; d < kNumDomains; ++d) {
    Domain domain = static_cast<Domain>(d);
    for (size_t i = 0; i < spec.univariate_per_domain; ++i) {
      GeneratorConfig cfg = DomainProfile(domain, &rng);
      cfg.length = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(spec.min_length),
          static_cast<int64_t>(spec.max_length)));
      cfg.num_channels = 1;
      cfg.seed = rng.Next();
      cfg.name = std::string(DomainName(domain)) + "_u" + std::to_string(i);
      out.push_back(GenerateDataset(cfg));
    }
  }
  for (size_t i = 0; i < spec.multivariate_total; ++i) {
    Domain domain = static_cast<Domain>(rng.UniformInt(0, kNumDomains - 1));
    GeneratorConfig cfg = DomainProfile(domain, &rng);
    cfg.length = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(spec.min_length),
        static_cast<int64_t>(spec.max_length)));
    cfg.num_channels = spec.multivariate_channels;
    cfg.channel_correlation = rng.Uniform(0.3, 0.9);
    cfg.seed = rng.Next();
    cfg.name = std::string(DomainName(domain)) + "_mv" + std::to_string(i);
    out.push_back(GenerateDataset(cfg));
  }
  return out;
}

}  // namespace easytime::tsdata
