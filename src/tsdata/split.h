#pragma once

/// \file split.h
/// \brief Standardized train/validation/test splitting. TFB's pipeline fixes
/// the partition so that every method sees identical splits; this module is
/// the single source of truth for those boundaries.

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace easytime::tsdata {

/// Fractions of the series assigned to each split (must sum to <= 1; the
/// remainder after train+val goes to test when test == 0).
struct SplitSpec {
  double train = 0.7;
  double val = 0.1;
  double test = 0.2;
};

/// Index boundaries of a chronological split: [0, train_end) train,
/// [train_end, val_end) validation, [val_end, n) test.
struct SplitBounds {
  size_t train_end = 0;
  size_t val_end = 0;
  size_t n = 0;

  size_t train_size() const { return train_end; }
  size_t val_size() const { return val_end - train_end; }
  size_t test_size() const { return n - val_end; }
};

/// \brief Computes chronological split boundaries for a series of length
/// \p n. Guarantees a non-empty training split; validation may be empty when
/// spec.val == 0.
easytime::Result<SplitBounds> ComputeSplit(size_t n, const SplitSpec& spec);

/// The three contiguous segments of \p values under \p bounds.
struct SplitView {
  std::vector<double> train;
  std::vector<double> val;
  std::vector<double> test;
};

/// Materializes the split segments.
SplitView ApplySplit(const std::vector<double>& values,
                     const SplitBounds& bounds);

}  // namespace easytime::tsdata
