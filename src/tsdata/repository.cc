#include "tsdata/repository.h"

#include <algorithm>
#include <filesystem>

#include "common/string_util.h"

namespace easytime::tsdata {

easytime::Status Repository::Add(Dataset ds) {
  if (ds.name().empty()) {
    return Status::InvalidArgument("dataset must have a name");
  }
  if (by_name_.count(ds.name())) {
    return Status::AlreadyExists("dataset already registered: " + ds.name());
  }
  if (ds.num_channels() == 0 || ds.length() == 0) {
    return Status::InvalidArgument("dataset is empty: " + ds.name());
  }
  std::string name = ds.name();
  order_.push_back(name);
  by_name_.emplace(std::move(name), std::move(ds));
  return Status::OK();
}

easytime::Result<const Dataset*> Repository::Get(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second;
}

easytime::Result<Dataset*> Repository::GetMutable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second;
}

bool Repository::Contains(const std::string& name) const {
  return by_name_.count(name) > 0;
}

std::vector<const Dataset*> Repository::All() const {
  std::vector<const Dataset*> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.push_back(&by_name_.at(name));
  return out;
}

std::vector<const Dataset*> Repository::ByDomain(Domain domain) const {
  std::vector<const Dataset*> out;
  for (const auto& name : order_) {
    const Dataset& ds = by_name_.at(name);
    if (ds.domain() == domain) out.push_back(&ds);
  }
  return out;
}

std::vector<const Dataset*> Repository::ByArity(bool multivariate) const {
  std::vector<const Dataset*> out;
  for (const auto& name : order_) {
    const Dataset& ds = by_name_.at(name);
    if (ds.multivariate() == multivariate) out.push_back(&ds);
  }
  return out;
}

easytime::Status Repository::AddSuite(const SuiteSpec& spec) {
  for (auto& ds : GenerateSuite(spec)) {
    EASYTIME_RETURN_IF_ERROR(Add(std::move(ds)));
  }
  return Status::OK();
}

easytime::Status Repository::LoadDirectory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError("not a directory: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    EASYTIME_ASSIGN_OR_RETURN(Dataset ds, LoadDatasetCsv(path));
    EASYTIME_RETURN_IF_ERROR(Add(std::move(ds)));
  }
  return Status::OK();
}

}  // namespace easytime::tsdata
