#pragma once

/// \file generator.h
/// \brief Synthetic benchmark data generation — the stand-in for TFB's 25
/// multivariate + 8,068 univariate real datasets (see DESIGN.md §1).
///
/// Series are composed from interpretable components whose intensities map
/// directly onto TFB's six characteristic axes: level + (piecewise) trend +
/// harmonic seasonality + AR noise + level shifts + slope transitions, with a
/// latent-factor mixing model for multivariate channel correlation. Each of
/// the 10 application domains has a distinct parameter profile so that the
/// generated suite spans the characteristic space the way TFB's curated
/// collection does.

#include <string>
#include <vector>

#include "common/rng.h"
#include "tsdata/series.h"

namespace easytime::tsdata {

/// \brief Recipe for one synthetic series/dataset.
struct GeneratorConfig {
  std::string name;
  Domain domain = Domain::kWeb;
  size_t length = 512;
  size_t num_channels = 1;

  double level = 10.0;          ///< base level
  double trend_slope = 0.0;     ///< units per step
  double trend_break = 0.0;     ///< slope *change* at a midpoint (transition)
  size_t period = 0;            ///< seasonal period; 0 = none
  double season_amp = 0.0;      ///< seasonal amplitude
  double season_harmonics = 1;  ///< number of harmonics (1..3)
  double noise_std = 0.5;       ///< innovation std
  double ar_coef = 0.0;         ///< AR(1) coefficient of the noise
  double level_shift = 0.0;     ///< additive jump at a random point (shifting)
  bool random_walk = false;     ///< integrate the noise (stock-like)
  bool heavy_tail = false;      ///< occasional large shocks
  double channel_correlation = 0.5;  ///< target cross-channel correlation
  uint64_t seed = 1;
};

/// Generates one univariate series from \p config.
Series GenerateSeries(const GeneratorConfig& config);

/// Generates a dataset with config.num_channels correlated channels.
Dataset GenerateDataset(const GeneratorConfig& config);

/// \brief A randomized, domain-typical config. Profiles (period, trend,
/// volatility, shifts) differ by domain: e.g., traffic/electricity are
/// strongly seasonal with period 24, stock is a heavy-tailed random walk,
/// economic series trend with annual seasonality.
GeneratorConfig DomainProfile(Domain domain, Rng* rng);

/// \brief Specification for a full benchmark suite.
struct SuiteSpec {
  size_t univariate_per_domain = 4;  ///< univariate datasets per domain
  size_t multivariate_total = 5;     ///< multivariate datasets overall
  size_t min_length = 320;
  size_t max_length = 768;
  size_t multivariate_channels = 4;
  uint64_t seed = 7;
};

/// Generates the benchmark suite: univariate_per_domain datasets for each of
/// the 10 domains plus multivariate_total multivariate datasets.
std::vector<Dataset> GenerateSuite(const SuiteSpec& spec);

}  // namespace easytime::tsdata
