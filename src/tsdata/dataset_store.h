#pragma once

/// \file dataset_store.h
/// \brief Durable dataset cache on top of the record store. Generating the
/// benchmark suite is the dominant cost of a cold EasyTime::Create; when a
/// store directory is configured, the generated datasets are persisted once
/// (one JSON record per dataset, values in the round-trip-exact number
/// format of common/json.cc) and warm starts rebuild the repository straight
/// from disk, skipping generation entirely.

#include <string>

#include "common/result.h"
#include "tsdata/repository.h"

namespace easytime::tsdata {

/// \brief Rebuilds \p repo from the dataset store at \p dir. Returns true
/// when the store existed and held at least one dataset (the warm-start
/// path), false when there is nothing to load (cold start; the directory is
/// not created). Errors are real I/O or decode failures.
easytime::Result<bool> LoadRepositoryFromStore(const std::string& dir,
                                               Repository* repo);

/// \brief Persists every dataset in \p repo to the store at \p dir
/// (creating it), one record per dataset, and syncs once at the end.
easytime::Status PersistRepository(const std::string& dir,
                                   const Repository& repo);

}  // namespace easytime::tsdata
