#pragma once

/// \file dataset_store.h
/// \brief Durable dataset cache on top of the record store. Generating the
/// benchmark suite is the dominant cost of a cold EasyTime::Create; when a
/// store directory is configured, the generated datasets are persisted once
/// (one JSON record per dataset, values in the round-trip-exact number
/// format of common/json.cc) and warm starts rebuild the repository straight
/// from disk, skipping generation entirely.
///
/// The last record of a complete store is a terminal manifest carrying the
/// dataset count and a fingerprint of the generating SuiteSpec. A store
/// whose tail does not end in a manifest matching both (a crash mid-persist,
/// or a suite reconfigured since the cache was written) is not a warm start:
/// LoadRepositoryFromStore returns false and the caller regenerates.

#include <cstddef>
#include <string>

#include "common/result.h"
#include "tsdata/generator.h"
#include "tsdata/repository.h"

namespace easytime::tsdata {

/// \brief Rebuilds \p repo from the dataset store at \p dir. Returns true
/// only when the store exists AND its tail ends in a terminal manifest whose
/// dataset count and \p suite fingerprint both match (the warm-start path);
/// returns false for a missing, empty, partially written, or differently
/// configured store (cold start; the directory is not created). Errors are
/// real I/O or decode failures — \p repo is left untouched on any non-true
/// outcome.
easytime::Result<bool> LoadRepositoryFromStore(const std::string& dir,
                                               const SuiteSpec& suite,
                                               Repository* repo);

/// \brief Persists every dataset in \p repo to the store at \p dir, one
/// record per dataset followed by the terminal manifest, and syncs once at
/// the end. Any existing store at \p dir is removed first — the cache is
/// replaced wholesale, never extended, so a partial or stale store can't mix
/// with fresh records.
easytime::Status PersistRepository(const std::string& dir,
                                   const SuiteSpec& suite,
                                   const Repository& repo);

/// The terminal manifest payload for \p dataset_count datasets generated
/// from \p suite (exposed so tests can build malformed stores).
std::string DatasetStoreManifest(const SuiteSpec& suite, size_t dataset_count);

}  // namespace easytime::tsdata
