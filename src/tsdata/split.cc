#include "tsdata/split.h"

#include <algorithm>
#include <cmath>

namespace easytime::tsdata {

easytime::Result<SplitBounds> ComputeSplit(size_t n, const SplitSpec& spec) {
  if (n == 0) return Status::InvalidArgument("cannot split an empty series");
  if (spec.train <= 0.0 || spec.train > 1.0) {
    return Status::InvalidArgument("train fraction must be in (0, 1]");
  }
  if (spec.val < 0.0 || spec.test < 0.0 ||
      spec.train + spec.val + spec.test > 1.0 + 1e-9) {
    return Status::InvalidArgument("split fractions must be >= 0 and sum <= 1");
  }
  SplitBounds b;
  b.n = n;
  b.train_end = static_cast<size_t>(
      std::round(spec.train * static_cast<double>(n)));
  b.train_end = std::clamp<size_t>(b.train_end, 1, n);
  size_t val_len = static_cast<size_t>(
      std::round(spec.val * static_cast<double>(n)));
  b.val_end = std::min(n, b.train_end + val_len);
  return b;
}

SplitView ApplySplit(const std::vector<double>& values,
                     const SplitBounds& bounds) {
  SplitView view;
  auto begin = values.begin();
  view.train.assign(begin, begin + static_cast<long>(bounds.train_end));
  view.val.assign(begin + static_cast<long>(bounds.train_end),
                  begin + static_cast<long>(bounds.val_end));
  view.test.assign(begin + static_cast<long>(bounds.val_end), values.end());
  return view;
}

}  // namespace easytime::tsdata
