#pragma once

/// \file append_log.h
/// \brief Durable streaming-ingestion log (DESIGN.md §13). Appended
/// observations are user data — unlike the generated benchmark suite they
/// cannot be regenerated — so every accepted append is WAL-framed through
/// the storage engine before it is acknowledged. Recovery replays the log
/// on top of the deterministic base suite: base datasets come back at their
/// generated length, then the log's snapshot tails + WAL records re-extend
/// them to exactly the acknowledged state (fork+SIGKILL-tested: a torn tail
/// record truncates to the last acknowledged append, never a torn series).
///
/// Ordering contract: appends to ONE dataset must be serialized by the
/// caller (the core facade holds a per-dataset append mutex), which makes
/// WAL order equal start-offset order per dataset. Appends to DIFFERENT
/// datasets may run concurrently — with group commit enabled they share
/// fsyncs, which is where the streaming throughput comes from.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "store/record_store.h"
#include "tsdata/repository.h"

namespace easytime::tsdata {

/// One acknowledged append: a batch of observations for every channel of
/// \p dataset, starting at offset \p start (== the series length when the
/// append was accepted).
struct AppendRecord {
  std::string dataset;
  size_t start = 0;
  std::vector<std::vector<double>> channels;  ///< one inner vector/channel

  easytime::Json ToJson() const;
  static easytime::Result<AppendRecord> FromJson(const easytime::Json& j);
};

/// Tuning for one log instance.
struct AppendLogOptions {
  std::string dir;
  /// fsync before acknowledging (ack-after-durable); group commit coalesces
  /// concurrent appenders into one fsync per batch.
  bool sync_every_append = true;
  bool group_commit = true;
  size_t group_commit_max_batch = 64;
  /// Compact (snapshot cumulative tails + drop covered WAL segments) after
  /// this many appends; 0 disables automatic compaction.
  size_t compact_every = 256;
  size_t segment_bytes = 1 << 20;
};

/// \brief The append log. Open() replays recovered state onto a repository;
/// Append() durably logs one batch (the caller applies it in memory).
class AppendLog {
 public:
  struct ReplayStats {
    size_t applied = 0;  ///< records/tails extended onto repository series
    size_t skipped = 0;  ///< duplicates (already covered) or unknown datasets
  };

  /// \brief Opens (creating) the log and replays surviving appends onto
  /// \p repo. Fails with IOError when a surviving record leaves a gap —
  /// acknowledged data depending on data that did not survive — rather than
  /// silently tearing a series.
  static easytime::Result<std::unique_ptr<AppendLog>> Open(
      const AppendLogOptions& options, Repository* repo,
      ReplayStats* stats = nullptr);

  /// \brief Durably appends one record; returns after the record is on disk
  /// (under the default sync_every_append). Safe to call concurrently for
  /// different datasets; same-dataset calls must be externally serialized
  /// in start order (see the ordering contract above).
  easytime::Status Append(const AppendRecord& record);

  /// Records appended since Open (not counting replayed ones).
  uint64_t appends() const { return store_->last_seq(); }

  /// Group-commit fsync counters of the underlying WAL.
  store::WalGroupCommitStats group_commit_stats() const {
    return store_->group_commit_stats();
  }

 private:
  AppendLog(AppendLogOptions options,
            std::unique_ptr<store::RecordStore> store)
      : options_(std::move(options)), store_(std::move(store)) {}

  /// Cumulative appended suffix of one dataset: the series was base-length
  /// \p base when its first append arrived; \p channels holds everything
  /// appended since. This is what compaction snapshots.
  struct Tail {
    size_t base = 0;
    std::vector<std::vector<double>> channels;
  };

  std::string EncodeTailsLocked() const;
  easytime::Status MaybeCompact();

  const AppendLogOptions options_;
  std::unique_ptr<store::RecordStore> store_;
  mutable std::mutex mu_;               // guards tails_
  std::map<std::string, Tail> tails_;   // dataset -> appended suffix
};

}  // namespace easytime::tsdata
