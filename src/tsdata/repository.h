#pragma once

/// \file repository.h
/// \brief The data layer's dataset registry: holds the benchmark suite
/// (generated or loaded from CSV files) and serves lookups by name, domain,
/// and arity to the pipeline, the recommender, and the Q&A module.

#include <map>
#include <string>
#include <vector>

#include "tsdata/generator.h"
#include "tsdata/series.h"

namespace easytime::tsdata {

/// \brief In-memory collection of named datasets.
class Repository {
 public:
  Repository() = default;

  /// Registers a dataset; the name must be unique.
  easytime::Status Add(Dataset ds);

  /// Looks a dataset up by exact name.
  easytime::Result<const Dataset*> Get(const std::string& name) const;

  /// \brief Mutable lookup for the streaming-ingestion path. Callers own the
  /// concurrency story: the core facade only mutates datasets under its
  /// exclusive lock (see EasyTime::AppendObservations).
  easytime::Result<Dataset*> GetMutable(const std::string& name);

  bool Contains(const std::string& name) const;
  size_t size() const { return order_.size(); }

  /// Dataset names in registration order.
  const std::vector<std::string>& names() const { return order_; }

  /// All datasets in registration order.
  std::vector<const Dataset*> All() const;

  /// Datasets from one domain.
  std::vector<const Dataset*> ByDomain(Domain domain) const;

  /// Univariate (single-channel) or multivariate datasets.
  std::vector<const Dataset*> ByArity(bool multivariate) const;

  /// Populates this repository with a generated benchmark suite.
  easytime::Status AddSuite(const SuiteSpec& spec);

  /// Loads every *.csv file in \p dir as one dataset each.
  easytime::Status LoadDirectory(const std::string& dir);

 private:
  std::map<std::string, Dataset> by_name_;
  std::vector<std::string> order_;
};

}  // namespace easytime::tsdata
