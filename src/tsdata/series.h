#pragma once

/// \file series.h
/// \brief Core time-series containers for the data layer: a univariate
/// Series and a (possibly multivariate) Dataset made of channels.

#include <string>
#include <vector>

#include "common/result.h"

namespace easytime::tsdata {

/// Application domains covered by the benchmark (TFB's 10 domains).
enum class Domain : int {
  kTraffic = 0,
  kElectricity,
  kEnergy,
  kEnvironment,
  kNature,
  kEconomic,
  kStock,
  kBanking,
  kHealth,
  kWeb,
};

/// Number of distinct domains.
inline constexpr int kNumDomains = 10;

/// Human-readable domain name ("traffic", "electricity", ...).
const char* DomainName(Domain d);

/// Parses a domain name (case-insensitive); error on unknown names.
easytime::Result<Domain> ParseDomain(const std::string& name);

/// \brief A univariate time series: ordered observations at a fixed
/// (implicit) frequency, plus metadata used by the benchmark layers.
class Series {
 public:
  Series() = default;
  Series(std::string name, std::vector<double> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  size_t length() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }

  /// Seasonal period hint (observations per cycle); 0 = unknown/none.
  size_t period_hint() const { return period_hint_; }
  void set_period_hint(size_t p) { period_hint_ = p; }

  /// The application domain this series belongs to.
  Domain domain() const { return domain_; }
  void set_domain(Domain d) { domain_ = d; }

  /// Returns values[start, start+len) as a new vector; clamps to bounds.
  std::vector<double> Slice(size_t start, size_t len) const;

  /// Appends one observation.
  void Append(double v) { values_.push_back(v); }

 private:
  std::string name_;
  std::vector<double> values_;
  size_t period_hint_ = 0;
  Domain domain_ = Domain::kWeb;
};

/// \brief A dataset: one or more aligned channels (univariate series of the
/// same length). Multivariate forecasting treats channels jointly; the
/// benchmark's 8k univariate datasets are single-channel Datasets.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Domain domain() const { return domain_; }
  void set_domain(Domain d) { domain_ = d; }

  size_t num_channels() const { return channels_.size(); }
  bool multivariate() const { return channels_.size() > 1; }

  /// Length of each channel (channels are aligned); 0 when empty.
  size_t length() const {
    return channels_.empty() ? 0 : channels_[0].length();
  }

  const Series& channel(size_t i) const { return channels_[i]; }
  Series& mutable_channel(size_t i) { return channels_[i]; }
  const std::vector<Series>& channels() const { return channels_; }

  /// Adds a channel; all channels must share the dataset length.
  easytime::Status AddChannel(Series s);

  /// \brief Appends one batch of observations to every channel: one inner
  /// vector per channel, all the same non-zero length, all values finite.
  /// Channels stay aligned or the call fails without mutating anything.
  easytime::Status AppendObservations(
      const std::vector<std::vector<double>>& per_channel);

  /// The primary channel (channel 0) — the univariate view of the dataset.
  const Series& primary() const { return channels_[0]; }

 private:
  std::string name_;
  Domain domain_ = Domain::kWeb;
  std::vector<Series> channels_;
};

/// \brief Loads a dataset from CSV. Layout: one column per channel, one row
/// per time step; a header row names channels. A column named "date" or
/// "timestamp" is skipped.
easytime::Result<Dataset> LoadDatasetCsv(const std::string& path);

/// Serializes a dataset to CSV (inverse of LoadDatasetCsv).
easytime::Status SaveDatasetCsv(const Dataset& ds, const std::string& path);

}  // namespace easytime::tsdata
