#include "tsdata/dataset_store.h"

#include <filesystem>
#include <utility>

#include "common/json.h"
#include "store/record_store.h"

namespace easytime::tsdata {

namespace {

Json SeriesToJson(const Series& s) {
  Json j = Json::Object();
  j.Set("name", s.name());
  j.Set("domain", DomainName(s.domain()));
  j.Set("period_hint", static_cast<int64_t>(s.period_hint()));
  Json values = Json::Array();
  for (double v : s.values()) values.Append(v);
  j.Set("values", std::move(values));
  return j;
}

easytime::Result<Series> SeriesFromJson(const Json& j) {
  if (!j.is_object() || !j.Get("values").is_array()) {
    return easytime::Status::ParseError("dataset store: malformed series row");
  }
  std::vector<double> values;
  values.reserve(j.Get("values").size());
  for (const Json& v : j.Get("values").items()) {
    if (!v.is_number()) {
      return easytime::Status::ParseError(
          "dataset store: non-numeric series value");
    }
    values.push_back(v.AsDouble());
  }
  Series s(j.GetString("name", ""), std::move(values));
  s.set_period_hint(static_cast<size_t>(j.GetInt("period_hint", 0)));
  auto domain_or = ParseDomain(j.GetString("domain", "web"));
  EASYTIME_RETURN_IF_ERROR(domain_or.status());
  s.set_domain(*domain_or);
  return s;
}

Json DatasetToJson(const Dataset& ds) {
  Json j = Json::Object();
  j.Set("name", ds.name());
  j.Set("domain", DomainName(ds.domain()));
  Json channels = Json::Array();
  for (const Series& s : ds.channels()) channels.Append(SeriesToJson(s));
  j.Set("channels", std::move(channels));
  return j;
}

easytime::Result<Dataset> DatasetFromJson(const Json& j) {
  if (!j.is_object() || !j.Get("channels").is_array()) {
    return easytime::Status::ParseError("dataset store: malformed dataset row");
  }
  Dataset ds(j.GetString("name", ""));
  auto domain_or = ParseDomain(j.GetString("domain", "web"));
  EASYTIME_RETURN_IF_ERROR(domain_or.status());
  ds.set_domain(*domain_or);
  for (const Json& c : j.Get("channels").items()) {
    auto series_or = SeriesFromJson(c);
    EASYTIME_RETURN_IF_ERROR(series_or.status());
    EASYTIME_RETURN_IF_ERROR(ds.AddChannel(std::move(*series_or)));
  }
  return ds;
}

}  // namespace

easytime::Result<bool> LoadRepositoryFromStore(const std::string& dir,
                                               Repository* repo) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return false;  // cold start

  store::RecordStoreOptions options;
  store::RecordStoreRecovery recovery;
  auto store_or = store::RecordStore::Open(dir, options, &recovery);
  EASYTIME_RETURN_IF_ERROR(store_or.status());
  if (recovery.tail.empty()) return false;

  for (const auto& [seq, payload] : recovery.tail) {
    (void)seq;
    auto json_or = Json::Parse(payload);
    EASYTIME_RETURN_IF_ERROR(json_or.status());
    auto ds_or = DatasetFromJson(*json_or);
    EASYTIME_RETURN_IF_ERROR(ds_or.status());
    EASYTIME_RETURN_IF_ERROR(repo->Add(std::move(*ds_or)));
  }
  return true;
}

easytime::Status PersistRepository(const std::string& dir,
                                   const Repository& repo) {
  store::RecordStoreOptions options;
  auto store_or = store::RecordStore::Open(dir, options);
  EASYTIME_RETURN_IF_ERROR(store_or.status());
  store::RecordStore& store = **store_or;
  for (const Dataset* ds : repo.All()) {
    EASYTIME_RETURN_IF_ERROR(store.Append(DatasetToJson(*ds).Dump()).status());
  }
  return store.Sync();
}

}  // namespace easytime::tsdata
