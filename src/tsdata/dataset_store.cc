#include "tsdata/dataset_store.h"

#include <filesystem>
#include <utility>

#include "common/json.h"
#include "store/record_store.h"

namespace easytime::tsdata {

namespace {

Json SeriesToJson(const Series& s) {
  Json j = Json::Object();
  j.Set("name", s.name());
  j.Set("domain", DomainName(s.domain()));
  j.Set("period_hint", static_cast<int64_t>(s.period_hint()));
  Json values = Json::Array();
  for (double v : s.values()) values.Append(v);
  j.Set("values", std::move(values));
  return j;
}

easytime::Result<Series> SeriesFromJson(const Json& j) {
  if (!j.is_object() || !j.Get("values").is_array()) {
    return easytime::Status::ParseError("dataset store: malformed series row");
  }
  std::vector<double> values;
  values.reserve(j.Get("values").size());
  for (const Json& v : j.Get("values").items()) {
    if (!v.is_number()) {
      return easytime::Status::ParseError(
          "dataset store: non-numeric series value");
    }
    values.push_back(v.AsDouble());
  }
  Series s(j.GetString("name", ""), std::move(values));
  s.set_period_hint(static_cast<size_t>(j.GetInt("period_hint", 0)));
  auto domain_or = ParseDomain(j.GetString("domain", "web"));
  EASYTIME_RETURN_IF_ERROR(domain_or.status());
  s.set_domain(*domain_or);
  return s;
}

Json DatasetToJson(const Dataset& ds) {
  Json j = Json::Object();
  j.Set("name", ds.name());
  j.Set("domain", DomainName(ds.domain()));
  Json channels = Json::Array();
  for (const Series& s : ds.channels()) channels.Append(SeriesToJson(s));
  j.Set("channels", std::move(channels));
  return j;
}

easytime::Result<Dataset> DatasetFromJson(const Json& j) {
  if (!j.is_object() || !j.Get("channels").is_array()) {
    return easytime::Status::ParseError("dataset store: malformed dataset row");
  }
  Dataset ds(j.GetString("name", ""));
  auto domain_or = ParseDomain(j.GetString("domain", "web"));
  EASYTIME_RETURN_IF_ERROR(domain_or.status());
  ds.set_domain(*domain_or);
  for (const Json& c : j.Get("channels").items()) {
    auto series_or = SeriesFromJson(c);
    EASYTIME_RETURN_IF_ERROR(series_or.status());
    EASYTIME_RETURN_IF_ERROR(ds.AddChannel(std::move(*series_or)));
  }
  return ds;
}

Json SuiteFingerprint(const SuiteSpec& suite) {
  Json j = Json::Object();
  j.Set("univariate_per_domain",
        static_cast<int64_t>(suite.univariate_per_domain));
  j.Set("multivariate_total", static_cast<int64_t>(suite.multivariate_total));
  j.Set("min_length", static_cast<int64_t>(suite.min_length));
  j.Set("max_length", static_cast<int64_t>(suite.max_length));
  j.Set("multivariate_channels",
        static_cast<int64_t>(suite.multivariate_channels));
  j.Set("seed", static_cast<int64_t>(suite.seed));
  return j;
}

}  // namespace

std::string DatasetStoreManifest(const SuiteSpec& suite,
                                 size_t dataset_count) {
  Json j = Json::Object();
  j.Set("manifest", true);
  j.Set("datasets", static_cast<int64_t>(dataset_count));
  j.Set("suite", SuiteFingerprint(suite));
  return j.Dump();
}

easytime::Result<bool> LoadRepositoryFromStore(const std::string& dir,
                                               const SuiteSpec& suite,
                                               Repository* repo) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return false;  // cold start

  store::RecordStoreOptions options;
  store::RecordStoreRecovery recovery;
  auto store_or = store::RecordStore::Open(dir, options, &recovery);
  EASYTIME_RETURN_IF_ERROR(store_or.status());
  if (recovery.tail.empty()) return false;

  // A complete persist ends in a manifest matching both the dataset count
  // and the suite fingerprint. Anything else — a crash mid-persist left a
  // manifest-less tail, or the suite was reconfigured since the cache was
  // written — is not a warm start.
  const std::string& last = recovery.tail.back().second;
  auto manifest_or = Json::Parse(last);
  if (!manifest_or.ok() || !manifest_or->is_object() ||
      !manifest_or->GetBool("manifest", false)) {
    return false;
  }
  const size_t dataset_count = recovery.tail.size() - 1;
  if (manifest_or->GetInt("datasets", -1) !=
      static_cast<int64_t>(dataset_count)) {
    return false;
  }
  if (manifest_or->Get("suite").Dump() != SuiteFingerprint(suite).Dump()) {
    return false;
  }

  // Decode into a scratch repository so a bad record can't leave the
  // caller's half-populated.
  Repository loaded;
  for (size_t i = 0; i < dataset_count; ++i) {
    auto json_or = Json::Parse(recovery.tail[i].second);
    EASYTIME_RETURN_IF_ERROR(json_or.status());
    auto ds_or = DatasetFromJson(*json_or);
    EASYTIME_RETURN_IF_ERROR(ds_or.status());
    EASYTIME_RETURN_IF_ERROR(loaded.Add(std::move(*ds_or)));
  }
  *repo = std::move(loaded);
  return true;
}

easytime::Status PersistRepository(const std::string& dir,
                                   const SuiteSpec& suite,
                                   const Repository& repo) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (ec) {
    return easytime::Status::IOError("cannot clear dataset store " + dir +
                                     ": " + ec.message());
  }
  store::RecordStoreOptions options;
  auto store_or = store::RecordStore::Open(dir, options);
  EASYTIME_RETURN_IF_ERROR(store_or.status());
  store::RecordStore& store = **store_or;
  for (const Dataset* ds : repo.All()) {
    EASYTIME_RETURN_IF_ERROR(store.Append(DatasetToJson(*ds).Dump()).status());
  }
  EASYTIME_RETURN_IF_ERROR(
      store.Append(DatasetStoreManifest(suite, repo.All().size())).status());
  return store.Sync();
}

}  // namespace easytime::tsdata
