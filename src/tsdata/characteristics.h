#pragma once

/// \file characteristics.h
/// \brief Time-series characteristics extraction. TFB curates datasets to
/// cover Seasonality, Trend, Transition, Shifting, Stationarity, and
/// Correlation; this module measures those six axes so that (a) the
/// generator can be validated, (b) the recommender can correlate features
/// with method performance, and (c) the Q&A module can answer questions
/// like "... on time series with strong seasonality".

#include <cstddef>
#include <string>
#include <vector>

#include "tsdata/series.h"

namespace easytime::tsdata {

/// \brief The six TFB characteristic measurements plus the detected period.
/// All strengths are normalized to [0, 1]; booleans apply the thresholds
/// used throughout the benchmark.
struct Characteristics {
  double seasonality = 0.0;   ///< STL-style seasonal strength
  double trend = 0.0;         ///< STL-style trend strength
  double transition = 0.0;    ///< regime/slope-change intensity (CUSUM-based)
  double shifting = 0.0;      ///< distribution drift between halves
  double stationarity = 0.0;  ///< 1 = strongly stationary (ADF-based)
  double correlation = 0.0;   ///< mean |pairwise Pearson| across channels
  size_t period = 0;          ///< dominant seasonal period (0 = none)

  bool has_seasonality() const { return seasonality > 0.64; }
  bool has_trend() const { return trend > 0.6; }
  bool is_stationary() const { return stationarity > 0.5; }
  bool has_shifting() const { return shifting > 0.5; }
  bool has_transition() const { return transition > 0.5; }

  /// Short human-readable summary for the frontend (Fig. 4 label 4).
  std::string Describe() const;
};

/// \brief Detects the dominant seasonal period of \p values by combining the
/// power-spectrum peak with ACF confirmation; returns 0 when no credible
/// period exists. \p max_period defaults to length/3.
size_t DetectPeriod(const std::vector<double>& values, size_t max_period = 0);

/// Seasonal strength: 1 - Var(remainder)/Var(detrended), clamped to [0,1].
double SeasonalStrength(const std::vector<double>& values, size_t period);

/// Trend strength: 1 - Var(remainder)/Var(deseasonalized), clamped to [0,1].
double TrendStrength(const std::vector<double>& values, size_t period);

/// \brief Augmented Dickey–Fuller test statistic for a unit root, with
/// automatic lag order floor(cbrt(n)). More negative = more stationary.
double AdfStatistic(const std::vector<double>& values);

/// Maps an ADF statistic into a [0,1] stationarity score (1 at/below the 1%
/// critical value, 0 well above the 10% value).
double StationarityScore(double adf_stat);

/// \brief Distribution-shift score in [0,1]: standardized difference in mean
/// and scale between the first and second half of the series.
double ShiftingScore(const std::vector<double>& values);

/// \brief Transition score in [0,1]: intensity of regime changes detected by
/// a sliding CUSUM over windowed means.
double TransitionScore(const std::vector<double>& values);

/// Mean absolute pairwise Pearson correlation across dataset channels; 0 for
/// univariate datasets.
double ChannelCorrelation(const Dataset& ds);

/// Extracts the full characteristic profile of a univariate series.
Characteristics ExtractCharacteristics(const std::vector<double>& values);

/// Extracts a dataset-level profile: channel-averaged univariate
/// characteristics plus the cross-channel correlation axis.
Characteristics ExtractCharacteristics(const Dataset& ds);

/// \brief A compact numeric feature vector (fixed length) summarizing a
/// series: the six characteristics plus distributional statistics. Used as a
/// fallback/augmentation of learned TS2Vec features in the recommender.
std::vector<double> CharacteristicFeatureVector(
    const std::vector<double>& values);

/// Length of the vector produced by CharacteristicFeatureVector.
inline constexpr size_t kCharacteristicFeatureDim = 12;

}  // namespace easytime::tsdata
