#pragma once

/// \file scaler.h
/// \brief Normalization for the benchmark pipeline. TFB emphasizes that the
/// *choice* of normalization must be consistent across compared methods; the
/// pipeline fits the scaler on the training split only and applies it
/// everywhere (no test leakage).

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace easytime::tsdata {

/// \brief Fit-on-train / transform-everywhere normalizer interface.
class Scaler {
 public:
  virtual ~Scaler() = default;

  /// Estimates scaling parameters from training data.
  virtual easytime::Status Fit(const std::vector<double>& train) = 0;

  /// Maps raw values into normalized space.
  virtual std::vector<double> Transform(const std::vector<double>& v) const = 0;

  /// Maps normalized values back to the raw space.
  virtual std::vector<double> Inverse(const std::vector<double>& v) const = 0;

  /// Identifier ("zscore", "minmax", "none").
  virtual std::string name() const = 0;
};

/// Pass-through scaler.
class IdentityScaler : public Scaler {
 public:
  easytime::Status Fit(const std::vector<double>&) override {
    return easytime::Status::OK();
  }
  std::vector<double> Transform(const std::vector<double>& v) const override {
    return v;
  }
  std::vector<double> Inverse(const std::vector<double>& v) const override {
    return v;
  }
  std::string name() const override { return "none"; }
};

/// Standardizes to zero mean / unit variance (train statistics).
class ZScoreScaler : public Scaler {
 public:
  easytime::Status Fit(const std::vector<double>& train) override;
  std::vector<double> Transform(const std::vector<double>& v) const override;
  std::vector<double> Inverse(const std::vector<double>& v) const override;
  std::string name() const override { return "zscore"; }

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

/// Rescales the train range to [0, 1].
class MinMaxScaler : public Scaler {
 public:
  easytime::Status Fit(const std::vector<double>& train) override;
  std::vector<double> Transform(const std::vector<double>& v) const override;
  std::vector<double> Inverse(const std::vector<double>& v) const override;
  std::string name() const override { return "minmax"; }

 private:
  double min_ = 0.0;
  double range_ = 1.0;
};

/// Creates a scaler by name ("zscore" | "minmax" | "none").
easytime::Result<std::unique_ptr<Scaler>> MakeScaler(const std::string& name);

}  // namespace easytime::tsdata
