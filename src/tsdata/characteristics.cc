#include "tsdata/characteristics.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace easytime::tsdata {

namespace {

/// Classical decomposition: trend via centered MA, seasonal via per-phase
/// means of the detrended series. Returns (trend, seasonal) components.
std::pair<std::vector<double>, std::vector<double>> Decompose(
    const std::vector<double>& v, size_t period) {
  size_t n = v.size();
  size_t window = period >= 2 ? period : std::max<size_t>(3, n / 10);
  if (window % 2 == 0) ++window;  // centered MA wants an odd window
  std::vector<double> trend = MovingAverage(v, window);

  std::vector<double> seasonal(n, 0.0);
  if (period >= 2 && n >= 2 * period) {
    std::vector<double> phase_sum(period, 0.0);
    std::vector<size_t> phase_cnt(period, 0);
    for (size_t i = 0; i < n; ++i) {
      phase_sum[i % period] += v[i] - trend[i];
      ++phase_cnt[i % period];
    }
    double grand = 0.0;
    for (size_t p = 0; p < period; ++p) {
      phase_sum[p] /= std::max<size_t>(1, phase_cnt[p]);
      grand += phase_sum[p];
    }
    grand /= static_cast<double>(period);
    for (size_t i = 0; i < n; ++i) seasonal[i] = phase_sum[i % period] - grand;
  }
  return {std::move(trend), std::move(seasonal)};
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace

size_t DetectPeriod(const std::vector<double>& values, size_t max_period) {
  size_t n = values.size();
  if (n < 8) return 0;
  if (max_period == 0) max_period = n / 3;
  max_period = std::min(max_period, n / 3);
  if (max_period < 2) return 0;

  // Detrend first so strong trends do not masquerade as low frequencies.
  auto [intercept, slope] = LinearTrendFit(values);
  std::vector<double> detrended(n);
  for (size_t i = 0; i < n; ++i) {
    detrended[i] = values[i] - (intercept + slope * static_cast<double>(i));
  }

  // Spectral candidate: strongest non-DC frequency.
  std::vector<double> spec = PowerSpectrum(detrended);
  size_t padded = (spec.size() - 1) * 2;
  size_t best_k = 0;
  double best_power = 0.0;
  for (size_t k = 1; k < spec.size(); ++k) {
    double p = static_cast<double>(padded) / static_cast<double>(k);
    if (p < 2.0 || p > static_cast<double>(max_period)) continue;
    if (spec[k] > best_power) {
      best_power = spec[k];
      best_k = k;
    }
  }
  if (best_k == 0) return 0;
  size_t candidate = static_cast<size_t>(std::llround(
      static_cast<double>(padded) / static_cast<double>(best_k)));
  candidate = std::clamp<size_t>(candidate, 2, max_period);

  // Confirm with ACF: search a small neighborhood for the best lag.
  size_t best_lag = 0;
  double best_acf = 0.2;  // significance floor
  size_t lo = candidate > candidate / 4 ? candidate - candidate / 4 : 2;
  size_t hi = std::min(max_period, candidate + candidate / 4 + 1);
  for (size_t lag = std::max<size_t>(2, lo); lag <= hi; ++lag) {
    double r = Autocorrelation(detrended, lag);
    if (r > best_acf) {
      best_acf = r;
      best_lag = lag;
    }
  }
  return best_lag;
}

double SeasonalStrength(const std::vector<double>& values, size_t period) {
  size_t n = values.size();
  if (period < 2 || n < 2 * period) return 0.0;
  auto [trend, seasonal] = Decompose(values, period);
  std::vector<double> detrended = Subtract(values, trend);
  std::vector<double> remainder = Subtract(detrended, seasonal);
  double var_detrended = Variance(detrended);
  if (var_detrended < 1e-12) return 0.0;
  return std::clamp(1.0 - Variance(remainder) / var_detrended, 0.0, 1.0);
}

double TrendStrength(const std::vector<double>& values, size_t period) {
  size_t n = values.size();
  if (n < 6) return 0.0;
  auto [trend, seasonal] = Decompose(values, period);
  std::vector<double> deseason = Subtract(values, seasonal);
  std::vector<double> remainder = Subtract(deseason, trend);
  double var_deseason = Variance(deseason);
  if (var_deseason < 1e-12) return 0.0;
  return std::clamp(1.0 - Variance(remainder) / var_deseason, 0.0, 1.0);
}

double AdfStatistic(const std::vector<double>& values) {
  size_t n = values.size();
  if (n < 12) return 0.0;
  size_t lags = static_cast<size_t>(std::cbrt(static_cast<double>(n)));
  lags = std::clamp<size_t>(lags, 1, 12);

  // Regression: dy_t = a + b*y_{t-1} + sum_i c_i dy_{t-i}.
  std::vector<double> dy = Difference(values);
  size_t rows = dy.size() - lags;
  size_t cols = 2 + lags;
  if (rows < cols + 2) return 0.0;

  std::vector<double> x(rows * cols);
  std::vector<double> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    size_t t = r + lags;  // index into dy
    y[r] = dy[t];
    x[r * cols + 0] = 1.0;
    x[r * cols + 1] = values[t];  // y_{t-1} of the level series
    for (size_t i = 0; i < lags; ++i) {
      x[r * cols + 2 + i] = dy[t - 1 - i];
    }
  }
  auto beta_res = LeastSquares(x, y, rows, cols);
  if (!beta_res.ok()) return 0.0;
  const auto& beta = *beta_res;

  // Residual variance and the standard error of beta[1].
  double sse = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    double pred = 0.0;
    for (size_t c = 0; c < cols; ++c) pred += x[r * cols + c] * beta[c];
    double e = y[r] - pred;
    sse += e * e;
  }
  double sigma2 = sse / static_cast<double>(rows - cols);

  // SE(beta_1) = sqrt(sigma2 * [(X'X)^-1]_{11}); solve X'X z = e_1.
  std::vector<double> xtx(cols * cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        xtx[i * cols + j] += x[r * cols + i] * x[r * cols + j];
      }
    }
  }
  std::vector<double> e1(cols, 0.0);
  e1[1] = 1.0;
  auto z = SolveLinearSystem(xtx, e1, cols);
  if (!z.ok()) return 0.0;
  double var_b1 = sigma2 * (*z)[1];
  if (var_b1 <= 0.0) return 0.0;
  return beta[1] / std::sqrt(var_b1);
}

double StationarityScore(double adf_stat) {
  // ADF critical values (constant, no trend): 1% ~ -3.43, 10% ~ -2.57.
  // Map linearly: <= -3.43 -> 1, >= -1.0 -> 0.
  const double hi = -3.43, lo = -1.0;
  double score = (lo - adf_stat) / (lo - hi);
  return std::clamp(score, 0.0, 1.0);
}

double ShiftingScore(const std::vector<double>& values) {
  size_t n = values.size();
  if (n < 8) return 0.0;
  std::vector<double> a(values.begin(), values.begin() + static_cast<long>(n / 2));
  std::vector<double> b(values.begin() + static_cast<long>(n / 2), values.end());
  double pooled = std::sqrt((Variance(a) + Variance(b)) / 2.0);
  if (pooled < 1e-12) pooled = 1e-12;
  double mean_shift = std::fabs(Mean(a) - Mean(b)) / pooled;
  double sa = StdDev(a), sb = StdDev(b);
  double scale_shift =
      (std::max(sa, sb) > 1e-12)
          ? 1.0 - std::min(sa, sb) / std::max(std::max(sa, sb), 1e-12)
          : 0.0;
  // Logistic squash of the standardized mean shift; blend in scale drift.
  double m = 1.0 - std::exp(-0.9 * mean_shift);
  return std::clamp(0.8 * m + 0.2 * scale_shift, 0.0, 1.0);
}

double TransitionScore(const std::vector<double>& values) {
  size_t n = values.size();
  if (n < 24) return 0.0;
  // Windowed means; count CUSUM-style breaks in the local level/slope.
  size_t w = std::max<size_t>(8, n / 16);
  std::vector<double> means;
  for (size_t start = 0; start + w <= n; start += w) {
    double s = 0.0;
    for (size_t i = start; i < start + w; ++i) s += values[i];
    means.push_back(s / static_cast<double>(w));
  }
  if (means.size() < 3) return 0.0;
  std::vector<double> dm = Difference(means);
  double sd = StdDev(dm);
  if (sd < 1e-12) return 0.0;
  // A transition shows as a sign change in windowed slope with large
  // magnitude; count significant slope reversals.
  size_t breaks = 0;
  for (size_t i = 1; i < dm.size(); ++i) {
    bool sign_flip = (dm[i] > 0) != (dm[i - 1] > 0);
    bool significant = std::fabs(dm[i] - dm[i - 1]) > 2.0 * sd;
    if (sign_flip && significant) ++breaks;
  }
  double rate = static_cast<double>(breaks) /
                static_cast<double>(dm.size() - 1);
  return std::clamp(3.0 * rate, 0.0, 1.0);
}

double ChannelCorrelation(const Dataset& ds) {
  size_t c = ds.num_channels();
  if (c < 2) return 0.0;
  double acc = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = i + 1; j < c; ++j) {
      acc += std::fabs(
          PearsonCorrelation(ds.channel(i).values(), ds.channel(j).values()));
      ++pairs;
    }
  }
  return pairs ? acc / static_cast<double>(pairs) : 0.0;
}

Characteristics ExtractCharacteristics(const std::vector<double>& values) {
  Characteristics ch;
  ch.period = DetectPeriod(values);
  ch.seasonality = SeasonalStrength(values, ch.period);
  ch.trend = TrendStrength(values, ch.period);
  ch.transition = TransitionScore(values);
  ch.shifting = ShiftingScore(values);
  ch.stationarity = StationarityScore(AdfStatistic(values));
  ch.correlation = 0.0;
  return ch;
}

Characteristics ExtractCharacteristics(const Dataset& ds) {
  Characteristics acc;
  if (ds.num_channels() == 0) return acc;
  for (const auto& chan : ds.channels()) {
    Characteristics c = ExtractCharacteristics(chan.values());
    acc.seasonality += c.seasonality;
    acc.trend += c.trend;
    acc.transition += c.transition;
    acc.shifting += c.shifting;
    acc.stationarity += c.stationarity;
    if (c.period > acc.period) acc.period = c.period;
  }
  double k = static_cast<double>(ds.num_channels());
  acc.seasonality /= k;
  acc.trend /= k;
  acc.transition /= k;
  acc.shifting /= k;
  acc.stationarity /= k;
  acc.correlation = ChannelCorrelation(ds);
  return acc;
}

std::string Characteristics::Describe() const {
  std::vector<std::string> parts;
  if (has_seasonality()) {
    parts.push_back("seasonal (period " + std::to_string(period) + ")");
  }
  if (has_trend()) parts.push_back("trending");
  if (has_shifting()) parts.push_back("shifting");
  if (has_transition()) parts.push_back("transitioning");
  parts.push_back(is_stationary() ? "stationary" : "non-stationary");
  if (correlation > 0.3) parts.push_back("cross-correlated");
  return Join(parts, ", ");
}

std::vector<double> CharacteristicFeatureVector(
    const std::vector<double>& values) {
  Characteristics ch = ExtractCharacteristics(values);
  std::vector<double> f;
  f.reserve(kCharacteristicFeatureDim);
  f.push_back(ch.seasonality);
  f.push_back(ch.trend);
  f.push_back(ch.transition);
  f.push_back(ch.shifting);
  f.push_back(ch.stationarity);
  f.push_back(ch.period > 0
                  ? std::log(1.0 + static_cast<double>(ch.period)) / 6.0
                  : 0.0);
  // Distribution shape in normalized space.
  double m = Mean(values), sd = std::max(StdDev(values), 1e-12);
  double skew = 0.0, kurt = 0.0;
  for (double v : values) {
    double z = (v - m) / sd;
    skew += z * z * z;
    kurt += z * z * z * z;
  }
  double n = std::max<double>(1.0, static_cast<double>(values.size()));
  f.push_back(std::tanh(skew / n));
  f.push_back(std::tanh(kurt / n / 3.0 - 1.0));
  f.push_back(Autocorrelation(values, 1));
  std::vector<double> d1 = Difference(values);
  f.push_back(Autocorrelation(d1, 1));
  double cv = std::fabs(m) > 1e-9 ? std::min(1.0, sd / std::fabs(m)) : 1.0;
  f.push_back(cv);
  f.push_back(std::log(1.0 + n) / 10.0);
  return f;
}

}  // namespace easytime::tsdata
