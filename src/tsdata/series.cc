#include "tsdata/series.h"

#include <algorithm>
#include <cmath>

#include "common/csv.h"
#include "common/string_util.h"

namespace easytime::tsdata {

const char* DomainName(Domain d) {
  switch (d) {
    case Domain::kTraffic: return "traffic";
    case Domain::kElectricity: return "electricity";
    case Domain::kEnergy: return "energy";
    case Domain::kEnvironment: return "environment";
    case Domain::kNature: return "nature";
    case Domain::kEconomic: return "economic";
    case Domain::kStock: return "stock";
    case Domain::kBanking: return "banking";
    case Domain::kHealth: return "health";
    case Domain::kWeb: return "web";
  }
  return "unknown";
}

easytime::Result<Domain> ParseDomain(const std::string& name) {
  std::string lower = ToLower(name);
  for (int i = 0; i < kNumDomains; ++i) {
    Domain d = static_cast<Domain>(i);
    if (lower == DomainName(d)) return d;
  }
  return Status::NotFound("unknown domain: " + name);
}

std::vector<double> Series::Slice(size_t start, size_t len) const {
  if (start >= values_.size()) return {};
  size_t end = std::min(values_.size(), start + len);
  return std::vector<double>(values_.begin() + static_cast<long>(start),
                             values_.begin() + static_cast<long>(end));
}

easytime::Status Dataset::AddChannel(Series s) {
  if (!channels_.empty() && s.length() != length()) {
    return Status::InvalidArgument(
        "channel '" + s.name() + "' length " + std::to_string(s.length()) +
        " does not match dataset length " + std::to_string(length()));
  }
  channels_.push_back(std::move(s));
  return Status::OK();
}

easytime::Status Dataset::AppendObservations(
    const std::vector<std::vector<double>>& per_channel) {
  if (channels_.empty()) {
    return Status::InvalidArgument("dataset '" + name_ + "' has no channels");
  }
  if (per_channel.size() != channels_.size()) {
    return Status::InvalidArgument(
        "append carries " + std::to_string(per_channel.size()) +
        " channels; dataset '" + name_ + "' has " +
        std::to_string(channels_.size()));
  }
  const size_t batch = per_channel[0].size();
  if (batch == 0) {
    return Status::InvalidArgument("append batch must be non-empty");
  }
  for (const auto& ch : per_channel) {
    if (ch.size() != batch) {
      return Status::InvalidArgument(
          "append channels have unequal lengths; channels must stay aligned");
    }
    for (double v : ch) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("appended values must be finite");
      }
    }
  }
  for (size_t c = 0; c < channels_.size(); ++c) {
    auto& values = channels_[c].mutable_values();
    values.insert(values.end(), per_channel[c].begin(), per_channel[c].end());
  }
  return Status::OK();
}

easytime::Result<Dataset> LoadDatasetCsv(const std::string& path) {
  EASYTIME_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  if (doc.header.empty()) return Status::ParseError("empty CSV header");

  // Derive a dataset name from the file name.
  std::string name = path;
  if (auto pos = name.find_last_of('/'); pos != std::string::npos) {
    name = name.substr(pos + 1);
  }
  if (EndsWith(name, ".csv")) name = name.substr(0, name.size() - 4);

  Dataset ds(name);
  std::vector<int> value_cols;
  for (size_t c = 0; c < doc.header.size(); ++c) {
    std::string lower = ToLower(doc.header[c]);
    if (lower == "date" || lower == "timestamp" || lower == "time") continue;
    value_cols.push_back(static_cast<int>(c));
  }
  if (value_cols.empty()) {
    return Status::ParseError("no value columns in CSV: " + path);
  }

  for (int c : value_cols) {
    std::vector<double> values;
    values.reserve(doc.rows.size());
    for (size_t r = 0; r < doc.rows.size(); ++r) {
      if (static_cast<size_t>(c) >= doc.rows[r].size()) {
        return Status::ParseError("row " + std::to_string(r) +
                                  " has too few columns");
      }
      EASYTIME_ASSIGN_OR_RETURN(double v, ParseDouble(doc.rows[r][c]));
      values.push_back(v);
    }
    EASYTIME_RETURN_IF_ERROR(
        ds.AddChannel(Series(doc.header[static_cast<size_t>(c)],
                             std::move(values))));
  }
  return ds;
}

easytime::Status SaveDatasetCsv(const Dataset& ds, const std::string& path) {
  CsvDocument doc;
  for (const auto& ch : ds.channels()) doc.header.push_back(ch.name());
  for (size_t t = 0; t < ds.length(); ++t) {
    std::vector<std::string> row;
    row.reserve(ds.num_channels());
    for (const auto& ch : ds.channels()) {
      row.push_back(FormatDouble(ch[t], 8));
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, doc);
}

}  // namespace easytime::tsdata
