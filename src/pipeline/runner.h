#pragma once

/// \file runner.h
/// \brief The benchmark pipeline: "standardized dataset processing and
/// splitting, model training and testing, as well as unified
/// post-processing". Fans (method x dataset) pairs across a thread pool,
/// logs progress, and produces the result table that seeds the benchmark
/// knowledge base.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/result.h"
#include "pipeline/benchmark_config.h"
#include "tsdata/repository.h"

namespace easytime::pipeline {

/// One (method, dataset) evaluation outcome.
struct RunRecord {
  std::string dataset;
  std::string method;
  std::string strategy;
  size_t horizon = 0;
  bool multivariate = false;
  std::string domain;
  std::map<std::string, double> metrics;
  size_t num_windows = 0;
  double fit_seconds = 0.0;
  double forecast_seconds = 0.0;
  easytime::Status status;  ///< per-pair failure is recorded, not fatal

  /// Serializes for the job checkpoint (crash-safe evaluation resume).
  easytime::Json ToJson() const;
  static easytime::Result<RunRecord> FromJson(const easytime::Json& j);
};

/// Checkpoint/resume identity of a (dataset, method) pair.
std::string PairKey(const std::string& dataset, const std::string& method);

/// \brief The full pipeline output.
struct BenchmarkReport {
  std::vector<RunRecord> records;
  double wall_seconds = 0.0;

  /// Records that completed successfully.
  std::vector<const RunRecord*> Successful() const;

  /// \brief Leaderboard: methods ranked by mean \p metric over successful
  /// records (ascending unless the metric is higher-is-better).
  std::vector<std::pair<std::string, double>> Leaderboard(
      const std::string& metric) const;

  /// Renders the per-pair result table as aligned ASCII.
  std::string FormatTable(const std::vector<std::string>& metric_names) const;

  /// Writes records to CSV (the reporting layer's persistent output).
  easytime::Status WriteCsv(const std::string& path) const;
};

/// \brief Observation and control hooks for a pipeline run. Both callbacks
/// are invoked from worker threads and must be thread-safe; either may be
/// left empty.
struct RunHooks {
  /// Polled before each (method, dataset) pair; returning true skips the
  /// remaining pairs and makes Run return Status::Cancelled. The serving
  /// layer wires this to a job's cancellation flag.
  std::function<bool()> cancelled;
  /// Called after each pair completes with (pairs done, pairs total).
  std::function<void(size_t, size_t)> progress;
  /// Wall-clock budget for the whole run. Once expired, remaining pairs are
  /// abandoned and Run returns Status::DeadlineExceeded. Defaults to
  /// infinite.
  easytime::Deadline deadline;
  /// Called with each freshly evaluated record (worker thread — must be
  /// thread-safe). The serving layer appends these to the job checkpoint.
  /// Not invoked for records spliced in from `completed`.
  std::function<void(const RunRecord&)> on_record;
  /// Previously completed records keyed by PairKey(dataset, method);
  /// matching pairs are copied into the report instead of re-evaluated —
  /// the crash-safe resume path. Not owned; may be null.
  const std::map<std::string, RunRecord>* completed = nullptr;
  /// Upper bound on this run's worker-pool size (0 = no cap). The serving
  /// job pool sets it so N concurrent evaluation jobs split the machine's
  /// cores instead of each spinning up a full-width pool.
  size_t max_threads = 0;
};

/// \brief Executes a benchmark configuration against a dataset repository.
class PipelineRunner {
 public:
  PipelineRunner(const tsdata::Repository* repo, BenchmarkConfig config);

  /// Runs all (method, dataset) pairs; individual failures are recorded in
  /// their RunRecord::status rather than aborting the run.
  easytime::Result<BenchmarkReport> Run() const;

  /// Run with observation/control hooks. A cancelled run returns
  /// Status::Cancelled, an expired deadline Status::DeadlineExceeded — no
  /// partial report is produced (checkpointing via hooks.on_record is how
  /// partial progress survives).
  easytime::Result<BenchmarkReport> Run(const RunHooks& hooks) const;

 private:
  const tsdata::Repository* repo_;
  BenchmarkConfig config_;
};

}  // namespace easytime::pipeline
