#include "pipeline/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

#include "common/csv.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "methods/registry.h"
#include "pipeline/circuit_breaker.h"

namespace easytime::pipeline {

std::string PairKey(const std::string& dataset, const std::string& method) {
  return dataset + '\n' + method;
}

easytime::Json RunRecord::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  j.Set("dataset", dataset);
  j.Set("method", method);
  j.Set("strategy", strategy);
  j.Set("horizon", static_cast<int64_t>(horizon));
  j.Set("multivariate", multivariate);
  j.Set("domain", domain);
  easytime::Json m = easytime::Json::Object();
  for (const auto& [name, v] : metrics) m.Set(name, v);
  j.Set("metrics", std::move(m));
  j.Set("num_windows", static_cast<int64_t>(num_windows));
  j.Set("fit_seconds", fit_seconds);
  j.Set("forecast_seconds", forecast_seconds);
  j.Set("ok", status.ok());
  if (!status.ok()) {
    j.Set("code", static_cast<int64_t>(status.code()));
    j.Set("message", status.message());
  }
  return j;
}

easytime::Result<RunRecord> RunRecord::FromJson(const easytime::Json& j) {
  if (!j.is_object()) {
    return Status::ParseError("run record must be a JSON object");
  }
  RunRecord r;
  r.dataset = j.GetString("dataset", "");
  r.method = j.GetString("method", "");
  if (r.dataset.empty() || r.method.empty()) {
    return Status::ParseError("run record needs dataset and method names");
  }
  r.strategy = j.GetString("strategy", "");
  r.horizon = static_cast<size_t>(j.GetInt("horizon", 0));
  r.multivariate = j.GetBool("multivariate", false);
  r.domain = j.GetString("domain", "");
  if (j.Has("metrics") && j.Get("metrics").is_object()) {
    const easytime::Json& m = j.Get("metrics");
    for (const auto& name : m.keys()) {
      if (m.Get(name).is_number()) r.metrics[name] = m.Get(name).AsDouble();
    }
  }
  r.num_windows = static_cast<size_t>(j.GetInt("num_windows", 0));
  r.fit_seconds = j.GetDouble("fit_seconds", 0.0);
  r.forecast_seconds = j.GetDouble("forecast_seconds", 0.0);
  if (!j.GetBool("ok", true)) {
    int64_t code = j.GetInt("code", static_cast<int64_t>(StatusCode::kInternal));
    if (code <= 0 || code >= kNumStatusCodes) {
      code = static_cast<int64_t>(StatusCode::kInternal);
    }
    r.status = Status(static_cast<StatusCode>(code),
                      j.GetString("message", "checkpointed failure"));
  }
  return r;
}

std::vector<const RunRecord*> BenchmarkReport::Successful() const {
  std::vector<const RunRecord*> out;
  for (const auto& r : records) {
    if (r.status.ok()) out.push_back(&r);
  }
  return out;
}

std::vector<std::pair<std::string, double>> BenchmarkReport::Leaderboard(
    const std::string& metric) const {
  std::map<std::string, std::pair<double, size_t>> acc;  // method -> (sum, n)
  for (const auto& r : records) {
    if (!r.status.ok()) continue;
    auto it = r.metrics.find(metric);
    if (it == r.metrics.end() || !std::isfinite(it->second)) continue;
    auto& slot = acc[r.method];
    slot.first += it->second;
    slot.second += 1;
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [method, sum_n] : acc) {
    out.emplace_back(method, sum_n.first / static_cast<double>(sum_n.second));
  }
  bool higher = eval::MetricRegistry::Global().HigherIsBetter(metric);
  std::sort(out.begin(), out.end(), [higher](const auto& a, const auto& b) {
    return higher ? a.second > b.second : a.second < b.second;
  });
  return out;
}

std::string BenchmarkReport::FormatTable(
    const std::vector<std::string>& metric_names) const {
  std::vector<std::string> header = {"dataset", "method", "strategy",
                                     "horizon", "status"};
  for (const auto& m : metric_names) header.push_back(m);
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : records) {
    // Same status text as WriteCsv, so grepping a failure message works on
    // either surface.
    std::vector<std::string> row = {r.dataset, r.method, r.strategy,
                                    std::to_string(r.horizon),
                                    r.status.ok() ? "ok" : r.status.ToString()};
    for (const auto& m : metric_names) {
      auto it = r.metrics.find(m);
      row.push_back(it != r.metrics.end() ? FormatDouble(it->second, 4) : "-");
    }
    rows.push_back(std::move(row));
  }
  return easytime::FormatTable(header, rows);
}

easytime::Status BenchmarkReport::WriteCsv(const std::string& path) const {
  // Collect the union of metric names for a stable header. A set gives the
  // sorted order directly and avoids the quadratic linear-scan dedup.
  std::set<std::string> name_set;
  for (const auto& r : records) {
    for (const auto& [name, _] : r.metrics) name_set.insert(name);
  }
  std::vector<std::string> metric_names(name_set.begin(), name_set.end());

  CsvDocument doc;
  doc.rows.reserve(records.size());
  doc.header = {"dataset",  "method",      "strategy",
                "horizon",  "multivariate", "domain",
                "windows",  "fit_seconds", "forecast_seconds", "status"};
  for (const auto& m : metric_names) doc.header.push_back(m);
  for (const auto& r : records) {
    std::vector<std::string> row = {
        r.dataset,
        r.method,
        r.strategy,
        std::to_string(r.horizon),
        r.multivariate ? "1" : "0",
        r.domain,
        std::to_string(r.num_windows),
        FormatDouble(r.fit_seconds, 6),
        FormatDouble(r.forecast_seconds, 6),
        r.status.ok() ? "ok" : r.status.ToString()};
    for (const auto& m : metric_names) {
      auto it = r.metrics.find(m);
      row.push_back(it != r.metrics.end() ? FormatDouble(it->second, 8) : "");
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, doc);
}

PipelineRunner::PipelineRunner(const tsdata::Repository* repo,
                               BenchmarkConfig config)
    : repo_(repo), config_(std::move(config)) {}

easytime::Result<BenchmarkReport> PipelineRunner::Run() const {
  return Run(RunHooks{});
}

easytime::Result<BenchmarkReport> PipelineRunner::Run(
    const RunHooks& hooks) const {
  if (repo_ == nullptr) {
    return Status::InvalidArgument("repository must not be null");
  }
  if (!config_.log_file.empty()) {
    Logging::SetLogFile(config_.log_file);
  }

  // Resolve datasets.
  std::vector<const tsdata::Dataset*> datasets;
  if (config_.datasets.empty()) {
    datasets = repo_->All();
  } else {
    for (const auto& name : config_.datasets) {
      EASYTIME_ASSIGN_OR_RETURN(const tsdata::Dataset* ds, repo_->Get(name));
      datasets.push_back(ds);
    }
  }
  if (datasets.empty()) {
    return Status::InvalidArgument("no datasets to evaluate");
  }

  // Resolve methods.
  std::vector<MethodSpec> specs = config_.methods;
  if (specs.empty()) {
    for (const auto& name : methods::MethodRegistry::Global().Names()) {
      specs.push_back(MethodSpec{name, easytime::Json::Object()});
    }
  }

  EASYTIME_LOG(Info) << "pipeline: " << specs.size() << " methods x "
                     << datasets.size() << " datasets, strategy="
                     << eval::StrategyName(config_.eval.strategy)
                     << ", horizon=" << config_.eval.horizon;

  struct Task {
    const tsdata::Dataset* dataset;
    const MethodSpec* spec;
    size_t spec_index;
  };
  std::vector<Task> tasks;
  tasks.reserve(datasets.size() * specs.size());
  for (const auto* ds : datasets) {
    for (size_t s = 0; s < specs.size(); ++s) {
      tasks.push_back({ds, &specs[s], s});
    }
  }

  BenchmarkReport report;
  report.records.resize(tasks.size());
  eval::Evaluator evaluator(config_.eval);

  // Per-method circuit breaker: after breaker_threshold consecutive failures
  // of one forecaster its remaining pairs are skipped (recorded Unavailable)
  // instead of burning the rest of the run. With a cooldown configured, a
  // probe pair is let through once the cooldown elapses (half-open) and its
  // outcome closes or re-trips the breaker. "Consecutive" is counted over
  // completion order, which is approximate under the parallel fan-out.
  CircuitBreaker::Options breaker_opt;
  breaker_opt.threshold = static_cast<int>(config_.breaker_threshold);
  breaker_opt.cooldown_ms = config_.breaker_cooldown_ms;
  std::deque<CircuitBreaker> breakers;  // deque: breakers are not movable
  for (size_t s = 0; s < specs.size(); ++s) breakers.emplace_back(breaker_opt);
  const int breaker_threshold = breaker_opt.threshold;

  Stopwatch watch;
  // The job pool budgets each concurrent run's pool so N jobs share the
  // machine instead of oversubscribing it N-fold. ParallelFor has the
  // calling thread work alongside the pool, so a budget of B means B-1
  // workers — and a budget of one means no pool at all (plain loop below).
  size_t pool_workers = config_.num_threads;  // 0 = hardware concurrency
  if (hooks.max_threads > 0) {
    const size_t want =
        pool_workers > 0
            ? pool_workers
            : std::max<size_t>(1, std::thread::hardware_concurrency());
    pool_workers = std::min(want, hooks.max_threads) - 1;
  }
  std::mutex log_mu;
  std::atomic<size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> deadline_hit{false};
  const size_t total = tasks.size();
  auto run_pair = [&](size_t i) {
    if (cancelled.load(std::memory_order_relaxed) ||
        (hooks.cancelled && hooks.cancelled())) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    if (deadline_hit.load(std::memory_order_relaxed) ||
        hooks.deadline.expired()) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return;
    }
    const Task& task = tasks[i];
    RunRecord& rec = report.records[i];
    rec.dataset = task.dataset->name();
    rec.method = task.spec->name;
    rec.strategy = eval::StrategyName(config_.eval.strategy);
    rec.horizon = config_.eval.horizon;
    rec.multivariate = task.dataset->multivariate();
    rec.domain = tsdata::DomainName(task.dataset->domain());

    // Crash-safe resume: splice in a checkpointed record instead of
    // re-evaluating the pair.
    if (hooks.completed != nullptr) {
      auto it = hooks.completed->find(PairKey(rec.dataset, rec.method));
      if (it != hooks.completed->end()) {
        rec = it->second;
        if (hooks.progress) {
          hooks.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                         total);
        }
        return;
      }
    }

    CircuitBreaker& breaker = breakers[task.spec_index];
    if (!breaker.Allow(std::chrono::steady_clock::now())) {
      rec.status = Status::Unavailable(
          "circuit breaker open for method '" + rec.method + "' after " +
          std::to_string(breaker_threshold) +
          " consecutive failures; pair skipped");
      if (hooks.progress) {
        hooks.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                       total);
      }
      return;
    }

    Status injected;  // blast-radius containment: an injected fault fails
    if (FaultRegistry::AnyArmed()) {  // only this pair, never the run
      injected = FaultRegistry::Global().Check("pipeline.pair");
    }
    if (!injected.ok()) {
      rec.status = injected;
    } else {
      auto res = evaluator.EvaluateDataset(task.spec->name, task.spec->config,
                                           *task.dataset, hooks.deadline);
      if (res.ok()) {
        rec.metrics = res->metrics;
        rec.num_windows = res->num_windows;
        rec.fit_seconds = res->fit_seconds;
        rec.forecast_seconds = res->forecast_seconds;
        rec.status = Status::OK();
      } else {
        rec.status = res.status();
      }
    }
    if (rec.status.IsDeadlineExceeded()) {
      deadline_hit.store(true, std::memory_order_relaxed);
    }
    if (!rec.status.ok()) {
      std::lock_guard<std::mutex> lock(log_mu);
      EASYTIME_LOG(Warning) << rec.method << " on " << rec.dataset
                            << " failed: " << rec.status.ToString();
    }
    if (breaker_threshold > 0 && !rec.status.IsDeadlineExceeded()) {
      if (rec.status.ok()) {
        breaker.RecordSuccess();
      } else {
        breaker.RecordFailure(std::chrono::steady_clock::now());
        if (breaker.ConsumeTripEvent()) {
          std::lock_guard<std::mutex> lock(log_mu);
          EASYTIME_LOG(Warning)
              << "circuit breaker tripped for method '" << rec.method
              << "' after " << breaker_threshold << " consecutive failures";
        }
      }
    }
    // Deadline-expired pairs are not reported: they were not evaluated, and
    // a resume should run them for real.
    if (hooks.on_record && !rec.status.IsDeadlineExceeded()) {
      hooks.on_record(rec);
    }
    if (hooks.progress) {
      hooks.progress(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
    }
  };
  if (hooks.max_threads > 0 && pool_workers == 0) {
    for (size_t i = 0; i < tasks.size(); ++i) run_pair(i);
  } else {
    // Guided schedule: per-pair costs are heavily skewed (a deep method on
    // a long dataset vs naive on a short one), so decreasing chunk sizes
    // keep the tail balanced.
    ThreadPool pool(pool_workers);
    pool.ParallelFor(tasks.size(), run_pair, Schedule::kGuided);
  }
  if (cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("pipeline run cancelled");
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("pipeline run exceeded its deadline");
  }
  report.wall_seconds = watch.ElapsedSeconds();

  EASYTIME_LOG(Info) << "pipeline finished: " << report.Successful().size()
                     << "/" << report.records.size() << " pairs ok in "
                     << FormatDouble(report.wall_seconds, 2) << "s";

  if (!config_.output_csv.empty()) {
    EASYTIME_RETURN_IF_ERROR(report.WriteCsv(config_.output_csv));
  }
  return report;
}

}  // namespace easytime::pipeline
