#include "pipeline/benchmark_config.h"

#include <fstream>
#include <sstream>

#include "methods/registry.h"

namespace easytime::pipeline {

easytime::Result<BenchmarkConfig> BenchmarkConfig::FromJson(
    const easytime::Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("benchmark config must be a JSON object");
  }
  BenchmarkConfig c;
  if (j.Has("datasets")) {
    const auto& d = j.Get("datasets");
    if (!d.is_array()) {
      return Status::InvalidArgument("datasets must be an array");
    }
    for (const auto& item : d.items()) {
      if (!item.is_string()) {
        return Status::InvalidArgument("dataset names must be strings");
      }
      c.datasets.push_back(item.AsString());
    }
  }
  if (j.Has("methods")) {
    const auto& m = j.Get("methods");
    if (!m.is_array()) {
      return Status::InvalidArgument("methods must be an array");
    }
    for (const auto& item : m.items()) {
      MethodSpec spec;
      if (item.is_string()) {
        spec.name = item.AsString();
      } else if (item.is_object()) {
        spec.name = item.GetString("name", "");
        if (item.Has("config")) spec.config = item.Get("config");
      } else {
        return Status::InvalidArgument(
            "method entries must be names or {name, config} objects");
      }
      if (spec.name.empty()) {
        return Status::InvalidArgument("method entry missing name");
      }
      if (!methods::MethodRegistry::Global().Contains(spec.name)) {
        return Status::NotFound("unknown method in config: " + spec.name);
      }
      c.methods.push_back(std::move(spec));
    }
  }
  if (j.Has("evaluation")) {
    EASYTIME_ASSIGN_OR_RETURN(c.eval,
                              eval::EvalConfig::FromJson(j.Get("evaluation")));
  }
  c.num_threads = static_cast<size_t>(j.GetInt("num_threads", 0));
  c.log_file = j.GetString("log_file", "");
  c.output_csv = j.GetString("output_csv", "");
  int64_t breaker = j.GetInt("breaker_threshold",
                             static_cast<int64_t>(c.breaker_threshold));
  if (breaker < 0) {
    return Status::InvalidArgument("breaker_threshold must be >= 0");
  }
  c.breaker_threshold = static_cast<size_t>(breaker);
  double cooldown = j.GetDouble("breaker_cooldown_ms", c.breaker_cooldown_ms);
  if (cooldown < 0.0) {
    return Status::InvalidArgument("breaker_cooldown_ms must be >= 0");
  }
  c.breaker_cooldown_ms = cooldown;
  return c;
}

easytime::Result<BenchmarkConfig> BenchmarkConfig::FromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EASYTIME_ASSIGN_OR_RETURN(easytime::Json j, easytime::Json::Parse(ss.str()));
  auto res = FromJson(j);
  if (!res.ok()) return res.status().WithContext(path);
  return res;
}

easytime::Json BenchmarkConfig::ToJson() const {
  easytime::Json j = easytime::Json::Object();
  easytime::Json d = easytime::Json::Array();
  for (const auto& name : datasets) d.Append(name);
  j.Set("datasets", std::move(d));
  easytime::Json m = easytime::Json::Array();
  for (const auto& spec : methods) {
    easytime::Json entry = easytime::Json::Object();
    entry.Set("name", spec.name);
    entry.Set("config", spec.config);
    m.Append(std::move(entry));
  }
  j.Set("methods", std::move(m));
  j.Set("evaluation", eval.ToJson());
  j.Set("num_threads", static_cast<int64_t>(num_threads));
  j.Set("breaker_threshold", static_cast<int64_t>(breaker_threshold));
  j.Set("breaker_cooldown_ms", breaker_cooldown_ms);
  if (!log_file.empty()) j.Set("log_file", log_file);
  if (!output_csv.empty()) j.Set("output_csv", output_csv);
  return j;
}

}  // namespace easytime::pipeline
