#include "pipeline/plot.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace easytime::pipeline {

namespace {

/// Downsamples by bucket-averaging to at most `width` points.
std::vector<double> Downsample(const std::vector<double>& v, size_t width) {
  if (v.size() <= width || width == 0) return v;
  std::vector<double> out(width, 0.0);
  for (size_t i = 0; i < width; ++i) {
    size_t lo = i * v.size() / width;
    size_t hi = std::max(lo + 1, (i + 1) * v.size() / width);
    hi = std::min(hi, v.size());
    double acc = 0.0;
    for (size_t j = lo; j < hi; ++j) acc += v[j];
    out[i] = acc / static_cast<double>(hi - lo);
  }
  return out;
}

struct Canvas {
  size_t width, height;
  std::vector<std::string> rows;
  double lo = 0.0, hi = 1.0;

  Canvas(size_t w, size_t h) : width(w), height(h) {
    rows.assign(h, std::string(w, ' '));
  }

  void SetScale(double min_v, double max_v) {
    lo = min_v;
    hi = max_v;
    if (hi - lo < 1e-12) {
      hi = lo + 1.0;
      lo -= 1.0;
    }
  }

  size_t RowOf(double v) const {
    double t = (v - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    // Row 0 is the top.
    return height - 1 -
           static_cast<size_t>(std::llround(t * static_cast<double>(height - 1)));
  }

  void Mark(size_t col, double v, char c) {
    if (col >= width) return;
    char& cell = rows[RowOf(v)][col];
    // Forecast-over-actual overlap gets a distinct glyph.
    if ((cell == 'o' && c == 'x') || (cell == 'x' && c == 'o')) {
      cell = '@';
    } else if (cell == ' ' || c != '.') {
      cell = c;
    }
  }

  std::string Render(bool labels) const {
    std::string out;
    for (size_t r = 0; r < height; ++r) {
      if (labels) {
        if (r == 0) {
          out += FormatDouble(hi, 2) + "\t|";
        } else if (r == height - 1) {
          out += FormatDouble(lo, 2) + "\t|";
        } else {
          out += "\t|";
        }
      }
      out += rows[r];
      out += '\n';
    }
    if (labels) {
      out += "\t+" + std::string(width, '-') + "\n";
    }
    return out;
  }
};

}  // namespace

std::string RenderSeriesPlot(const std::vector<double>& values,
                             const PlotOptions& options) {
  if (values.empty() || options.width == 0 || options.height < 2) return "";
  std::vector<double> v = Downsample(values, options.width);
  Canvas canvas(options.width, options.height);
  canvas.SetScale(*std::min_element(v.begin(), v.end()),
                  *std::max_element(v.begin(), v.end()));
  for (size_t i = 0; i < v.size(); ++i) canvas.Mark(i, v[i], '*');
  return canvas.Render(options.axis_labels);
}

std::string RenderForecastPlot(const std::vector<double>& history,
                               const std::vector<double>& actual,
                               const std::vector<double>& forecast,
                               const PlotOptions& options) {
  if (forecast.empty() || options.width == 0 || options.height < 2) return "";
  size_t fc_len = std::max(forecast.size(), actual.size());
  // Show history:forecast at roughly 2:1, downsampling the history tail.
  size_t fc_cols = std::min(fc_len, options.width / 3 + 1);
  size_t hist_cols = options.width - fc_cols;
  std::vector<double> hist_tail = history;
  if (hist_tail.size() > 3 * hist_cols) {
    hist_tail.assign(history.end() - static_cast<long>(3 * hist_cols),
                     history.end());
  }
  std::vector<double> hist = Downsample(hist_tail, hist_cols);

  double lo = 1e300, hi = -1e300;
  for (double v : hist) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : actual) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : forecast) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  Canvas canvas(options.width, options.height);
  canvas.SetScale(lo, hi);
  for (size_t i = 0; i < hist.size(); ++i) canvas.Mark(i, hist[i], '.');
  auto col_of = [&](size_t step) {
    return hist.size() + step * fc_cols / std::max<size_t>(1, fc_len);
  };
  for (size_t i = 0; i < actual.size(); ++i) {
    canvas.Mark(col_of(i), actual[i], 'o');
  }
  for (size_t i = 0; i < forecast.size(); ++i) {
    canvas.Mark(col_of(i), forecast[i], 'x');
  }
  std::string out = canvas.Render(options.axis_labels);
  out += "\t  history: .   actual: o   forecast: x   overlap: @\n";
  return out;
}

}  // namespace easytime::pipeline
