#pragma once

/// \file circuit_breaker.h
/// \brief Per-method circuit breaker used by the pipeline runner (and
/// unit-tested directly). After `threshold` consecutive failures the breaker
/// opens and calls are skipped. With a cooldown configured, the first call
/// after the cooldown elapses transitions the breaker to half-open and runs
/// as a probe: success closes the breaker, failure re-trips it for another
/// cooldown. With cooldown 0 an open breaker stays open for the rest of the
/// run (the pre-half-open behavior).
///
/// Thread safety: all methods take an internal mutex; "consecutive" counts
/// completion order, which is approximate under a parallel fan-out (see the
/// runner's note). Time is passed in by the caller so tests can drive the
/// state machine with synthetic clocks.

#include <chrono>
#include <mutex>

namespace easytime::pipeline {

class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures before the breaker opens; 0 disables it
    /// (Allow always returns true and nothing is counted).
    int threshold = 0;
    /// How long an open breaker waits before letting one probe through;
    /// 0 = stay open forever.
    double cooldown_ms = 0.0;
  };

  explicit CircuitBreaker(Options options) : options_(options) {}

  /// \brief Whether a call may proceed at \p now. The caller that flips an
  /// expired open breaker to half-open is the probe: its RecordSuccess /
  /// RecordFailure decides between closing and re-tripping. While the probe
  /// is in flight other calls keep being rejected.
  bool Allow(TimePoint now) {
    if (options_.threshold <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (options_.cooldown_ms > 0.0 &&
            std::chrono::duration<double, std::milli>(now - opened_at_)
                    .count() >= options_.cooldown_ms) {
          state_ = State::kHalfOpen;
          return true;  // this call is the probe
        }
        return false;
      case State::kHalfOpen:
        return false;  // one probe at a time
    }
    return false;
  }

  void RecordSuccess() {
    if (options_.threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_ = 0;
    state_ = State::kClosed;
  }

  void RecordFailure(TimePoint now) {
    if (options_.threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {  // the probe failed: re-trip
      state_ = State::kOpen;
      opened_at_ = now;
      return;
    }
    if (state_ == State::kOpen) return;  // late completion after the trip
    if (++consecutive_ >= options_.threshold) {
      state_ = State::kOpen;
      opened_at_ = now;
    }
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// \brief Returns the breaker to its initial closed state, e.g. after the
  /// guarded endpoint was replaced by a fresh process. Lets long-lived
  /// holders of the breaker pointer keep using it across such swaps instead
  /// of the owner reassigning the object under them.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kClosed;
    consecutive_ = 0;
    trip_logged_ = false;
  }

  /// True exactly once per trip: the transition into kOpen from kClosed
  /// (used by the runner to log the trip once).
  bool ConsumeTripEvent() {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kOpen && !trip_logged_) {
      trip_logged_ = true;
      return true;
    }
    return false;
  }

 private:
  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_ = 0;
  TimePoint opened_at_{};
  bool trip_logged_ = false;
};

}  // namespace easytime::pipeline
