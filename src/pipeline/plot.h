#pragma once

/// \file plot.h
/// \brief Terminal visualization for the reporting layer: the paper's
/// "visualization of time series inputs and forecasting results" (Fig. 4
/// label 9), rendered as ASCII so examples and reports work anywhere.

#include <string>
#include <vector>

namespace easytime::pipeline {

/// Options for the ASCII plots.
struct PlotOptions {
  size_t width = 72;   ///< plot columns (x axis)
  size_t height = 14;  ///< plot rows (y axis)
  bool axis_labels = true;
};

/// \brief Renders one series as an ASCII line plot ('*' marks), with min/max
/// labels on the y axis. Long series are downsampled by averaging.
std::string RenderSeriesPlot(const std::vector<double>& values,
                             const PlotOptions& options = {});

/// \brief Renders the forecast view: the tail of the history ('.'), the
/// actual continuation ('o'), and the forecast ('x', '@' where it overlaps
/// an actual point), sharing one y scale — the standard forecast-inspection
/// picture the demo frontend shows.
/// \param history values before the forecast origin (tail is shown)
/// \param actual ground-truth continuation (may be empty)
/// \param forecast predicted continuation
std::string RenderForecastPlot(const std::vector<double>& history,
                               const std::vector<double>& actual,
                               const std::vector<double>& forecast,
                               const PlotOptions& options = {});

}  // namespace easytime::pipeline
