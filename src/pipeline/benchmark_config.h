#pragma once

/// \file benchmark_config.h
/// \brief The benchmark "configuration file". One-click evaluation (paper
/// §II-B) means: edit this config — datasets, methods, strategy, horizons,
/// metrics — and run the pipeline; everything else is standardized.

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "eval/evaluator.h"

namespace easytime::pipeline {

/// One method entry: registry name plus its hyperparameter config.
struct MethodSpec {
  std::string name;
  easytime::Json config = easytime::Json::Object();
};

/// \brief Everything a benchmark run needs.
struct BenchmarkConfig {
  /// Dataset names to evaluate on; empty = all datasets in the repository.
  std::vector<std::string> datasets;
  /// Methods to evaluate; empty = every registered method.
  std::vector<MethodSpec> methods;
  /// The evaluation protocol.
  eval::EvalConfig eval;
  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Optional path for the run log ("" = stderr).
  std::string log_file;
  /// Optional CSV output path for the result table ("" = don't write).
  std::string output_csv;
  /// Consecutive failures of one method before its circuit breaker opens and
  /// the method's remaining pairs are skipped (recorded Unavailable).
  /// 0 disables the breaker.
  size_t breaker_threshold = 5;
  /// How long a tripped method's breaker stays open before one probe pair is
  /// let through (half-open): a successful probe closes the breaker, a
  /// failed one re-trips it for another cooldown. 0 = stay open for the
  /// whole run.
  double breaker_cooldown_ms = 0.0;

  /// \brief Parses the JSON configuration-file schema:
  /// \code{.json}
  /// {
  ///   "datasets": ["traffic_u0", ...],
  ///   "methods": [{"name": "theta"}, {"name": "gbdt", "config": {...}}],
  ///   "evaluation": {"strategy": "rolling", "horizon": 24, ...},
  ///   "num_threads": 4,
  ///   "output_csv": "results.csv"
  /// }
  /// \endcode
  static easytime::Result<BenchmarkConfig> FromJson(const easytime::Json& j);

  /// Parses a config file from disk.
  static easytime::Result<BenchmarkConfig> FromFile(const std::string& path);

  easytime::Json ToJson() const;
};

}  // namespace easytime::pipeline
