#include "cluster/replicator.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "serve/client.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace easytime::cluster {

namespace {
namespace fs = std::filesystem;

easytime::Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return bytes;
}

easytime::Status CopyFileAtomic(const std::string& src,
                                const std::string& dst) {
  EASYTIME_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(src));
  const std::string tmp = dst + ".sync.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) return Status::IOError("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, dst, ec);
  if (ec) return Status::IOError("rename " + tmp + " -> " + dst);
  return Status::OK();
}

/// Ships sealed (or, for a final catch-up, all) segments under \p dir to
/// \p endpoint, skipping files already recorded in \p shipped.
struct DirShipOutcome {
  uint64_t segments = 0;
  uint64_t bytes = 0;
  uint64_t records_applied = 0;
  uint64_t applied_seq = 0;   ///< follower's watermark after the last apply
  uint64_t last_seq = 0;      ///< newest valid record under dir
  easytime::Status status = easytime::Status::OK();
};

DirShipOutcome ShipSegments(const std::string& dir,
                            const std::string& endpoint,
                            serve::TcpClient& client,
                            std::map<std::string, uint64_t>* shipped,
                            const std::string& key_prefix) {
  DirShipOutcome out;
  auto segments = store::ListWalSegments(dir);
  if (!segments.ok()) {
    out.status = segments.status();
    return out;
  }
  if (segments->empty()) return out;
  out.last_seq = segments->back().last_seq;
  // Sealed segments only: the active (highest start_seq) file still grows,
  // and its torn-prone tail belongs to promotion's frozen-disk catch-up.
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    const store::WalSegmentInfo& seg = (*segments)[i];
    const std::string key = key_prefix + seg.file;
    auto it = shipped->find(key);
    if (it != shipped->end() && it->second >= seg.valid_bytes) continue;
    auto bytes = store::ExportWalSegment(seg.path, seg.file);
    if (!bytes.ok()) {
      out.status = bytes.status();
      return out;
    }
    easytime::Json params = easytime::Json::Object();
    params.Set("file", seg.file);
    params.Set("data", Base64Encode(*bytes));
    auto reply = client.Call(endpoint, params);
    if (!reply.ok()) {
      out.status = reply.status();
      return out;
    }
    (*shipped)[key] = seg.valid_bytes;
    ++out.segments;
    out.bytes += bytes->size();
    out.records_applied +=
        static_cast<uint64_t>(reply->GetInt("records", 0));
    out.applied_seq = static_cast<uint64_t>(reply->GetInt("applied_seq", 0));
  }
  return out;
}

}  // namespace

easytime::Result<CatchUpReport> SyncFrozenStoreDir(const std::string& src,
                                                   const std::string& dst) {
  CatchUpReport report;
  if (!fs::exists(src)) return report;
  std::error_code ec;
  fs::create_directories(dst, ec);
  if (ec) return Status::IOError("cannot create " + dst);

  EASYTIME_ASSIGN_OR_RETURN(auto segments, store::ListWalSegments(src));
  for (const auto& seg : segments) {
    EASYTIME_ASSIGN_OR_RETURN(std::string bytes,
                              store::ExportWalSegment(seg.path, seg.file));
    auto imported = store::ImportWalSegment(dst, seg.file, bytes);
    if (!imported.ok()) {
      // The destination already holding a LONGER valid prefix than the
      // frozen source would mean the "frozen" dir moved — surface that.
      return imported.status();
    }
    ++report.segments_copied;
    report.bytes_copied += bytes.size();
    if (seg.last_seq > report.last_seq) report.last_seq = seg.last_seq;
  }

  // Newest snapshot only: recovery loads the latest valid image and replays
  // the WAL past it; older snapshots are dead weight.
  auto snapshots = store::ListSnapshots(src);
  if (!snapshots.empty()) {
    const store::SnapshotInfo& snap = snapshots.back();
    const std::string dst_path =
        dst + "/" + fs::path(snap.path).filename().string();
    if (!fs::exists(dst_path)) {
      EASYTIME_RETURN_IF_ERROR(CopyFileAtomic(snap.path, dst_path));
      ++report.snapshots_copied;
    }
  }
  return report;
}

void Replicator::SetLink(const std::string& shard_id,
                         const std::string& store_dir,
                         uint16_t follower_port) {
  std::lock_guard<std::mutex> lock(mu_);
  Link& link = links_[shard_id];
  if (link.store_dir != store_dir) link.shipped.clear();
  link.store_dir = store_dir;
  link.follower_port = follower_port;
}

void Replicator::RemoveLink(const std::string& shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  links_.erase(shard_id);
}

void Replicator::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this]() {
    while (running_.load()) {
      ShipOnce();
      const auto step = std::chrono::milliseconds(10);
      auto remaining =
          std::chrono::duration<double, std::milli>(options_.interval_ms);
      while (running_.load() && remaining.count() > 0) {
        std::this_thread::sleep_for(step);
        remaining -= step;
      }
    }
  });
}

void Replicator::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void Replicator::ShipOnce() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, link] : links_) ids.push_back(id);
  }
  for (const auto& id : ids) {
    Link snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = links_.find(id);
      if (it == links_.end() || it->second.follower_port == 0) continue;
      snapshot = it->second;
    }
    ShipLink(id, snapshot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = links_.find(id);
      // Discard the pass if the link was re-pointed mid-flight (failover).
      if (it != links_.end() && it->second.store_dir == snapshot.store_dir &&
          it->second.follower_port == snapshot.follower_port) {
        it->second = std::move(snapshot);
      }
    }
  }
}

void Replicator::ShipLink(const std::string& shard_id, Link& link) {
  serve::RetryPolicy no_retry;
  no_retry.max_attempts = 1;  // the next pass is the retry
  serve::TcpClient client(link.follower_port, no_retry, options_.auth_token);

  DirShipOutcome kb = ShipSegments(link.store_dir, "replica_apply", client,
                                   &link.shipped, "kb:");
  DirShipOutcome ap =
      ShipSegments(link.store_dir + "/appends", "replica_apply_appends",
                   client, &link.shipped, "ap:");

  LinkStats& s = link.stats;
  s.segments_shipped += kb.segments + ap.segments;
  s.bytes_shipped += kb.bytes + ap.bytes;
  s.records_applied += kb.records_applied;
  if (!kb.status.ok() || !ap.status.ok()) {
    ++s.ship_failures;
    if (!kb.status.ok()) {
      EASYTIME_LOG(Warning) << "replicator[" << shard_id
                         << "]: " << kb.status.ToString();
    }
  }
  s.primary_last_seq = kb.last_seq;
  if (kb.applied_seq > 0) s.follower_applied_seq = kb.applied_seq;
  s.ship_lag = s.primary_last_seq > s.follower_applied_seq
                   ? s.primary_last_seq - s.follower_applied_seq
                   : 0;
  s.appends_last_seq = ap.last_seq;
  if (ap.applied_seq > 0) s.appends_staged_seq = ap.applied_seq;
}

easytime::Json Replicator::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  easytime::Json out = easytime::Json::Object();
  for (const auto& [id, link] : links_) {
    const LinkStats& s = link.stats;
    easytime::Json j = easytime::Json::Object();
    j.Set("segments_shipped", static_cast<int64_t>(s.segments_shipped));
    j.Set("bytes_shipped", static_cast<int64_t>(s.bytes_shipped));
    j.Set("records_applied", static_cast<int64_t>(s.records_applied));
    j.Set("ship_failures", static_cast<int64_t>(s.ship_failures));
    j.Set("primary_last_seq", static_cast<int64_t>(s.primary_last_seq));
    j.Set("follower_applied_seq",
          static_cast<int64_t>(s.follower_applied_seq));
    j.Set("ship_lag", static_cast<int64_t>(s.ship_lag));
    j.Set("appends_last_seq", static_cast<int64_t>(s.appends_last_seq));
    j.Set("appends_staged_seq", static_cast<int64_t>(s.appends_staged_seq));
    out.Set(id, std::move(j));
  }
  return out;
}

Replicator::LinkStats Replicator::StatsFor(const std::string& shard_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(shard_id);
  return it == links_.end() ? LinkStats{} : it->second.stats;
}

}  // namespace easytime::cluster
