/// \file worker_main.cc
/// \brief The easytime_shard_worker binary: one shard worker process.
/// Spawned and supervised by the cluster router; publishes its bound port
/// through --port-file once it is serving.
///
///   easytime_shard_worker --port-file P --store-dir D
///       [--role primary|replica] [--preset small|default]
///       [--port N] [--auth-token T]

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "cluster/worker.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "easytime_shard_worker: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  easytime::cluster::WorkerConfig config;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port-file") {
      if (const char* v = value()) port_file = v;
    } else if (arg == "--store-dir") {
      if (const char* v = value()) config.store_dir = v;
    } else if (arg == "--role") {
      if (const char* v = value()) config.role = v;
    } else if (arg == "--preset") {
      if (const char* v = value()) config.preset = v;
    } else if (arg == "--auth-token") {
      if (const char* v = value()) config.auth_token = v;
    } else if (arg == "--port") {
      if (const char* v = value()) {
        auto port = easytime::ParseInt(v);
        if (!port.ok() || *port < 0 || *port > 65535) {
          return Fail("bad --port " + std::string(v));
        }
        config.port = static_cast<uint16_t>(*port);
      }
    } else {
      return Fail("unknown flag " + arg);
    }
  }
  if (port_file.empty()) return Fail("--port-file is required");
  if (config.store_dir.empty()) return Fail("--store-dir is required");

  ::signal(SIGTERM, HandleSignal);
  ::signal(SIGINT, HandleSignal);
  ::signal(SIGPIPE, SIG_IGN);

  auto worker = easytime::cluster::ShardWorker::Start(std::move(config));
  if (!worker.ok()) return Fail(worker.status().ToString());

  // Publish the port atomically: the supervisor polls this file and must
  // never read a partial write.
  {
    const std::string tmp = port_file + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << (*worker)->port() << "\n";
    out.flush();
    if (!out) return Fail("cannot write " + tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, port_file, ec);
    if (ec) return Fail("cannot publish " + port_file);
  }
  EASYTIME_LOG(Info) << "shard worker serving on port " << (*worker)->port()
                     << " as " << (*worker)->role();

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*worker)->Stop();
  return 0;
}
