#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#include "common/logging.h"

namespace easytime::cluster {

namespace {
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

serve::RetryPolicy OneShot() {
  serve::RetryPolicy p;
  p.max_attempts = 1;
  return p;
}
}  // namespace

ClusterRouter::ClusterRouter(Options options)
    : options_(std::move(options)),
      map_(options_.placement),
      supervisor_([&] {
        Supervisor::Options s;
        s.spawn_timeout_ms = options_.worker_spawn_timeout_ms;
        return s;
      }()),
      replicator_([&] {
        Replicator::Options r;
        r.interval_ms = options_.ship_interval_ms;
        r.auth_token = options_.auth_token;
        return r;
      }()) {}

ClusterRouter::~ClusterRouter() { Stop(); }

easytime::Result<uint16_t> ClusterRouter::SpawnWorker(
    const std::string& name, const std::string& role,
    const std::string& store_dir) {
  WorkerSpec spec;
  spec.name = name;
  spec.port_file = options_.work_dir + "/" + name + ".port";
  spec.log_path = options_.work_dir + "/" + name + ".log";
  spec.argv = {options_.worker_binary, "--port-file", spec.port_file,
               "--store-dir", store_dir,  "--role",     role,
               "--preset",    options_.preset};
  if (!options_.auth_token.empty()) {
    spec.argv.push_back("--auth-token");
    spec.argv.push_back(options_.auth_token);
  }
  return supervisor_.Spawn(spec);
}

easytime::Status ClusterRouter::Start() {
  if (running_.load()) return Status::OK();
  if (stopped_.load()) {
    return Status::Unavailable("router was stopped; create a new one");
  }
  if (options_.worker_binary.empty() || options_.work_dir.empty()) {
    return Status::InvalidArgument(
        "ClusterRouter needs worker_binary and work_dir");
  }
  if (options_.shards == 0) {
    return Status::InvalidArgument("ClusterRouter needs at least one shard");
  }
  std::error_code ec;
  fs::create_directories(options_.work_dir, ec);
  if (ec) return Status::IOError("cannot create " + options_.work_dir);

  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->id = "shard-" + std::to_string(i);
    shard->primary_name = shard->id + "-p0";
    shard->primary_store = options_.work_dir + "/" + shard->id + "-primary";
    shard->breaker = std::make_unique<pipeline::CircuitBreaker>(
        pipeline::CircuitBreaker::Options{options_.breaker_threshold,
                                          options_.breaker_cooldown_ms});
    EASYTIME_ASSIGN_OR_RETURN(
        uint16_t pport,
        SpawnWorker(shard->primary_name, "primary", shard->primary_store));
    shard->primary_port.store(pport);
    if (options_.replicate) {
      shard->replica_name = shard->id + "-r0";
      shard->replica_store =
          options_.work_dir + "/" + shard->id + "-replica-0";
      EASYTIME_ASSIGN_OR_RETURN(
          uint16_t rport,
          SpawnWorker(shard->replica_name, "replica", shard->replica_store));
      shard->replica_port.store(rport);
      replicator_.SetLink(shard->id, shard->primary_store, rport);
    }
    map_.AddShard(shard->id);
    shards_.push_back(std::move(shard));
  }

  if (options_.ship_interval_ms > 0 && options_.replicate) {
    replicator_.Start();
  }

  serve::EventLoopServer::Options fopt;
  fopt.port = options_.port;
  fopt.auth_token = options_.auth_token;
  fopt.num_handler_threads = options_.frontend_threads;
  frontend_ = std::make_unique<serve::EventLoopServer>(
      [this](const std::string& line) { return HandleLine(line); },
      options_.max_request_bytes, fopt);
  EASYTIME_RETURN_IF_ERROR(frontend_->Start());

  running_.store(true);
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread([this]() { HealthLoop(); });
  }
  return Status::OK();
}

void ClusterRouter::Stop() {
  if (stopped_.exchange(true)) return;
  running_.store(false);
  if (health_thread_.joinable()) health_thread_.join();
  replicator_.Stop();
  if (frontend_) frontend_->Stop();
  for (auto& shard : shards_) {
    std::string primary, replica;
    {
      std::lock_guard<std::mutex> lock(shard->meta_mu);
      primary = shard->primary_name;
      replica = shard->replica_name;
    }
    if (!primary.empty()) supervisor_.Terminate(primary);
    if (!replica.empty()) supervisor_.Terminate(replica);
  }
}

ClusterRouter::Shard* ClusterRouter::FindShard(const std::string& id) {
  for (auto& shard : shards_) {
    if (shard->id == id) return shard.get();
  }
  return nullptr;
}

easytime::Result<ClusterRouter::Shard*> ClusterRouter::RouteKey(
    std::string_view key, bool stable) {
  std::string id;
  if (stable) {
    EASYTIME_ASSIGN_OR_RETURN(id, map_.Owner(key));
  } else {
    std::map<std::string, size_t> load;
    for (const auto& shard : shards_) {
      // A down shard reports saturation so bounded-load routes around it.
      load[shard->id] = shard->down.load()
                            ? std::numeric_limits<size_t>::max() / 2
                            : shard->outstanding.load();
    }
    EASYTIME_ASSIGN_OR_RETURN(id, map_.Pick(key, load));
  }
  Shard* shard = FindShard(id);
  if (shard == nullptr) return Status::Internal("no shard '" + id + "'");
  return shard;
}

easytime::Result<std::string> ClusterRouter::OwnerShard(
    const std::string& dataset) const {
  return map_.Owner(dataset);
}

easytime::Status ClusterRouter::KillShardPrimary(const std::string& shard_id,
                                                 int sig) {
  Shard* shard = FindShard(shard_id);
  if (shard == nullptr) return Status::NotFound("no shard '" + shard_id + "'");
  std::string primary;
  {
    std::lock_guard<std::mutex> lock(shard->meta_mu);
    primary = shard->primary_name;
  }
  return supervisor_.Kill(primary, sig);
}

// ----- connection pooling ---------------------------------------------------

std::unique_ptr<serve::TcpClient> ClusterRouter::AcquireClient(
    Shard& shard, uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    for (auto it = shard.pool.begin(); it != shard.pool.end(); ++it) {
      if (it->port == port) {
        auto client = std::move(it->client);
        shard.pool.erase(it);
        return client;
      }
    }
  }
  return std::make_unique<serve::TcpClient>(port, OneShot(),
                                            options_.auth_token);
}

void ClusterRouter::ReleaseClient(Shard& shard, uint16_t port,
                                  std::unique_ptr<serve::TcpClient> client) {
  if (!client->connected()) return;  // broken: let it die
  std::lock_guard<std::mutex> lock(shard.pool_mu);
  if (shard.pool.size() >= options_.client_pool_per_shard) return;
  shard.pool.push_back(IdleClient{port, std::move(client)});
}

easytime::Result<std::string> ClusterRouter::SendToWorker(
    Shard& shard, uint16_t port, const std::string& line,
    const serve::RetryPolicy& policy) {
  if (port == 0) return Status::Unavailable("no worker endpoint");
  auto client = AcquireClient(shard, port);
  auto result =
      serve::RetryCall(policy, [&]() { return client->SendLine(line); });
  ReleaseClient(shard, port, std::move(client));
  return result;
}

easytime::Result<easytime::Json> ClusterRouter::CallWorker(
    Shard& shard, uint16_t port, const std::string& endpoint,
    const easytime::Json& params) {
  if (port == 0) return Status::Unavailable("no worker endpoint");
  auto client = AcquireClient(shard, port);
  auto result = client->Call(endpoint, params);
  ReleaseClient(shard, port, std::move(client));
  return result;
}

// ----- request routing ------------------------------------------------------

std::string ClusterRouter::HandleLine(const std::string& line) {
  int64_t error_id = -1;
  auto parsed =
      serve::ParseRequest(line, options_.max_request_bytes, &error_id);
  if (!parsed.ok()) {
    return serve::MakeErrorResponse(error_id, parsed.status()).Dump();
  }
  const serve::Request& req = *parsed;
  requests_routed_.fetch_add(1, std::memory_order_relaxed);

  if (req.endpoint == "ping") {
    easytime::Json result = easytime::Json::Object();
    result.Set("pong", true);
    result.Set("scope", "cluster");
    return serve::MakeOkResponse(req.id, std::move(result)).Dump();
  }
  if (req.endpoint == "cluster_status") {
    return serve::MakeOkResponse(req.id, ClusterStatusJson()).Dump();
  }
  if (req.endpoint == "stats") return FanOutStats(req);
  if (req.endpoint == "recommend") return FanOutRecommend(req);
  if (req.endpoint == "flush_cache") return FanOutFlushCache(req);
  if (req.endpoint == "job_status" || req.endpoint == "cancel") {
    return FanOutJobLookup(req, line);
  }

  const std::string dataset = req.params.GetString("dataset", "");
  if (req.endpoint == "append") {
    if (dataset.empty()) {
      return serve::MakeErrorResponse(
                 req.id,
                 Status::InvalidArgument("append requires a \"dataset\""))
          .Dump();
    }
    auto shard = RouteKey(dataset, /*stable=*/true);
    if (!shard.ok()) {
      return serve::MakeErrorResponse(req.id, shard.status()).Dump();
    }
    return ForwardAtMostOnce(
        **shard, req, line,
        "re-send with an explicit \"start\" offset to make the retry safe");
  }

  // Reads: datasets pin to their owner; everything else is fungible and
  // takes the bounded-load path keyed on its most meaningful field.
  std::string key;
  bool stable = false;
  if (!dataset.empty()) {
    key = dataset;
    stable = true;
  } else if (req.endpoint == "sql") {
    key = req.params.GetString("sql", "");
  } else if (req.endpoint == "ask") {
    key = req.params.GetString("question", "");
  } else {
    key = serve::CanonicalKey(req.endpoint, req.params);
  }
  auto shard = RouteKey(key, stable);
  if (!shard.ok()) {
    return serve::MakeErrorResponse(req.id, shard.status()).Dump();
  }
  const bool is_job_submit =
      req.endpoint == "evaluate" || req.endpoint == "backtest";
  // A job submit is as non-idempotent as an append (a blind retry after an
  // ambiguous drop would start a second job under a new id), so it takes
  // the at-most-once path instead of the retrying read path.
  std::string response =
      is_job_submit
          ? ForwardAtMostOnce(**shard, req, line,
                              "check job_status before re-submitting (a "
                              "duplicate submit would start a second job)")
          : ForwardRead(**shard, req, line);
  if (is_job_submit) {
    // Jobs live on the shard that accepted them: stamp the submit ack so
    // job_status/cancel can pin with {"shard": ...} instead of fanning out.
    auto parsed = easytime::Json::Parse(response);
    if (parsed.ok() && parsed->GetBool("ok", false) &&
        parsed->Get("result").is_object()) {
      easytime::Json result = parsed->Get("result");
      result.Set("shard", (*shard)->id);
      parsed->Set("result", std::move(result));
      response = parsed->Dump();
    }
  }
  return response;
}

std::string ClusterRouter::TagDegraded(const std::string& response_line,
                                       const std::string& reason) {
  degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  auto resp = easytime::Json::Parse(response_line);
  if (!resp.ok() || !resp->GetBool("ok", false) ||
      !resp->Get("result").is_object()) {
    return response_line;  // errors pass through untagged
  }
  easytime::Json result = resp->Get("result");
  result.Set("degraded", true);
  result.Set("degraded_reason", reason);
  resp->Set("result", std::move(result));
  return resp->Dump();
}

std::string ClusterRouter::ForwardRead(Shard& shard, const serve::Request& req,
                                       const std::string& line) {
  const auto now = Clock::now();
  const bool primary_usable =
      !shard.down.load() && shard.breaker->Allow(now);
  if (primary_usable) {
    shard.outstanding.fetch_add(1, std::memory_order_relaxed);
    auto resp =
        SendToWorker(shard, shard.primary_port.load(), line, options_.retry);
    shard.outstanding.fetch_sub(1, std::memory_order_relaxed);
    if (resp.ok()) {
      shard.breaker->RecordSuccess();
      return *resp;
    }
    shard.breaker->RecordFailure(Clock::now());
  }
  // Degraded path: the replica answers from its (possibly stale) mirror.
  const uint16_t rport = shard.replica_port.load();
  if (rport != 0) {
    auto resp = SendToWorker(shard, rport, line, OneShot());
    if (resp.ok()) {
      return TagDegraded(*resp, "shard " + shard.id +
                                    " primary unavailable; replica served a "
                                    "possibly stale answer");
    }
  }
  unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
  return serve::MakeErrorResponse(
             req.id, Status::Unavailable("shard " + shard.id +
                                         " is unavailable (no primary, no "
                                         "responsive replica)"))
      .Dump();
}

std::string ClusterRouter::ForwardAtMostOnce(Shard& shard,
                                             const serve::Request& req,
                                             const std::string& line,
                                             const std::string& retry_hint) {
  // At-most-once: only failures that PROVE the worker never saw the request
  // (connect-level failures, the worker's own clean Unavailable rejection)
  // are retried. An ambiguous transport drop after bytes were sent is
  // surfaced as Unavailable — a blind retry could apply the request twice.
  serve::RetryPolicy policy = options_.retry;
  easytime::Status last = Status::Unavailable("request not attempted");
  for (int attempt = 0; attempt < std::max(1, policy.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          policy.DelayMs(attempt - 1)));
    }
    if (shard.down.load() || shard.promoting.load()) {
      last = Status::Unavailable("shard " + shard.id +
                                 " has no primary (failover in progress); "
                                 "the request cannot be durably accepted");
      continue;
    }
    const uint16_t port = shard.primary_port.load();
    if (port == 0) {
      last = Status::Unavailable("shard " + shard.id + " has no primary");
      continue;
    }
    // Always dial fresh instead of reusing a pooled idle socket: a worker
    // restart between health ticks leaves pool entries half-dead, where the
    // first write "succeeds" into the local buffer and a provably-unexecuted
    // request would be misreported as ambiguous. A fresh connect that fails
    // proves the worker never saw the request, keeping the retry safe.
    auto client = std::make_unique<serve::TcpClient>(port, OneShot(),
                                                     options_.auth_token);
    bool request_sent = false;
    auto resp = client->SendLineOnce(line, &request_sent);
    if (resp.ok()) {
      ReleaseClient(shard, port, std::move(client));
      shard.breaker->RecordSuccess();
      // A clean worker-side Unavailable (admission shed) was not applied —
      // safe to retry under the policy.
      auto parsed = easytime::Json::Parse(*resp);
      if (parsed.ok() && !parsed->GetBool("ok", true) &&
          parsed->Get("error").GetString("code", "") == "Unavailable") {
        last = Status::Unavailable(
            parsed->Get("error").GetString("message", "worker shed"));
        continue;
      }
      return *resp;
    }
    shard.breaker->RecordFailure(Clock::now());
    if (request_sent) {
      append_ambiguous_.fetch_add(1, std::memory_order_relaxed);
      unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
      return serve::MakeErrorResponse(
                 req.id,
                 Status::Unavailable(
                     "outcome unknown (connection lost after the request "
                     "was sent); not retried — " +
                     retry_hint))
          .Dump();
    }
    last = resp.status();  // nothing was sent: retry is safe
  }
  unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
  return serve::MakeErrorResponse(req.id, last).Dump();
}

// ----- fan-out + merge ------------------------------------------------------

std::string ClusterRouter::FanOutStats(const serve::Request& req) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  easytime::Json shards = easytime::Json::Object();
  easytime::Json totals = easytime::Json::Object();
  uint64_t requests = 0, ok_count = 0, errors = 0, rejected = 0;
  uint64_t deadline_exceeded = 0, worker_degraded = 0;
  size_t responding = 0;
  bool degraded = false;
  for (auto& shard : shards_) {
    auto stats = CallWorker(*shard, shard->primary_port.load(), "stats",
                            easytime::Json::Object());
    bool from_replica = false;
    if (!stats.ok() && shard->replica_port.load() != 0) {
      stats = CallWorker(*shard, shard->replica_port.load(), "stats",
                         easytime::Json::Object());
      from_replica = true;
    }
    if (!stats.ok()) {
      degraded = true;
      easytime::Json down = easytime::Json::Object();
      down.Set("unavailable", true);
      shards.Set(shard->id, std::move(down));
      continue;
    }
    ++responding;
    if (from_replica) degraded = true;
    deadline_exceeded +=
        static_cast<uint64_t>(stats->GetInt("deadline_exceeded", 0));
    worker_degraded +=
        static_cast<uint64_t>(stats->GetInt("degraded_responses", 0));
    const easytime::Json& endpoints = stats->Get("endpoints");
    if (endpoints.is_object()) {
      for (const auto& name : endpoints.keys()) {
        const easytime::Json& e = endpoints.Get(name);
        requests += static_cast<uint64_t>(e.GetInt("requests", 0));
        ok_count += static_cast<uint64_t>(e.GetInt("ok", 0));
        errors += static_cast<uint64_t>(e.GetInt("errors", 0));
        rejected += static_cast<uint64_t>(e.GetInt("rejected", 0));
      }
    }
    if (from_replica) stats->Set("from_replica", true);
    shards.Set(shard->id, std::move(*stats));
  }
  totals.Set("requests", static_cast<int64_t>(requests));
  totals.Set("ok", static_cast<int64_t>(ok_count));
  totals.Set("errors", static_cast<int64_t>(errors));
  totals.Set("rejected", static_cast<int64_t>(rejected));
  totals.Set("deadline_exceeded", static_cast<int64_t>(deadline_exceeded));
  totals.Set("worker_degraded_responses",
             static_cast<int64_t>(worker_degraded));

  easytime::Json router = easytime::Json::Object();
  router.Set("requests_routed",
             static_cast<int64_t>(requests_routed_.load()));
  router.Set("fanouts", static_cast<int64_t>(fanouts_.load()));
  router.Set("degraded_responses",
             static_cast<int64_t>(degraded_responses_.load()));
  router.Set("unavailable_responses",
             static_cast<int64_t>(unavailable_responses_.load()));
  router.Set("append_ambiguous",
             static_cast<int64_t>(append_ambiguous_.load()));
  router.Set("failovers", static_cast<int64_t>(failovers_.load()));
  router.Set("frontend_connections",
             frontend_ ? static_cast<int64_t>(frontend_->open_connections())
                       : int64_t{0});

  easytime::Json out = easytime::Json::Object();
  out.Set("scope", "cluster");
  out.Set("shards_responding", static_cast<int64_t>(responding));
  out.Set("shards_total", static_cast<int64_t>(shards_.size()));
  if (degraded) out.Set("degraded", true);
  out.Set("totals", std::move(totals));
  out.Set("router", std::move(router));
  out.Set("replication", replicator_.StatsJson());
  out.Set("workers", supervisor_.StatsJson());
  out.Set("shards", std::move(shards));
  return serve::MakeOkResponse(req.id, std::move(out)).Dump();
}

std::string ClusterRouter::FanOutRecommend(const serve::Request& req) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  // Every shard ranks from its own knowledge (all carry the full suite;
  // each adds its own locally committed evaluations); scores are averaged
  // across responders.
  struct Tally {
    double score_sum = 0.0;
    size_t votes = 0;
  };
  std::map<std::string, Tally> tallies;
  size_t responding = 0;
  bool degraded = false;
  for (auto& shard : shards_) {
    auto rec =
        CallWorker(*shard, shard->primary_port.load(), "recommend", req.params);
    if (!rec.ok() && shard->replica_port.load() != 0) {
      rec = CallWorker(*shard, shard->replica_port.load(), "recommend",
                       req.params);
      if (rec.ok()) degraded = true;
    }
    if (!rec.ok()) {
      degraded = true;
      continue;
    }
    ++responding;
    const easytime::Json& items = rec->Get("recommendations");
    if (!items.is_array()) continue;
    for (const easytime::Json& item : items.items()) {
      const std::string method = item.GetString("method", "");
      if (method.empty()) continue;
      Tally& t = tallies[method];
      t.score_sum += item.GetDouble("score", 0.0);
      ++t.votes;
    }
  }
  if (responding == 0) {
    unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
    return serve::MakeErrorResponse(
               req.id, Status::Unavailable("no shard answered recommend"))
        .Dump();
  }
  std::vector<std::pair<std::string, double>> ranked;
  for (const auto& [method, t] : tallies) {
    ranked.emplace_back(method, t.score_sum / static_cast<double>(t.votes));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  const size_t k = static_cast<size_t>(
      std::max<int64_t>(0, req.params.GetInt("k", 0)));
  if (k > 0 && ranked.size() > k) ranked.resize(k);

  easytime::Json items = easytime::Json::Array();
  for (const auto& [method, score] : ranked) {
    easytime::Json item = easytime::Json::Object();
    item.Set("method", method);
    item.Set("score", score);
    items.Append(std::move(item));
  }
  easytime::Json result = easytime::Json::Object();
  result.Set("recommendations", std::move(items));
  result.Set("scope", "cluster");
  result.Set("shards_merged", static_cast<int64_t>(responding));
  if (degraded) {
    result.Set("degraded", true);
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  return serve::MakeOkResponse(req.id, std::move(result)).Dump();
}

std::string ClusterRouter::FanOutFlushCache(const serve::Request& req) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  int64_t flushed = 0;
  size_t responding = 0;
  for (auto& shard : shards_) {
    auto resp = CallWorker(*shard, shard->primary_port.load(), "flush_cache",
                           req.params);
    if (resp.ok()) {
      flushed += resp->GetInt("flushed", 0);
      ++responding;
    }
  }
  easytime::Json result = easytime::Json::Object();
  result.Set("flushed", flushed);
  result.Set("shards_responding", static_cast<int64_t>(responding));
  if (responding < shards_.size()) result.Set("degraded", true);
  return serve::MakeOkResponse(req.id, std::move(result)).Dump();
}

std::string ClusterRouter::FanOutJobLookup(const serve::Request& req,
                                           const std::string& line) {
  // Jobs live on the shard that accepted them. A "shard" param pins the
  // lookup; otherwise every shard is asked and the first one that KNOWS the
  // job answers (the rest say NotFound).
  const std::string pinned = req.params.GetString("shard", "");
  if (!pinned.empty()) {
    Shard* shard = FindShard(pinned);
    if (shard == nullptr) {
      return serve::MakeErrorResponse(
                 req.id, Status::NotFound("no shard '" + pinned + "'"))
          .Dump();
    }
    return ForwardRead(*shard, req, line);
  }
  bool unreachable = false;
  for (auto& shard : shards_) {
    auto resp =
        SendToWorker(*shard, shard->primary_port.load(), line, OneShot());
    if (!resp.ok()) {
      unreachable = true;  // this shard might own the job
      continue;
    }
    auto parsed = easytime::Json::Parse(*resp);
    if (parsed.ok() && !parsed->GetBool("ok", true) &&
        parsed->Get("error").GetString("code", "") == "NotFound") {
      continue;
    }
    return *resp;
  }
  // An unreachable shard (dead or failing-over primary) may own the job:
  // claiming NotFound would make a fanned cancel silently drop it and a
  // status poll report a live job as gone. Tell the client to retry.
  if (unreachable) {
    unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
    return serve::MakeErrorResponse(
               req.id,
               Status::Unavailable(
                   "no responding shard knows this job, but at least one "
                   "shard did not answer and may own it; retry shortly"))
        .Dump();
  }
  return serve::MakeErrorResponse(
             req.id, Status::NotFound("no shard knows this job"))
      .Dump();
}

// ----- health + failover ----------------------------------------------------

void ClusterRouter::HealthLoop() {
  while (running_.load()) {
    HealthCheckNow();
    const auto step = std::chrono::milliseconds(10);
    auto remaining =
        std::chrono::duration<double, std::milli>(options_.health_interval_ms);
    while (running_.load() && remaining.count() > 0) {
      std::this_thread::sleep_for(step);
      remaining -= step;
    }
  }
}

void ClusterRouter::HealthCheckNow() {
  for (auto& shard : shards_) CheckShard(*shard);
}

void ClusterRouter::CheckShard(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.promoting.load()) {
    FinishFailoverIfPromoted(shard);
    return;
  }
  if (!supervisor_.Alive(shard.primary_name)) {
    StartFailover(shard);
    return;
  }
  // Liveness ping feeds the breaker so an unresponsive-but-running primary
  // degrades reads instead of hanging them.
  auto pong = CallWorker(shard, shard.primary_port.load(), "ping",
                         easytime::Json::Object());
  if (pong.ok()) {
    shard.breaker->RecordSuccess();
    shard.down.store(false);
  } else {
    shard.breaker->RecordFailure(Clock::now());
  }
}

void ClusterRouter::StartFailover(Shard& shard) {
  shard.down.store(true);
  {
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    shard.pool.clear();
  }
  if (!shard.replica_name.empty() && supervisor_.Alive(shard.replica_name)) {
    EASYTIME_LOG(Warning) << "router: " << shard.id << " primary '"
                       << shard.primary_name
                       << "' died; promoting replica '" << shard.replica_name
                       << "'";
    replicator_.SetLink(shard.id, shard.primary_store, 0);  // pause shipping
    easytime::Json params = easytime::Json::Object();
    params.Set("source_dir", shard.primary_store);
    auto resp =
        CallWorker(shard, shard.replica_port.load(), "promote", params);
    if (resp.ok()) {
      shard.promoting.store(true);
      return;
    }
    EASYTIME_LOG(Error) << "router: promote call to " << shard.replica_name
                        << " failed: " << resp.status().ToString();
  }
  // No (responsive) replica: restart the primary on its durable store under
  // the supervisor's backoff.
  auto port = supervisor_.Restart(shard.primary_name);
  if (port.ok()) {
    EASYTIME_LOG(Warning) << "router: restarted " << shard.primary_name
                       << " on port " << *port;
    shard.primary_port.store(*port);
    shard.breaker->Reset();
    shard.down.store(false);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    shard.failovers.fetch_add(1, std::memory_order_relaxed);
    if (!shard.replica_name.empty()) {
      replicator_.SetLink(shard.id, shard.primary_store,
                          shard.replica_port.load());
    }
  }
  // !port.ok(): backoff window still open — the next health tick retries.
}

void ClusterRouter::FinishFailoverIfPromoted(Shard& shard) {
  auto status = CallWorker(shard, shard.replica_port.load(), "replica_status",
                           easytime::Json::Object());
  if (!status.ok()) return;  // promotion in progress; ask again next tick
  const std::string err = status->GetString("promote_error", "");
  if (!err.empty()) {
    EASYTIME_LOG(Error) << "router: promotion of " << shard.replica_name
                        << " failed: " << err
                        << "; falling back to restarting "
                        << shard.primary_name;
    shard.promoting.store(false);
    return;  // next tick: StartFailover tries the restart path
  }
  if (status->GetString("role", "") != "primary") return;  // still promoting

  // The follower is now the shard primary, serving on its (unchanged) port
  // from the caught-up store.
  const std::string old_primary = shard.primary_name;
  shard.primary_port.store(shard.replica_port.load());
  shard.replica_port.store(0);
  {
    std::lock_guard<std::mutex> lock(shard.meta_mu);
    shard.primary_name = shard.replica_name;
    shard.primary_store = shard.replica_store;
    shard.replica_name.clear();
    shard.replica_store.clear();
  }
  shard.breaker->Reset();
  {
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    shard.pool.clear();
  }
  shard.promoting.store(false);
  shard.down.store(false);
  failovers_.fetch_add(1, std::memory_order_relaxed);
  shard.failovers.fetch_add(1, std::memory_order_relaxed);
  supervisor_.Forget(old_primary);
  EASYTIME_LOG(Warning) << "router: " << shard.id << " promoted '"
                     << shard.primary_name << "' to primary on port "
                     << shard.primary_port.load();
  if (options_.replicate) SpawnReplacementReplica(shard);
}

void ClusterRouter::SpawnReplacementReplica(Shard& shard) {
  ++shard.replica_generation;
  const std::string name =
      shard.id + "-r" + std::to_string(shard.replica_generation);
  // A fresh staging dir: the new primary's WAL continues the old chain, and
  // stale leftovers from a previous replica life must not mask new ships.
  const std::string store = options_.work_dir + "/" + shard.id + "-replica-" +
                            std::to_string(shard.replica_generation);
  auto port = SpawnWorker(name, "replica", store);
  if (!port.ok()) {
    EASYTIME_LOG(Error) << "router: could not spawn replacement replica for "
                        << shard.id << ": " << port.status().ToString();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(shard.meta_mu);
    shard.replica_name = name;
    shard.replica_store = store;
  }
  shard.replica_port.store(*port);
  replicator_.SetLink(shard.id, shard.primary_store, *port);
  EASYTIME_LOG(Info) << "router: " << shard.id << " replacement replica '"
                     << name << "' on port " << *port;
}

// ----- observability --------------------------------------------------------

easytime::Json ClusterRouter::ClusterStatusJson() {
  easytime::Json shards = easytime::Json::Object();
  for (auto& shard : shards_) {
    easytime::Json j = easytime::Json::Object();
    std::string primary, replica;
    {
      std::lock_guard<std::mutex> lock(shard->meta_mu);
      primary = shard->primary_name;
      replica = shard->replica_name;
    }
    j.Set("primary", primary);
    j.Set("primary_port", static_cast<int64_t>(shard->primary_port.load()));
    j.Set("replica", replica);
    j.Set("replica_port", static_cast<int64_t>(shard->replica_port.load()));
    j.Set("down", shard->down.load());
    j.Set("promoting", shard->promoting.load());
    j.Set("failovers", static_cast<int64_t>(shard->failovers.load()));
    j.Set("outstanding", static_cast<int64_t>(shard->outstanding.load()));
    switch (shard->breaker->state()) {
      case pipeline::CircuitBreaker::State::kClosed:
        j.Set("breaker", "closed");
        break;
      case pipeline::CircuitBreaker::State::kOpen:
        j.Set("breaker", "open");
        break;
      case pipeline::CircuitBreaker::State::kHalfOpen:
        j.Set("breaker", "half_open");
        break;
    }
    shards.Set(shard->id, std::move(j));
  }
  easytime::Json out = easytime::Json::Object();
  out.Set("scope", "cluster");
  out.Set("num_shards", static_cast<int64_t>(shards_.size()));
  out.Set("port", static_cast<int64_t>(port()));
  out.Set("shards", std::move(shards));
  out.Set("replication", replicator_.StatsJson());
  out.Set("workers", supervisor_.StatsJson());
  return out;
}

}  // namespace easytime::cluster
