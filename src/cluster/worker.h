#pragma once

/// \file worker.h
/// \brief One shard worker process (DESIGN.md §14): a full EasyTime system
/// behind a ForecastServer on the epoll front-end, plus the replication
/// control plane the router and replicator drive.
///
/// Roles:
///  - "primary": owns the shard's durable store (store_dir) and serves all
///    traffic the router routes here. Every append is fsynced before the
///    ack leaves the process.
///  - "replica": runs the same deterministically generated suite IN MEMORY
///    (store_dir is used only as a staging area for shipped WAL segments),
///    merges live-shipped knowledge records via
///    EasyTime::IngestReplicatedResults, and serves stale reads that the
///    router tags "degraded" while its shard's primary is down. `promote`
///    turns it into a primary: a final catch-up copies the dead primary's
///    frozen store (torn tails cut by the CRC guard), a fresh EasyTime
///    opens that store (replaying WAL + append log), and the listener is
///    rebound on the same port.
///
/// Control endpoints registered on the ForecastServer (inline lane):
///   replica_apply          {file, data(b64)} -> {applied_seq, records}
///   replica_apply_appends  {file, data(b64)} -> {applied_seq, records}
///   promote                {source_dir}      -> {promoting: true}
///   replica_status         {}                -> {role, promoting, ...}

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "core/easytime.h"
#include "serve/event_loop.h"
#include "serve/server.h"

namespace easytime::cluster {

struct WorkerConfig {
  uint16_t port = 0;         ///< 0 = ephemeral
  std::string role = "primary";  ///< "primary" | "replica"
  /// Primary: the durable store. Replica: the staging root where shipped
  /// segments land and which promotion opens as the new durable store.
  std::string store_dir;
  std::string preset = "small";  ///< "small" | "default" system options
  std::string auth_token;        ///< "" = EASYTIME_AUTH_TOKEN env / none
};

/// System options for a preset name ("small" mirrors the test fixture's
/// fast bring-up; "default" is the full suite).
easytime::Result<core::EasyTime::Options> PresetOptions(
    const std::string& preset);

class ShardWorker {
 public:
  static easytime::Result<std::unique_ptr<ShardWorker>> Start(
      WorkerConfig config);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  void Stop();
  uint16_t port() const { return port_; }
  std::string role() const;

 private:
  explicit ShardWorker(WorkerConfig config) : config_(std::move(config)) {}

  /// Builds system + server + front-end for the current role and store,
  /// binding on \p port (0 = ephemeral). On success the previous serving
  /// stack, if any, is retired (kept allocated: in-flight handlers may
  /// still hold it).
  easytime::Status BringUp(const std::string& store_dir, uint16_t port);

  void RegisterControlEndpoints(serve::ForecastServer* server);

  easytime::Result<easytime::Json> ReplicaApply(const easytime::Json& params);
  easytime::Result<easytime::Json> ReplicaApplyAppends(
      const easytime::Json& params);
  easytime::Result<easytime::Json> Promote(const easytime::Json& params);
  easytime::Result<easytime::Json> ReplicaStatus();

  /// Promotion body (background thread kicked by the promote endpoint).
  void PromoteThread(std::string source_dir);

  WorkerConfig config_;
  uint16_t port_ = 0;

  mutable std::mutex mu_;  ///< guards the serving stack + role fields
  std::unique_ptr<core::EasyTime> system_;
  std::unique_ptr<serve::ForecastServer> server_;
  std::unique_ptr<serve::EventLoopServer> frontend_;
  /// Retired stacks (pre-promotion): torn down but kept allocated until
  /// worker shutdown so a racing handler never touches freed memory.
  std::vector<std::unique_ptr<serve::EventLoopServer>> old_frontends_;
  std::vector<std::unique_ptr<serve::ForecastServer>> old_servers_;
  std::vector<std::unique_ptr<core::EasyTime>> old_systems_;

  std::string role_;  ///< guarded by mu_
  std::atomic<bool> promoting_{false};
  std::string promote_error_;  ///< guarded by mu_
  std::thread promote_thread_;
  std::atomic<uint64_t> applied_seq_{0};   ///< KB records merged live
  std::atomic<uint64_t> appends_staged_seq_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace easytime::cluster
