#pragma once

/// \file replicator.h
/// \brief WAL segment shipping from shard primaries to their followers
/// (DESIGN.md §14). A background thread periodically lists each primary's
/// store directories, exports every SEALED segment (all but the active one
/// — sealed files never grow, so one ship per file suffices) and posts the
/// bytes, base64-encoded, to the follower's `replica_apply` /
/// `replica_apply_appends` control endpoints. The follower's import runs
/// the CRC torn-tail guard and replays knowledge records into its live
/// system; acked-durability does NOT depend on shipping (the primary's
/// fsync does that) — shipping bounds how much promotion must catch up and
/// is measured as segment-ship lag.
///
/// Promotion's final catch-up reuses SyncFrozenStoreDir(): after a primary
/// dies, its store directory is frozen on disk, so the follower copies
/// every remaining valid record (including the active segment's valid
/// prefix and the newest snapshot) before opening the store as its own.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/result.h"

namespace easytime::cluster {

/// What one SyncFrozenStoreDir call moved.
struct CatchUpReport {
  size_t segments_copied = 0;
  size_t snapshots_copied = 0;
  uint64_t bytes_copied = 0;
  uint64_t last_seq = 0;  ///< highest valid record seq seen in src
};

/// \brief Copies a frozen record-store directory (WAL segments + newest
/// snapshot) from \p src into \p dst. Segment bytes travel through the
/// validated export/import path, so a torn tail from the primary's death
/// mid-append is cut; the newest snapshot is copied verbatim (snapshot
/// writes are atomic, so a frozen snapshot file is whole). \p dst is
/// created if missing. Missing \p src is not an error (empty report) —
/// a primary that never appended has nothing to catch up.
easytime::Result<CatchUpReport> SyncFrozenStoreDir(const std::string& src,
                                                   const std::string& dst);

class Replicator {
 public:
  struct Options {
    double interval_ms = 200.0;  ///< shipping pass period
    std::string auth_token;      ///< worker connection credential
  };

  /// Per-shard shipping stats (atomic snapshot via StatsJson).
  struct LinkStats {
    uint64_t segments_shipped = 0;
    uint64_t bytes_shipped = 0;
    uint64_t records_applied = 0;  ///< as reported by the follower
    uint64_t ship_failures = 0;
    uint64_t primary_last_seq = 0;   ///< newest valid record on the primary
    uint64_t follower_applied_seq = 0;
    uint64_t ship_lag = 0;  ///< primary_last_seq - follower_applied_seq
    uint64_t appends_last_seq = 0;    ///< newest append-log record (primary)
    uint64_t appends_staged_seq = 0;  ///< staged on the follower
  };

  explicit Replicator(Options options) : options_(options) {}
  ~Replicator() { Stop(); }

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// \brief Points (or re-points, after failover) one shard's shipping
  /// link: sealed segments under \p primary_store_dir go to the follower
  /// on \p follower_port. Port 0 disables the link (shard has no replica).
  void SetLink(const std::string& shard_id, const std::string& store_dir,
               uint16_t follower_port);
  void RemoveLink(const std::string& shard_id);

  void Start();
  void Stop();

  /// One synchronous shipping pass over every link (the background thread
  /// calls this; tests call it directly for determinism).
  void ShipOnce();

  easytime::Json StatsJson() const;
  LinkStats StatsFor(const std::string& shard_id) const;

 private:
  struct Link {
    std::string store_dir;
    uint16_t follower_port = 0;
    /// file -> valid_bytes already shipped (sealed segments never grow, so
    /// one successful ship retires the file).
    std::map<std::string, uint64_t> shipped;
    LinkStats stats;
  };

  void ShipLink(const std::string& shard_id, Link& link);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Link> links_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace easytime::cluster
