#pragma once

/// \file supervisor.h
/// \brief Worker-process supervision for the cluster tier (DESIGN.md §14):
/// spawn a worker binary, wait for it to publish its bound port through a
/// port file, poll liveness, and restart crashed workers under exponential
/// backoff. The supervisor owns the processes but not the policy — the
/// router decides WHEN to restart or promote; the supervisor only refuses
/// restarts that arrive before the current backoff window has elapsed.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/subprocess.h"

namespace easytime::cluster {

/// Everything needed to (re)spawn one worker.
struct WorkerSpec {
  std::string name;                ///< unique supervisor-level handle
  std::vector<std::string> argv;   ///< binary + flags (incl. --port-file)
  std::vector<std::string> env;    ///< extra "KEY=VALUE" entries
  std::string port_file;           ///< where the worker publishes its port
  std::string log_path;            ///< stdout/stderr redirect ("" = inherit)
};

class Supervisor {
 public:
  struct Options {
    /// How long Spawn waits for the port file (worker bring-up includes a
    /// seeding evaluation on a cold store, so this is generous).
    double spawn_timeout_ms = 120000.0;
    double restart_backoff_ms = 200.0;      ///< base, doubles per restart
    double restart_backoff_max_ms = 5000.0;
  };

  explicit Supervisor(Options options) : options_(options) {}
  /// Terminates (TERM, then KILL) every still-running worker.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// \brief Spawns \p spec and blocks until the worker publishes its port
  /// (or dies, or the timeout expires). Returns the bound port.
  easytime::Result<uint16_t> Spawn(const WorkerSpec& spec);

  /// True while the worker process is running (reaps zombies as a side
  /// effect, like the job pool).
  bool Alive(const std::string& name);

  /// Sends \p sig to the worker (ESRCH is not an error).
  easytime::Status Kill(const std::string& name, int sig);

  /// Graceful stop: TERM, grace period, then KILL.
  void Terminate(const std::string& name, double grace_ms = 2000.0);

  /// \brief Respawns a dead worker from its recorded spec. Refuses with
  /// Unavailable while the exponential backoff window is still open (the
  /// caller's health loop simply tries again next tick). Each restart
  /// doubles the next window up to the cap.
  easytime::Result<uint16_t> Restart(const std::string& name);

  /// Forgets a worker entirely (after Terminate) so its name can be reused.
  void Forget(const std::string& name);

  /// Last known port ("0" = never published).
  uint16_t PortOf(const std::string& name) const;

  /// Restarts performed for this worker so far.
  size_t Restarts(const std::string& name) const;

  /// Non-const: liveness polling reaps exited children.
  easytime::Json StatsJson();

 private:
  struct Worker {
    WorkerSpec spec;
    std::unique_ptr<Subprocess> proc;
    uint16_t port = 0;
    size_t restarts = 0;
    bool spawning = false;  ///< a bring-up wait (AwaitPort) is in flight
    std::chrono::steady_clock::time_point last_spawn{};
  };

  /// Launches \p w's process and marks it spawning; the caller completes
  /// bring-up with AwaitPort after releasing mu_.
  easytime::Status LaunchLocked(Worker& w);
  /// Polls until the named worker publishes its port, dies, or times out,
  /// re-taking mu_ per tick — a multi-second bring-up (cold-store seeding
  /// evaluation) must not stall Alive/StatsJson/PortOf for other workers.
  /// Clears the spawning flag on every exit path.
  easytime::Result<uint16_t> AwaitPort(const std::string& name);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Worker> workers_;
};

}  // namespace easytime::cluster
