#pragma once

/// \file router.h
/// \brief The cluster router (DESIGN.md §14): one process that owns the
/// client-facing epoll front-end and consistent-hashes work across N shard
/// worker processes, each a full ForecastServer over loopback.
///
/// Routing contract:
///  - Requests naming a stored "dataset" (forecast/recommend/append/…) go
///    to the dataset's OWNER shard — stable placement, so a dataset's
///    appends, WAL, and evaluation results accumulate on one shard.
///  - Fungible work (inline-values forecasts, ask, sql, evaluate/backtest
///    jobs) uses bounded-load consistent hashing over a request key, so a
///    hot shard sheds overflow to its ring successors.
///  - recommend / stats / flush_cache fan out to every shard and merge.
///  - append and evaluate/backtest job submits are forwarded AT MOST ONCE:
///    connect-level failures (no request byte sent) and the worker's own
///    clean Unavailable rejections retry under the backoff policy, but once
///    bytes are in flight a failure is ambiguous and surfaces as
///    Unavailable instead of risking a duplicate ingest or a second job
///    (producers disambiguate appends with an explicit "start" offset).
///  - When a shard's primary is down (process death or open breaker), reads
///    fall back to its replica with `"degraded": true` in the result —
///    stale but never wrong answers; appends return Unavailable until the
///    replica is promoted.
///
/// Failure handling: a health thread pings workers (feeding per-shard
/// circuit breakers), detects primary death, asks the shard's replica to
/// promote (final catch-up from the dead primary's frozen store — no acked
/// append is lost), re-points the replication link, and spawns a fresh
/// replica; a shard with no replica is restarted in place under the
/// supervisor's exponential backoff.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replicator.h"
#include "cluster/shard_map.h"
#include "cluster/supervisor.h"
#include "common/json.h"
#include "common/result.h"
#include "pipeline/circuit_breaker.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/request.h"
#include "serve/retry.h"

namespace easytime::cluster {

class ClusterRouter {
 public:
  struct Options {
    size_t shards = 2;
    bool replicate = true;          ///< one follower per shard
    std::string worker_binary;      ///< easytime_shard_worker path
    std::string work_dir;           ///< stores, logs, port files live here
    std::string preset = "small";   ///< worker system preset
    std::string auth_token;         ///< front-end AND worker credential
    uint16_t port = 0;              ///< client-facing port (0 = ephemeral)
    size_t frontend_threads = 4;
    size_t max_request_bytes = 1 << 20;
    double health_interval_ms = 200.0;
    int breaker_threshold = 3;
    double breaker_cooldown_ms = 500.0;
    serve::RetryPolicy retry;       ///< read-path forwarding retries
    double ship_interval_ms = 150.0;  ///< 0 disables background shipping
    double worker_spawn_timeout_ms = 120000.0;
    ShardMap::Options placement;
    size_t client_pool_per_shard = 8;  ///< idle pooled connections cap
  };

  explicit ClusterRouter(Options options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Spawns the workers (primaries, then replicas), starts the replication
  /// and health threads, and binds the client front-end.
  easytime::Status Start();
  void Stop();

  uint16_t port() const { return frontend_ ? frontend_->port() : 0; }

  /// The front-end handler: one request line in, one response line out (no
  /// trailing newline). Public so tests can drive routing in-process.
  std::string HandleLine(const std::string& line);

  /// Stable owner of a dataset key (test/observability hook).
  easytime::Result<std::string> OwnerShard(const std::string& dataset) const;

  /// Crash a shard's primary (failover tests).
  easytime::Status KillShardPrimary(const std::string& shard_id, int sig);

  /// One synchronous health pass (what the background thread runs).
  void HealthCheckNow();

  easytime::Json ClusterStatusJson();

  Supervisor* supervisor() { return &supervisor_; }
  Replicator* replicator() { return &replicator_; }

 private:
  struct IdleClient {
    uint16_t port = 0;
    std::unique_ptr<serve::TcpClient> client;
  };

  struct Shard {
    std::string id;
    std::string primary_name;
    std::string replica_name;   ///< empty = no replica right now
    std::string primary_store;
    std::string replica_store;
    std::atomic<uint16_t> primary_port{0};
    std::atomic<uint16_t> replica_port{0};
    /// Never reassigned after construction — handler threads call through
    /// the raw pointer without a lock, so failover calls Reset() on the
    /// stable object instead of swapping it.
    std::unique_ptr<pipeline::CircuitBreaker> breaker;
    std::atomic<size_t> outstanding{0};  ///< bounded-load reading
    std::atomic<bool> down{false};
    std::atomic<bool> promoting{false};
    std::atomic<uint64_t> failovers{0};
    size_t replica_generation = 0;  ///< fresh staging dir per replica
    std::mutex mu;                  ///< failover transitions
    /// Guards the four name/store strings above. The health thread (their
    /// sole writer) holds it while rewriting them; handler threads hold it
    /// to copy them out. Held only for the copy — never across I/O — so
    /// status reads cannot stall behind a health ping or promotion.
    std::mutex meta_mu;
    std::mutex pool_mu;
    std::vector<IdleClient> pool;
  };

  Shard* FindShard(const std::string& id);
  /// Routes a request key: \p stable = true for data placement (Owner),
  /// false for fungible work (bounded-load Pick).
  easytime::Result<Shard*> RouteKey(std::string_view key, bool stable);

  /// Pooled send: one raw line to a worker port under \p policy.
  easytime::Result<std::string> SendToWorker(Shard& shard, uint16_t port,
                                             const std::string& line,
                                             const serve::RetryPolicy& policy);
  easytime::Result<easytime::Json> CallWorker(Shard& shard, uint16_t port,
                                              const std::string& endpoint,
                                              const easytime::Json& params);

  std::string ForwardRead(Shard& shard, const serve::Request& req,
                          const std::string& line);
  /// Forward for non-idempotent requests (append, evaluate/backtest job
  /// submits): only provably-unexecuted failures retry; an ambiguous drop
  /// surfaces as Unavailable carrying \p retry_hint.
  std::string ForwardAtMostOnce(Shard& shard, const serve::Request& req,
                                const std::string& line,
                                const std::string& retry_hint);
  std::string FanOutStats(const serve::Request& req);
  std::string FanOutRecommend(const serve::Request& req);
  std::string FanOutFlushCache(const serve::Request& req);
  std::string FanOutJobLookup(const serve::Request& req,
                              const std::string& line);

  /// Tags a successful response's result object "degraded": true.
  std::string TagDegraded(const std::string& response_line,
                          const std::string& reason);

  void HealthLoop();
  void CheckShard(Shard& shard);
  void StartFailover(Shard& shard);
  void FinishFailoverIfPromoted(Shard& shard);
  /// Spawns a fresh replica for \p shard (new name + empty staging dir).
  void SpawnReplacementReplica(Shard& shard);

  easytime::Result<uint16_t> SpawnWorker(const std::string& name,
                                         const std::string& role,
                                         const std::string& store_dir);

  std::unique_ptr<serve::TcpClient> AcquireClient(Shard& shard,
                                                  uint16_t port);
  void ReleaseClient(Shard& shard, uint16_t port,
                     std::unique_ptr<serve::TcpClient> client);

  Options options_;
  ShardMap map_;
  Supervisor supervisor_;
  Replicator replicator_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<serve::EventLoopServer> frontend_;
  std::thread health_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};

  // Router-level QoS counters (merged into the cluster "stats" view).
  std::atomic<uint64_t> requests_routed_{0};
  std::atomic<uint64_t> fanouts_{0};
  std::atomic<uint64_t> degraded_responses_{0};
  std::atomic<uint64_t> unavailable_responses_{0};
  std::atomic<uint64_t> append_ambiguous_{0};
  std::atomic<uint64_t> failovers_{0};
};

}  // namespace easytime::cluster
