#pragma once

/// \file shard_map.h
/// \brief Consistent-hash placement for the sharded serving tier
/// (DESIGN.md §14). Each shard contributes `vnodes_per_shard` virtual
/// nodes to a 64-bit FNV-1a ring; a key routes to the first vnode at or
/// clockwise past its hash.
///
/// Two lookups with different contracts:
///  - Owner(key): the pure ring walk. Deterministic placement for data that
///    must always land on the same shard (a dataset's appends, its WAL, its
///    evaluation results). Load never moves an owner.
///  - Pick(key, load): bounded-load consistent hashing for fungible work
///    (inline-values forecasts, dataset-less SQL). The walk skips shards
///    whose outstanding load is at or above ceil(load_factor * average), so
///    a hot shard sheds overflow to its ring successors while cold keys
///    keep their affinity.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace easytime::cluster {

/// 64-bit FNV-1a (stable across platforms and runs).
uint64_t Fnv1a64(std::string_view s);

/// \brief The ring hash: FNV-1a pushed through a 64-bit finalizer
/// (MurmurHash3's fmix64). Raw FNV-1a barely moves the high bits when only
/// a key's trailing characters differ — exactly the shape vnode labels
/// ("shard-0#17") and dataset families ("traffic_u0") have — which clumps
/// vnodes into arcs and starves shards. The finalizer restores avalanche
/// while keeping the hash deterministic.
uint64_t RingHash(std::string_view s);

/// \brief The ring. Not internally synchronized: build it during cluster
/// bring-up, then treat it as read-only (shard *processes* fail over, but
/// shard *identities* never leave the ring).
class ShardMap {
 public:
  struct Options {
    size_t vnodes_per_shard = 64;
    /// Bounded-load ceiling multiplier: a shard is overloaded when its load
    /// reaches ceil(load_factor * (total_load + 1) / num_shards).
    double load_factor = 1.25;
  };

  ShardMap() : ShardMap(Options()) {}
  explicit ShardMap(Options options) : options_(options) {}

  void AddShard(const std::string& id);
  void RemoveShard(const std::string& id);

  bool Contains(const std::string& id) const { return shards_.count(id) > 0; }
  size_t NumShards() const { return shards_.size(); }
  std::vector<std::string> ShardIds() const;

  /// Stable placement: the shard owning \p key. Fails only on an empty ring.
  easytime::Result<std::string> Owner(std::string_view key) const;

  /// \brief Bounded-load pick: walks the ring from hash(key), skipping
  /// shards whose entry in \p load is at/above the ceiling. Falls back to
  /// the plain owner when every shard is saturated (somebody must do the
  /// work; admission control sheds from there).
  easytime::Result<std::string> Pick(
      std::string_view key, const std::map<std::string, size_t>& load) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::map<uint64_t, std::string> ring_;  ///< vnode hash -> shard id
  std::set<std::string> shards_;
};

}  // namespace easytime::cluster
