#include "cluster/supervisor.h"

#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/string_util.h"

namespace easytime::cluster {

namespace {
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}
}  // namespace

Supervisor::~Supervisor() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, w] : workers_) {
    if (w.proc) w.proc->Terminate();
  }
}

easytime::Status Supervisor::LaunchLocked(Worker& w) {
  // A stale port file from a previous life must not satisfy the wait.
  std::error_code ec;
  fs::remove(w.spec.port_file, ec);

  Subprocess::Options opts;
  opts.env = w.spec.env;
  opts.log_path = w.spec.log_path;
  EASYTIME_ASSIGN_OR_RETURN(Subprocess proc,
                            Subprocess::Spawn(w.spec.argv, opts));
  w.proc = std::make_unique<Subprocess>(std::move(proc));
  w.last_spawn = Clock::now();
  w.port = 0;
  w.spawning = true;
  return Status::OK();
}

easytime::Result<uint16_t> Supervisor::AwaitPort(const std::string& name) {
  // Wait for the worker to publish "PORT\n". Bring-up on a cold store runs
  // a seeding evaluation, so the wait is long but checks for early death.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = workers_.find(name);
      if (it == workers_.end()) {
        return Status::NotFound("worker '" + name +
                                "' was forgotten during bring-up");
      }
      Worker& w = it->second;
      std::ifstream in(w.spec.port_file);
      std::string line;
      if (in && std::getline(in, line)) {
        auto port = ParseInt(line);
        if (port.ok() && *port > 0 && *port <= 65535) {
          w.port = static_cast<uint16_t>(*port);
          w.spawning = false;
          return w.port;
        }
      }
      if (!w.proc->Alive()) {
        w.spawning = false;
        return Status::Unavailable(
            "worker '" + w.spec.name + "' died during bring-up (see " +
            (w.spec.log_path.empty() ? "its stderr" : w.spec.log_path) + ")");
      }
      if (MsSince(w.last_spawn) >= options_.spawn_timeout_ms) {
        w.proc->Terminate();
        w.spawning = false;
        return Status::DeadlineExceeded(
            "worker '" + w.spec.name + "' did not publish a port within " +
            std::to_string(options_.spawn_timeout_ms) + " ms");
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

easytime::Result<uint16_t> Supervisor::Spawn(const WorkerSpec& spec) {
  bool inserted = false;
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, fresh] = workers_.try_emplace(spec.name);
    inserted = fresh;
    Worker& w = it->second;
    if (!fresh && (w.spawning || (w.proc && w.proc->Alive()))) {
      return Status::AlreadyExists("worker '" + spec.name + "' is running");
    }
    w.spec = spec;
    auto launched = LaunchLocked(w);
    if (!launched.ok()) {
      if (fresh) workers_.erase(it);
      return launched;
    }
    pid = w.proc->pid();
  }
  auto port = AwaitPort(spec.name);
  if (!port.ok() && inserted) {
    // Drop the failed entry, but only if it is still OUR launch — a
    // concurrent caller may have replaced it once spawning cleared.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(spec.name);
    if (it != workers_.end() && it->second.proc &&
        it->second.proc->pid() == pid) {
      workers_.erase(it);
    }
  }
  return port;
}

bool Supervisor::Alive(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(name);
  return it != workers_.end() && it->second.proc && it->second.proc->Alive();
}

easytime::Status Supervisor::Kill(const std::string& name, int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(name);
  if (it == workers_.end() || !it->second.proc) {
    return Status::NotFound("no worker '" + name + "'");
  }
  return it->second.proc->Kill(sig);
}

void Supervisor::Terminate(const std::string& name, double grace_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(name);
  if (it != workers_.end() && it->second.proc) {
    it->second.proc->Terminate(grace_ms);
  }
}

easytime::Result<uint16_t> Supervisor::Restart(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(name);
    if (it == workers_.end()) {
      return Status::NotFound("no worker '" + name + "'");
    }
    Worker& w = it->second;
    if (w.spawning || (w.proc && w.proc->Alive())) {
      return Status::AlreadyExists("worker '" + name + "' is still running");
    }
    const double backoff =
        std::min(options_.restart_backoff_max_ms,
                 options_.restart_backoff_ms *
                     static_cast<double>(uint64_t{1} << std::min<size_t>(
                                             w.restarts, 20)));
    if (w.restarts > 0 && MsSince(w.last_spawn) < backoff) {
      return Status::Unavailable("restart of '" + name + "' backing off (" +
                                 std::to_string(backoff) + " ms window)");
    }
    ++w.restarts;
    EASYTIME_RETURN_IF_ERROR(LaunchLocked(w));
  }
  return AwaitPort(name);
}

void Supervisor::Forget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.erase(name);
}

uint16_t Supervisor::PortOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(name);
  return it == workers_.end() ? 0 : it->second.port;
}

size_t Supervisor::Restarts(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(name);
  return it == workers_.end() ? 0 : it->second.restarts;
}

easytime::Json Supervisor::StatsJson() {
  std::lock_guard<std::mutex> lock(mu_);
  easytime::Json out = easytime::Json::Object();
  for (auto& [name, w] : workers_) {
    easytime::Json j = easytime::Json::Object();
    j.Set("alive", w.proc != nullptr && w.proc->Alive() ? true : false);
    j.Set("port", static_cast<int64_t>(w.port));
    j.Set("restarts", static_cast<int64_t>(w.restarts));
    out.Set(name, std::move(j));
  }
  return out;
}

}  // namespace easytime::cluster
