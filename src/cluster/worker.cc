#include "cluster/worker.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "cluster/replicator.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "knowledge/knowledge_store.h"
#include "store/wal.h"

namespace easytime::cluster {

namespace {
namespace fs = std::filesystem;

/// Requests carrying a shipped WAL segment (base64 of up to a full segment
/// file) far exceed the serving default, so the worker's own line budget is
/// raised; the router still clamps CLIENT lines at its front-end.
constexpr size_t kWorkerMaxRequestBytes = 8u << 20;

/// Decodes the records of one KB WAL segment image into result rows.
/// Records at or below \p after_seq are skipped; \p *last_seq gets the
/// highest sequence seen. Unknown record types are ignored (forward
/// compatibility with future WAL record kinds).
easytime::Result<std::vector<knowledge::ResultEntry>> DecodeResultRecords(
    std::string_view bytes, const std::string& file, uint64_t after_seq,
    uint64_t* last_seq) {
  std::vector<knowledge::ResultEntry> entries;
  easytime::Status decode_error = easytime::Status::OK();
  auto info = store::ValidateWalSegmentImage(
      bytes, file, [&](uint64_t seq, std::string_view payload) {
        if (seq <= after_seq || !decode_error.ok()) return;
        auto record = easytime::Json::Parse(std::string(payload));
        if (!record.ok()) {
          decode_error = record.status();
          return;
        }
        if (record->GetString("type", "") != "results") return;
        const easytime::Json& rows = record->Get("results");
        if (!rows.is_array()) return;
        for (const easytime::Json& row : rows.items()) {
          auto entry = knowledge::ResultEntryFromJson(row);
          if (!entry.ok()) {
            decode_error = entry.status();
            return;
          }
          entries.push_back(std::move(*entry));
        }
      });
  EASYTIME_RETURN_IF_ERROR(info.status());
  EASYTIME_RETURN_IF_ERROR(decode_error);
  if (last_seq != nullptr && info->last_seq > *last_seq) {
    *last_seq = info->last_seq;
  }
  return entries;
}

}  // namespace

easytime::Result<core::EasyTime::Options> PresetOptions(
    const std::string& preset) {
  core::EasyTime::Options opt;
  if (preset == "default") return opt;
  if (preset != "small") {
    return Status::InvalidArgument("unknown preset '" + preset +
                                   "' (small|default)");
  }
  // The fast bring-up used by cluster tests and the bench: a 1+1 dataset
  // suite, short series, the cheap closed-form methods, a tiny encoder.
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  return opt;
}

easytime::Result<std::unique_ptr<ShardWorker>> ShardWorker::Start(
    WorkerConfig config) {
  if (config.role != "primary" && config.role != "replica") {
    return Status::InvalidArgument("role must be primary|replica, got '" +
                                   config.role + "'");
  }
  if (config.store_dir.empty()) {
    return Status::InvalidArgument("a worker needs a --store-dir");
  }
  std::unique_ptr<ShardWorker> worker(new ShardWorker(std::move(config)));
  worker->role_ = worker->config_.role;
  if (worker->role_ == "replica") {
    // The store dir is pure staging until promotion; the live system runs
    // the deterministic suite in memory.
    std::error_code ec;
    fs::create_directories(worker->config_.store_dir, ec);
    fs::create_directories(worker->config_.store_dir + "/appends", ec);
    EASYTIME_RETURN_IF_ERROR(worker->BringUp("", worker->config_.port));
  } else {
    EASYTIME_RETURN_IF_ERROR(
        worker->BringUp(worker->config_.store_dir, worker->config_.port));
  }
  return worker;
}

ShardWorker::~ShardWorker() { Stop(); }

void ShardWorker::Stop() {
  if (stopped_.exchange(true)) return;
  if (promote_thread_.joinable()) promote_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (frontend_) frontend_->Stop();
  if (server_) server_->Stop();
}

std::string ShardWorker::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

easytime::Status ShardWorker::BringUp(const std::string& store_dir,
                                      uint16_t port) {
  EASYTIME_ASSIGN_OR_RETURN(core::EasyTime::Options opt,
                            PresetOptions(config_.preset));
  if (!store_dir.empty()) {
    opt.store_dir = store_dir;
    opt.store_sync_every_append = true;  // acks must mean durable
  }
  EASYTIME_ASSIGN_OR_RETURN(std::unique_ptr<core::EasyTime> system,
                            core::EasyTime::Create(opt));

  serve::ForecastServer::Options sopt;
  sopt.max_request_bytes = kWorkerMaxRequestBytes;
  auto server =
      std::make_unique<serve::ForecastServer>(system.get(), sopt);
  RegisterControlEndpoints(server.get());
  server->Start();

  // Detach the old stack first (the new listener needs the port), but stop
  // it OUTSIDE mu_: Stop joins handler threads, and an in-flight control
  // handler may be waiting on mu_ — stopping under the lock would deadlock.
  std::unique_ptr<serve::EventLoopServer> old_frontend;
  std::unique_ptr<serve::ForecastServer> old_server;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_frontend = std::move(frontend_);
    old_server = std::move(server_);
  }
  if (old_frontend) old_frontend->Stop();
  if (old_server) old_server->Stop();

  serve::EventLoopServer::Options fopt;
  fopt.port = port;
  fopt.auth_token = config_.auth_token;
  auto frontend =
      std::make_unique<serve::EventLoopServer>(server.get(), fopt);

  // Rebinding the same port right after a Stop can race the old socket's
  // teardown; a brief retry loop absorbs it (SO_REUSEADDR covers
  // TIME_WAIT, not a still-open listener).
  easytime::Status started = easytime::Status::OK();
  for (int attempt = 0; attempt < 40; ++attempt) {
    started = frontend->Start();
    if (started.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!started.ok()) {
    server->Stop();
    return started;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (old_frontend) old_frontends_.push_back(std::move(old_frontend));
  if (old_server) old_servers_.push_back(std::move(old_server));
  if (system_) old_systems_.push_back(std::move(system_));
  system_ = std::move(system);
  server_ = std::move(server);
  frontend_ = std::move(frontend);
  port_ = frontend_->port();
  return Status::OK();
}

void ShardWorker::RegisterControlEndpoints(serve::ForecastServer* server) {
  server->RegisterControlEndpoint(
      "replica_apply",
      [this](const easytime::Json& p) { return ReplicaApply(p); });
  server->RegisterControlEndpoint(
      "replica_apply_appends",
      [this](const easytime::Json& p) { return ReplicaApplyAppends(p); });
  server->RegisterControlEndpoint(
      "promote", [this](const easytime::Json& p) { return Promote(p); });
  server->RegisterControlEndpoint(
      "replica_status",
      [this](const easytime::Json&) { return ReplicaStatus(); });
}

easytime::Result<easytime::Json> ShardWorker::ReplicaApply(
    const easytime::Json& params) {
  if (role() != "replica") {
    return Status::InvalidArgument("replica_apply on a primary");
  }
  const std::string file = params.GetString("file", "");
  EASYTIME_ASSIGN_OR_RETURN(std::string bytes,
                            Base64Decode(params.GetString("data", "")));
  // Durable staging first (torn-tail guard + stale-reship rejection live
  // in the import), then the live replay.
  EASYTIME_ASSIGN_OR_RETURN(
      store::WalSegmentInfo info,
      store::ImportWalSegment(config_.store_dir, file, bytes));
  uint64_t last_seq = applied_seq_.load();
  EASYTIME_ASSIGN_OR_RETURN(
      std::vector<knowledge::ResultEntry> entries,
      DecodeResultRecords(bytes, file, applied_seq_.load(), &last_seq));
  size_t merged = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (system_) {
      EASYTIME_ASSIGN_OR_RETURN(merged,
                                system_->IngestReplicatedResults(entries));
    }
  }
  applied_seq_.store(std::max(applied_seq_.load(), last_seq));
  easytime::Json out = easytime::Json::Object();
  out.Set("applied_seq", static_cast<int64_t>(applied_seq_.load()));
  out.Set("records", static_cast<int64_t>(merged));
  out.Set("file_records", static_cast<int64_t>(info.records));
  return out;
}

easytime::Result<easytime::Json> ShardWorker::ReplicaApplyAppends(
    const easytime::Json& params) {
  if (role() != "replica") {
    return Status::InvalidArgument("replica_apply_appends on a primary");
  }
  const std::string file = params.GetString("file", "");
  EASYTIME_ASSIGN_OR_RETURN(std::string bytes,
                            Base64Decode(params.GetString("data", "")));
  // Append batches are staged only: replaying them live would need the
  // replica's offset chain to match the primary's exactly, and promotion's
  // AppendLog::Open replay gets that for free from the staged files.
  EASYTIME_ASSIGN_OR_RETURN(
      store::WalSegmentInfo info,
      store::ImportWalSegment(config_.store_dir + "/appends", file, bytes));
  if (info.last_seq > appends_staged_seq_.load()) {
    appends_staged_seq_.store(info.last_seq);
  }
  easytime::Json out = easytime::Json::Object();
  out.Set("applied_seq", static_cast<int64_t>(appends_staged_seq_.load()));
  out.Set("records", static_cast<int64_t>(info.records));
  return out;
}

easytime::Result<easytime::Json> ShardWorker::Promote(
    const easytime::Json& params) {
  const std::string source_dir = params.GetString("source_dir", "");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ == "primary") {
      easytime::Json out = easytime::Json::Object();
      out.Set("promoting", false);
      out.Set("role", "primary");
      return out;  // idempotent: already there
    }
  }
  if (promoting_.exchange(true)) {
    easytime::Json out = easytime::Json::Object();
    out.Set("promoting", true);
    return out;
  }
  if (promote_thread_.joinable()) promote_thread_.join();
  promote_thread_ =
      std::thread([this, source_dir]() { PromoteThread(source_dir); });
  easytime::Json out = easytime::Json::Object();
  out.Set("promoting", true);
  return out;
}

void ShardWorker::PromoteThread(std::string source_dir) {
  EASYTIME_LOG(Info) << "promotion started (source: "
                     << (source_dir.empty() ? "<none>" : source_dir) << ")";
  easytime::Status status = easytime::Status::OK();
  if (!source_dir.empty()) {
    // Final catch-up from the dead primary's frozen disk: everything it
    // acked is in these files (fsync-before-ack), so copying the valid
    // prefixes guarantees no acked write is lost even though live shipping
    // only covered sealed segments.
    auto kb = SyncFrozenStoreDir(source_dir, config_.store_dir);
    if (!kb.ok()) status = kb.status();
    if (status.ok()) {
      auto ap = SyncFrozenStoreDir(source_dir + "/appends",
                                   config_.store_dir + "/appends");
      if (!ap.ok()) status = ap.status();
    }
  }
  if (status.ok()) {
    status = BringUp(config_.store_dir, port_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      role_ = "primary";
      promote_error_.clear();
      EASYTIME_LOG(Info) << "promotion complete; serving as primary on port "
                         << port_;
    } else {
      promote_error_ = status.ToString();
      EASYTIME_LOG(Error) << "promotion failed: " << promote_error_;
    }
  }
  promoting_.store(false);
}

easytime::Result<easytime::Json> ShardWorker::ReplicaStatus() {
  easytime::Json out = easytime::Json::Object();
  std::lock_guard<std::mutex> lock(mu_);
  out.Set("role", role_);
  out.Set("promoting", promoting_.load());
  out.Set("promote_error", promote_error_);
  out.Set("applied_seq", static_cast<int64_t>(applied_seq_.load()));
  out.Set("appends_staged_seq",
          static_cast<int64_t>(appends_staged_seq_.load()));
  out.Set("port", static_cast<int64_t>(port_));
  out.Set("kb_results",
          system_ ? static_cast<int64_t>(system_->knowledge().NumResults())
                  : int64_t{0});
  return out;
}

}  // namespace easytime::cluster
