#include "cluster/shard_map.h"

#include <algorithm>
#include <cmath>

namespace easytime::cluster {

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

uint64_t RingHash(std::string_view s) {
  uint64_t h = Fnv1a64(s);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void ShardMap::AddShard(const std::string& id) {
  if (!shards_.insert(id).second) return;
  for (size_t v = 0; v < options_.vnodes_per_shard; ++v) {
    ring_.emplace(RingHash(id + "#" + std::to_string(v)), id);
  }
}

void ShardMap::RemoveShard(const std::string& id) {
  if (shards_.erase(id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == id ? ring_.erase(it) : std::next(it);
  }
}

std::vector<std::string> ShardMap::ShardIds() const {
  return std::vector<std::string>(shards_.begin(), shards_.end());
}

easytime::Result<std::string> ShardMap::Owner(std::string_view key) const {
  if (ring_.empty()) return Status::Unavailable("shard map is empty");
  auto it = ring_.lower_bound(RingHash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

easytime::Result<std::string> ShardMap::Pick(
    std::string_view key, const std::map<std::string, size_t>& load) const {
  if (ring_.empty()) return Status::Unavailable("shard map is empty");
  size_t total = 0;
  for (const auto& [id, l] : load) {
    if (shards_.count(id)) total += l;
  }
  // The +1 counts the request being placed, so the ceiling is never zero
  // and an idle ring always accepts at the owner.
  const size_t ceiling = static_cast<size_t>(std::ceil(
      options_.load_factor * static_cast<double>(total + 1) /
      static_cast<double>(shards_.size())));
  auto it = ring_.lower_bound(RingHash(key));
  // Walk at most one full lap of distinct shards.
  std::set<std::string> seen;
  for (size_t steps = 0; steps < ring_.size() && seen.size() < shards_.size();
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const std::string& id = it->second;
    if (!seen.insert(id).second) continue;
    auto found = load.find(id);
    const size_t current = found == load.end() ? 0 : found->second;
    if (current < ceiling) return id;
  }
  return Owner(key);  // every shard saturated: keep placement stable
}

}  // namespace easytime::cluster
