#pragma once

/// \file window_util.h
/// \brief Sliding-window supervision shared by the ML/DL forecasters:
/// builds (lookback -> horizon) training pairs and handles recursive
/// extension when a forecast longer than the trained horizon is requested.

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"

namespace easytime::methods {

/// \brief Supervised windows: row r of `inputs` holds values
/// [r, r+lookback); row r of `targets` holds [r+lookback, r+lookback+horizon).
struct WindowedData {
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;
  size_t lookback = 0;
  size_t horizon = 0;
};

/// Builds all complete windows over \p series.
easytime::Result<WindowedData> MakeWindows(const std::vector<double>& series,
                                           size_t lookback, size_t horizon);

/// Picks a lookback for a series: ~2 periods when seasonal, otherwise a
/// length-scaled default, clamped so at least a few windows exist.
size_t ChooseLookback(size_t series_len, size_t period_hint, size_t horizon);

/// \brief Produces a \p horizon -step forecast from a model that maps the
/// last \p lookback values to \p trained_horizon future values, extending
/// recursively (feeding predictions back) when horizon > trained_horizon.
/// \param predict maps a window (size lookback) to trained_horizon values
std::vector<double> RecursiveMultiStep(
    const std::vector<double>& history, size_t lookback,
    size_t trained_horizon, size_t horizon,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        predict);

}  // namespace easytime::methods
