#include "methods/linear_models.h"

#include <algorithm>

#include "common/math_util.h"

namespace easytime::methods {

namespace {

/// Fits one ridge head per target step over shared features.
/// features: rows x (L+1 with bias); returns per-step coefficient vectors.
/// Each head is a full least-squares solve (>1ms on long series), so the
/// deadline is checked before every head.
Result<std::vector<std::vector<double>>> FitHeads(
    const std::vector<std::vector<double>>& inputs,
    const std::vector<std::vector<double>>& targets, size_t horizon,
    double l2,
    const std::function<std::vector<double>(const std::vector<double>&,
                                            double*)>& encode,
    const Deadline& deadline) {
  size_t rows = inputs.size();
  if (rows == 0) return Status::InvalidArgument("no training windows");
  double dummy = 0.0;
  size_t feat_dim = encode(inputs[0], &dummy).size();
  size_t cols = feat_dim + 1;  // bias

  std::vector<double> x(rows * cols);
  std::vector<double> offsets(rows, 0.0);
  DeadlineChecker checker(deadline, 1);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> f = encode(inputs[r], &offsets[r]);
    x[r * cols] = 1.0;
    std::copy(f.begin(), f.end(), x.begin() + static_cast<long>(r * cols + 1));
  }

  std::vector<std::vector<double>> heads(horizon);
  std::vector<double> y(rows);
  for (size_t h = 0; h < horizon; ++h) {
    if (checker.Expired()) {
      return Status::DeadlineExceeded("linear fit aborted mid-heads");
    }
    for (size_t r = 0; r < rows; ++r) y[r] = targets[r][h] - offsets[r];
    EASYTIME_ASSIGN_OR_RETURN(heads[h], LeastSquares(x, y, rows, cols, l2));
  }
  return heads;
}

std::vector<double> ApplyHeads(
    const std::vector<std::vector<double>>& heads,
    const std::vector<double>& features, double offset) {
  std::vector<double> out(heads.size());
  for (size_t h = 0; h < heads.size(); ++h) {
    double v = heads[h][0];
    for (size_t j = 0; j < features.size(); ++j) {
      v += heads[h][j + 1] * features[j];
    }
    out[h] = v + offset;
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ LagLinear

std::vector<double> LagLinearForecaster::EncodeWindow(
    const std::vector<double>& window, double* offset) const {
  *offset = 0.0;
  return window;
}

Status LagLinearForecaster::Fit(const std::vector<double>& train,
                                const FitContext& ctx) {
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = lookback_cfg_ != 0
                        ? lookback_cfg_
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd,
                            MakeWindows(train, lookback, horizon));
  auto encode = [this](const std::vector<double>& w, double* off) {
    return EncodeWindow(w, off);
  };
  auto heads =
      FitHeads(wd.inputs, wd.targets, horizon, l2_, encode, ctx.deadline);
  if (!heads.ok()) {
    fitted_ = false;
    return heads.status();
  }
  weights_ = std::move(heads).ValueOrDie();
  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> LagLinearForecaster::PredictWindow(
    const std::vector<double>& window) const {
  double offset = 0.0;
  std::vector<double> f = EncodeWindow(window, &offset);
  return ApplyHeads(weights_, f, offset);
}

Result<std::vector<double>> LagLinearForecaster::Forecast(
    size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> LagLinearForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

// ------------------------------------------------------------ NLinear

std::vector<double> NLinearForecaster::EncodeWindow(
    const std::vector<double>& window, double* offset) const {
  *offset = window.empty() ? 0.0 : window.back();
  std::vector<double> out(window.size());
  for (size_t i = 0; i < window.size(); ++i) out[i] = window[i] - *offset;
  return out;
}

// ------------------------------------------------------------ DLinear

Status DLinearForecaster::Fit(const std::vector<double>& train,
                              const FitContext& ctx) {
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = lookback_cfg_ != 0
                        ? lookback_cfg_
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  ma_window_ = ma_window_cfg_ != 0
                   ? ma_window_cfg_
                   : std::max<size_t>(3, (ctx.period_hint != 0
                                              ? ctx.period_hint
                                              : lookback / 4) |
                                             1);
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd,
                            MakeWindows(train, lookback, horizon));

  auto encode_trend = [this](const std::vector<double>& w, double* off) {
    *off = 0.0;
    return MovingAverage(w, ma_window_);
  };
  auto encode_season = [this](const std::vector<double>& w, double* off) {
    *off = 0.0;
    std::vector<double> trend = MovingAverage(w, ma_window_);
    std::vector<double> out(w.size());
    for (size_t i = 0; i < w.size(); ++i) out[i] = w[i] - trend[i];
    return out;
  };

  // Split the target across heads: the trend head learns to predict the
  // target from the trend component, the season head from the remainder;
  // their sum reconstructs the forecast. We fit both against halved targets
  // jointly through the standard DLinear trick: fit each head against the
  // full target and average. Simpler and equally effective at this scale:
  // fit trend head on targets, season head on residuals of the trend head.
  auto trend_heads =
      FitHeads(wd.inputs, wd.targets, horizon, l2_, encode_trend,
               ctx.deadline);
  if (!trend_heads.ok()) {
    fitted_ = false;
    return trend_heads.status();
  }
  trend_weights_ = std::move(trend_heads).ValueOrDie();

  // Residual targets for the season head.
  DeadlineChecker checker(ctx.deadline, 64);
  std::vector<std::vector<double>> residuals(wd.inputs.size());
  for (size_t r = 0; r < wd.inputs.size(); ++r) {
    if (checker.Expired()) {
      trend_weights_.clear();
      fitted_ = false;
      return Status::DeadlineExceeded("dlinear fit aborted mid-residuals");
    }
    double off = 0.0;
    std::vector<double> f = encode_trend(wd.inputs[r], &off);
    std::vector<double> pred = ApplyHeads(trend_weights_, f, off);
    residuals[r].resize(horizon);
    for (size_t h = 0; h < horizon; ++h) {
      residuals[r][h] = wd.targets[r][h] - pred[h];
    }
  }
  auto season_heads =
      FitHeads(wd.inputs, residuals, horizon, l2_, encode_season,
               ctx.deadline);
  if (!season_heads.ok()) {
    trend_weights_.clear();
    fitted_ = false;
    return season_heads.status();
  }
  season_weights_ = std::move(season_heads).ValueOrDie();

  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> DLinearForecaster::PredictWindow(
    const std::vector<double>& window) const {
  std::vector<double> trend = MovingAverage(window, ma_window_);
  std::vector<double> season(window.size());
  for (size_t i = 0; i < window.size(); ++i) season[i] = window[i] - trend[i];
  std::vector<double> out = ApplyHeads(trend_weights_, trend, 0.0);
  std::vector<double> s = ApplyHeads(season_weights_, season, 0.0);
  for (size_t h = 0; h < out.size(); ++h) out[h] += s[h];
  return out;
}

Result<std::vector<double>> DLinearForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> DLinearForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

}  // namespace easytime::methods
