#pragma once

/// \file arima.h
/// \brief Autoregressive models: AR(p) via OLS (with AIC order selection)
/// and ARIMA(p,d,q) estimated by conditional sum of squares (CSS) with
/// Nelder–Mead over (constant, phi, theta).

#include "methods/forecaster.h"

namespace easytime::methods {

/// AR(p) fitted by ordinary least squares on lagged values.
class ArForecaster : public Forecaster {
 public:
  /// \param order 0 = select order in {1..max_order} by AIC
  explicit ArForecaster(size_t order = 0, size_t max_order = 8)
      : order_cfg_(order), max_order_(max_order) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "ar"; }
  Family family() const override { return Family::kStatistical; }

  size_t order() const { return order_; }
  const std::vector<double>& coefficients() const { return phi_; }

 private:
  size_t order_cfg_;
  size_t max_order_;
  size_t order_ = 0;
  double intercept_ = 0.0;
  std::vector<double> phi_;
  std::vector<double> tail_;  ///< last `order_` training values
  bool fitted_ = false;
};

/// ARIMA(p,d,q) via CSS.
class ArimaForecaster : public Forecaster {
 public:
  ArimaForecaster(size_t p = 2, size_t d = 1, size_t q = 1)
      : p_(p), d_(d), q_(q) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "arima"; }
  Family family() const override { return Family::kStatistical; }

  size_t p() const { return p_; }
  size_t d() const { return d_; }
  size_t q() const { return q_; }

 private:
  /// CSS objective on the differenced series; optionally records residuals.
  double Css(const std::vector<double>& w, const std::vector<double>& params,
             std::vector<double>* residuals) const;

  size_t p_, d_, q_;
  double intercept_ = 0.0;
  std::vector<double> phi_, theta_;
  std::vector<double> diffed_tail_;   ///< last p_ differenced values
  std::vector<double> resid_tail_;    ///< last q_ residuals
  std::vector<double> integrate_tail_;  ///< last values per differencing level
  bool fitted_ = false;
};

}  // namespace easytime::methods
