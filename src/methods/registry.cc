#include "methods/registry.h"

#include <mutex>

#include "methods/arima.h"
#include "methods/baselines.h"
#include "methods/deep.h"
#include "methods/ets.h"
#include "methods/exponential.h"
#include "methods/gbdt.h"
#include "methods/knn.h"
#include "methods/linear_models.h"
#include "methods/theta.h"

namespace easytime::methods {

MethodRegistry& MethodRegistry::Global() {
  static MethodRegistry* registry = []() {
    auto* r = new MethodRegistry();
    RegisterBuiltinMethods(r);
    return r;
  }();
  return *registry;
}

easytime::Status MethodRegistry::Register(MethodInfo info,
                                          MethodFactory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("method name must be non-empty");
  }
  if (entries_.count(info.name)) {
    return Status::AlreadyExists("method already registered: " + info.name);
  }
  std::string name = info.name;
  order_.push_back(name);
  entries_.emplace(std::move(name),
                   Entry{std::move(info), std::move(factory)});
  return Status::OK();
}

namespace {

/// "unknown method: x; registered methods: a, b, c" — enumerating the
/// candidates makes the SQL/QA surfaces self-documenting on typos.
std::string UnknownMethodMessage(const std::string& name,
                                 const std::vector<std::string>& names) {
  std::string msg = "unknown method: " + name + "; registered methods: ";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) msg += ", ";
    msg += names[i];
  }
  return msg;
}

}  // namespace

easytime::Result<ForecasterPtr> MethodRegistry::Create(
    const std::string& name, const easytime::Json& config) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(UnknownMethodMessage(name, order_));
  }
  return it->second.factory(config);
}

bool MethodRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

easytime::Result<MethodInfo> MethodRegistry::Info(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(UnknownMethodMessage(name, order_));
  }
  return it->second.info;
}

std::vector<std::string> MethodRegistry::Names() const { return order_; }

std::vector<std::string> MethodRegistry::NamesByFamily(Family family) const {
  std::vector<std::string> out;
  for (const auto& name : order_) {
    if (entries_.at(name).info.family == family) out.push_back(name);
  }
  return out;
}

namespace {

template <typename T, typename... Args>
MethodFactory SimpleFactory(Args... args) {
  return [args...](const easytime::Json&) -> easytime::Result<ForecasterPtr> {
    return ForecasterPtr(new T(args...));
  };
}

DeepOptions DeepOptionsFromJson(const easytime::Json& cfg) {
  DeepOptions o;
  o.hidden = static_cast<size_t>(cfg.GetInt("hidden", static_cast<int64_t>(o.hidden)));
  o.epochs = static_cast<size_t>(cfg.GetInt("epochs", static_cast<int64_t>(o.epochs)));
  o.learning_rate = cfg.GetDouble("learning_rate", o.learning_rate);
  o.lookback = static_cast<size_t>(cfg.GetInt("lookback", 0));
  return o;
}

}  // namespace

void RegisterBuiltinMethods(MethodRegistry* registry) {
  auto reg = [registry](const std::string& name, Family family,
                        const std::string& desc, MethodFactory factory) {
    (void)registry->Register(MethodInfo{name, family, desc},
                             std::move(factory));
  };

  // -- statistical ---------------------------------------------------------
  reg("naive", Family::kStatistical, "repeat the last observed value",
      SimpleFactory<NaiveForecaster>());
  reg("seasonal_naive", Family::kStatistical, "repeat the last seasonal cycle",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new SeasonalNaiveForecaster(
            static_cast<size_t>(cfg.GetInt("period", 0))));
      });
  reg("drift", Family::kStatistical, "first-to-last line extrapolation",
      SimpleFactory<DriftForecaster>());
  reg("mean", Family::kStatistical, "historical mean",
      SimpleFactory<MeanForecaster>());
  reg("window_average", Family::kStatistical, "trailing-window mean",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new WindowAverageForecaster(
            static_cast<size_t>(cfg.GetInt("window", 16))));
      });
  reg("ses", Family::kStatistical, "simple exponential smoothing",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(
            new SesForecaster(cfg.GetDouble("alpha", -1.0)));
      });
  reg("holt", Family::kStatistical, "Holt linear trend smoothing",
      SimpleFactory<HoltForecaster>(false));
  reg("holt_damped", Family::kStatistical, "damped-trend Holt smoothing",
      SimpleFactory<HoltForecaster>(true));
  reg("holt_winters_add", Family::kStatistical,
      "additive Holt-Winters seasonal smoothing",
      SimpleFactory<HoltWintersForecaster>(
          HoltWintersForecaster::Seasonal::kAdditive, size_t{0}));
  reg("holt_winters_mul", Family::kStatistical,
      "multiplicative Holt-Winters seasonal smoothing",
      SimpleFactory<HoltWintersForecaster>(
          HoltWintersForecaster::Seasonal::kMultiplicative, size_t{0}));
  reg("theta", Family::kStatistical, "the Theta method",
      SimpleFactory<ThetaForecaster>());
  reg("ar", Family::kStatistical, "autoregression with AIC order selection",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new ArForecaster(
            static_cast<size_t>(cfg.GetInt("order", 0)),
            static_cast<size_t>(cfg.GetInt("max_order", 8))));
      });
  reg("arima", Family::kStatistical, "ARIMA(p,d,q) via CSS",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new ArimaForecaster(
            static_cast<size_t>(cfg.GetInt("p", 2)),
            static_cast<size_t>(cfg.GetInt("d", 1)),
            static_cast<size_t>(cfg.GetInt("q", 1))));
      });
  reg("ets_auto", Family::kStatistical,
      "automatic exponential-smoothing model selection (AICc)",
      SimpleFactory<EtsAutoForecaster>());

  // -- machine learning ----------------------------------------------------
  reg("lag_linear", Family::kMachineLearning,
      "ridge regression on lag windows (direct multi-step)",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new LagLinearForecaster(
            cfg.GetDouble("l2", 1.0),
            static_cast<size_t>(cfg.GetInt("lookback", 0))));
      });
  reg("nlinear", Family::kMachineLearning,
      "last-value-normalized linear (NLinear)",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new NLinearForecaster(
            cfg.GetDouble("l2", 1.0),
            static_cast<size_t>(cfg.GetInt("lookback", 0))));
      });
  reg("dlinear", Family::kMachineLearning,
      "decomposition linear (DLinear): trend + remainder heads",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new DLinearForecaster(
            cfg.GetDouble("l2", 1.0),
            static_cast<size_t>(cfg.GetInt("lookback", 0)),
            static_cast<size_t>(cfg.GetInt("ma_window", 0))));
      });
  reg("knn", Family::kMachineLearning,
      "k-nearest-neighbour window matching",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new KnnForecaster(
            static_cast<size_t>(cfg.GetInt("k", 5)),
            static_cast<size_t>(cfg.GetInt("lookback", 0))));
      });
  reg("gbdt", Family::kMachineLearning,
      "gradient-boosted regression trees on lag features",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        GbdtForecaster::Options o;
        o.num_trees = static_cast<size_t>(cfg.GetInt("num_trees", 60));
        o.learning_rate = cfg.GetDouble("learning_rate", 0.15);
        o.max_depth = static_cast<size_t>(cfg.GetInt("max_depth", 3));
        o.lookback = static_cast<size_t>(cfg.GetInt("lookback", 0));
        return ForecasterPtr(new GbdtForecaster(o));
      });

  // -- deep learning -------------------------------------------------------
  reg("mlp", Family::kDeepLearning, "window MLP (direct multi-step)",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new MlpForecaster(DeepOptionsFromJson(cfg)));
      });
  reg("gru", Family::kDeepLearning, "GRU encoder + linear head",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new GruForecaster(DeepOptionsFromJson(cfg)));
      });
  reg("tcn", Family::kDeepLearning,
      "dilated causal convolution stack (TCN)",
      [](const easytime::Json& cfg) -> easytime::Result<ForecasterPtr> {
        return ForecasterPtr(new TcnForecaster(DeepOptionsFromJson(cfg)));
      });
}

}  // namespace easytime::methods
