#pragma once

/// \file baselines.h
/// \brief The classical baseline forecasters every benchmark needs: naive,
/// seasonal naive, drift, historical mean, and window average.

#include "methods/forecaster.h"

namespace easytime::methods {

/// Repeats the last observed value.
class NaiveForecaster : public Forecaster {
 public:
  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  /// Analytic random-walk intervals: sigma_h = sigma1 * sqrt(h).
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return "naive"; }
  Family family() const override { return Family::kStatistical; }

 private:
  double last_ = 0.0;
  bool fitted_ = false;
};

/// Repeats the last full seasonal cycle (falls back to naive when no period).
class SeasonalNaiveForecaster : public Forecaster {
 public:
  /// \param period 0 = use the period from FitContext
  explicit SeasonalNaiveForecaster(size_t period = 0) : period_cfg_(period) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  /// Analytic intervals: sigma_h = sigma1 * sqrt(floor((h-1)/m) + 1), the
  /// number of whole seasonal cycles the step-h forecast reaches back over.
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return "seasonal_naive"; }
  Family family() const override { return Family::kStatistical; }

 private:
  size_t period_cfg_;
  size_t period_ = 0;
  std::vector<double> last_cycle_;
  bool fitted_ = false;
};

/// Extrapolates the line through the first and last observation.
class DriftForecaster : public Forecaster {
 public:
  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "drift"; }
  Family family() const override { return Family::kStatistical; }

 private:
  double last_ = 0.0;
  double slope_ = 0.0;
  bool fitted_ = false;
};

/// Forecasts the historical mean.
class MeanForecaster : public Forecaster {
 public:
  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "mean"; }
  Family family() const override { return Family::kStatistical; }

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

/// Forecasts the mean of the trailing window.
class WindowAverageForecaster : public Forecaster {
 public:
  explicit WindowAverageForecaster(size_t window = 16) : window_(window) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "window_average"; }
  Family family() const override { return Family::kStatistical; }

 private:
  size_t window_;
  double mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace easytime::methods
