#include "methods/forecaster.h"

namespace easytime::methods {

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kStatistical: return "statistical";
    case Family::kMachineLearning: return "ml";
    case Family::kDeepLearning: return "deep";
  }
  return "unknown";
}

easytime::Result<std::vector<double>> Forecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  // Default: refit on the extended history. Statistical methods are cheap
  // enough for this to be the right behaviour under rolling evaluation.
  FitContext ctx;
  ctx.horizon = horizon;
  EASYTIME_RETURN_IF_ERROR(Fit(history, ctx));
  return Forecast(horizon);
}

}  // namespace easytime::methods
