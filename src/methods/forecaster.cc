#include "methods/forecaster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/math_util.h"

namespace easytime::methods {

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kStatistical: return "statistical";
    case Family::kMachineLearning: return "ml";
    case Family::kDeepLearning: return "deep";
  }
  return "unknown";
}

easytime::Result<std::vector<double>> Forecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  EASYTIME_FAULT_POINT("method.forecast");
  // Default: refit on the extended history. Statistical methods are cheap
  // enough for this to be the right behaviour under rolling evaluation.
  FitContext ctx;
  ctx.horizon = horizon;
  EASYTIME_RETURN_IF_ERROR(Fit(history, ctx));
  auto res = Forecast(horizon);
  if (res.ok() && FaultRegistry::AnyArmed()) {
    // A "nan" fault models a numerically diverged model: the payload comes
    // back poisoned instead of the call failing, exercising downstream NaN
    // handling (metrics, JSON encoding).
    bool corrupt = false;
    Status fs =
        FaultRegistry::Global().Check("method.forecast.payload", &corrupt);
    if (!fs.ok()) return fs;
    if (corrupt && !res->empty()) {
      (*res)[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return res;
}

easytime::Status ValidateIntervalRequest(const std::vector<double>& train,
                                         const FitContext& ctx,
                                         double confidence) {
  if (train.empty()) {
    return Status::InvalidArgument("interval forecast needs training data");
  }
  if (ctx.horizon == 0) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must lie in (0, 1)");
  }
  return Status::OK();
}

IntervalForecast MakeNormalIntervals(std::vector<double> point,
                                     const std::vector<double>& sigma_h,
                                     double confidence) {
  const double z = NormalQuantile(0.5 * (1.0 + confidence));
  IntervalForecast out;
  out.lower.resize(point.size());
  out.upper.resize(point.size());
  for (size_t h = 0; h < point.size(); ++h) {
    double sigma = h < sigma_h.size() ? sigma_h[h] : 0.0;
    if (!std::isfinite(sigma) || sigma < 0.0) sigma = 0.0;
    double half = z * sigma;
    out.lower[h] = point[h] - half;
    out.upper[h] = point[h] + half;
  }
  out.point = std::move(point);
  return out;
}

easytime::Result<IntervalForecast> Forecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  const size_t n = train.size();

  // One-step residual sigma from rolling in-sample origins. This runs
  // before the final Fit because ForecastFrom refits statistical models on
  // each prefix, which would otherwise clobber the state Forecast reads.
  std::vector<double> residuals;
  const size_t kMinPrefix = 8;
  const size_t kMaxOrigins = 24;
  if (n > kMinPrefix) {
    size_t origins = std::min(kMaxOrigins, n - kMinPrefix);
    residuals.reserve(origins);
    for (size_t t = n - origins; t < n; ++t) {
      // Each origin refits on a prefix; check between origins so a slow
      // method cannot burn the whole deadline estimating sigma.
      if (ctx.deadline.expired()) {
        return Status::DeadlineExceeded(
            "interval forecast aborted mid-origins");
      }
      std::vector<double> prefix(train.begin(),
                                 train.begin() + static_cast<ptrdiff_t>(t));
      auto one = ForecastFrom(prefix, 1);
      if (!one.ok() || one->empty() || !std::isfinite((*one)[0])) {
        residuals.clear();
        break;
      }
      residuals.push_back(train[t] - (*one)[0]);
    }
  }
  if (residuals.empty()) {
    // Too short or the method cannot forecast from prefixes: fall back to
    // first differences (the random-walk residual).
    for (size_t t = 1; t < n; ++t) residuals.push_back(train[t] - train[t - 1]);
  }
  double ss = 0.0;
  for (double r : residuals) ss += r * r;
  double sigma1 = residuals.empty()
                      ? 0.0
                      : std::sqrt(ss / static_cast<double>(residuals.size()));
  if (!std::isfinite(sigma1)) sigma1 = 0.0;

  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> point, Forecast(ctx.horizon));
  std::vector<double> sigma_h(point.size());
  for (size_t h = 0; h < point.size(); ++h) {
    sigma_h[h] = sigma1 * std::sqrt(static_cast<double>(h + 1));
  }
  return MakeNormalIntervals(std::move(point), sigma_h, confidence);
}

}  // namespace easytime::methods
