#include "methods/forecaster.h"

#include <limits>

#include "common/fault.h"

namespace easytime::methods {

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kStatistical: return "statistical";
    case Family::kMachineLearning: return "ml";
    case Family::kDeepLearning: return "deep";
  }
  return "unknown";
}

easytime::Result<std::vector<double>> Forecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  EASYTIME_FAULT_POINT("method.forecast");
  // Default: refit on the extended history. Statistical methods are cheap
  // enough for this to be the right behaviour under rolling evaluation.
  FitContext ctx;
  ctx.horizon = horizon;
  EASYTIME_RETURN_IF_ERROR(Fit(history, ctx));
  auto res = Forecast(horizon);
  if (res.ok() && FaultRegistry::AnyArmed()) {
    // A "nan" fault models a numerically diverged model: the payload comes
    // back poisoned instead of the call failing, exercising downstream NaN
    // handling (metrics, JSON encoding).
    bool corrupt = false;
    Status fs =
        FaultRegistry::Global().Check("method.forecast.payload", &corrupt);
    if (!fs.ok()) return fs;
    if (corrupt && !res->empty()) {
      (*res)[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return res;
}

}  // namespace easytime::methods
