#pragma once

/// \file registry.h
/// \brief Method factory registry — the "users can easily integrate their
/// own forecasting methods" mechanism. A method is registered once with a
/// name, family, and a factory taking a Json config; the pipeline then
/// instantiates it by name from the configuration file.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "methods/forecaster.h"

namespace easytime::methods {

/// Factory signature: builds a fresh forecaster from a JSON config object.
using MethodFactory =
    std::function<easytime::Result<ForecasterPtr>(const easytime::Json&)>;

/// Metadata describing a registered method.
struct MethodInfo {
  std::string name;
  Family family = Family::kStatistical;
  std::string description;
};

/// \brief Registry of forecasting methods.
class MethodRegistry {
 public:
  /// The process-wide registry, with all built-in methods pre-registered.
  static MethodRegistry& Global();

  /// Registers a method; fails if the name is taken.
  easytime::Status Register(MethodInfo info, MethodFactory factory);

  /// Instantiates a registered method with \p config.
  easytime::Result<ForecasterPtr> Create(
      const std::string& name,
      const easytime::Json& config = easytime::Json::Object()) const;

  /// True if \p name is registered.
  bool Contains(const std::string& name) const;

  /// Metadata for one method.
  easytime::Result<MethodInfo> Info(const std::string& name) const;

  /// All registered method names, in registration order.
  std::vector<std::string> Names() const;

  /// Names filtered by family.
  std::vector<std::string> NamesByFamily(Family family) const;

 private:
  MethodRegistry() = default;

  struct Entry {
    MethodInfo info;
    MethodFactory factory;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

/// Registers every built-in method into \p registry (idempotent on the
/// global registry; exposed for isolated-registry testing).
void RegisterBuiltinMethods(MethodRegistry* registry);

}  // namespace easytime::methods
