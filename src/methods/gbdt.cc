#include "methods/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"

namespace easytime::methods {

void RegressionTree::Fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y,
                         const Options& options) {
  nodes_.clear();
  std::vector<size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  Build(x, y, idx, 0, options);
}

int RegressionTree::Build(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y,
                          std::vector<size_t>& idx, size_t depth,
                          const Options& options) {
  Node node;
  double sum = 0.0;
  for (size_t i : idx) sum += y[i];
  double mean = idx.empty() ? 0.0 : sum / static_cast<double>(idx.size());
  node.value = mean;

  bool make_leaf = depth >= options.max_depth ||
                   idx.size() < 2 * options.min_samples_leaf ||
                   (options.cancel && options.cancel->Expired());
  if (!make_leaf) {
    // Greedy best split by SSE reduction.
    size_t num_features = x.empty() ? 0 : x[0].size();
    double base_sse = 0.0;
    for (size_t i : idx) base_sse += (y[i] - mean) * (y[i] - mean);

    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;
    for (size_t f = 0; f < num_features; ++f) {
      // One per-feature pass sorts all rows at this node — milliseconds on
      // long series, so the cancel check sits between features too.
      if (options.cancel && options.cancel->Expired()) break;
      std::vector<size_t> order = idx;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return x[a][f] < x[b][f];
      });
      // Prefix sums over the sorted order.
      double left_sum = 0.0, left_sq = 0.0;
      double total_sq = 0.0;
      for (size_t i : idx) total_sq += y[i] * y[i];
      for (size_t pos = 0; pos + 1 < order.size(); ++pos) {
        double yi = y[order[pos]];
        left_sum += yi;
        left_sq += yi * yi;
        // Can't split between equal feature values.
        if (x[order[pos]][f] == x[order[pos + 1]][f]) continue;
        size_t nl = pos + 1;
        size_t nr = order.size() - nl;
        if (nl < options.min_samples_leaf || nr < options.min_samples_leaf) {
          continue;
        }
        double right_sum = sum - left_sum;
        double right_sq = total_sq - left_sq;
        double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
        double sse_r =
            right_sq - right_sum * right_sum / static_cast<double>(nr);
        double gain = base_sse - sse_l - sse_r;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold =
              0.5 * (x[order[pos]][f] + x[order[pos + 1]][f]);
        }
      }
    }
    if (best_feature >= 0) {
      std::vector<size_t> left, right;
      for (size_t i : idx) {
        if (x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
          left.push_back(i);
        } else {
          right.push_back(i);
        }
      }
      if (!left.empty() && !right.empty()) {
        node.feature = best_feature;
        node.threshold = best_threshold;
        int self = static_cast<int>(nodes_.size());
        nodes_.push_back(node);
        int l = Build(x, y, left, depth + 1, options);
        int r = Build(x, y, right, depth + 1, options);
        nodes_[static_cast<size_t>(self)].left = l;
        nodes_[static_cast<size_t>(self)].right = r;
        return self;
      }
    }
  }
  int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  return self;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0.0;
  size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    size_t f = static_cast<size_t>(nodes_[cur].feature);
    double v = f < features.size() ? features[f] : 0.0;
    int next = v <= nodes_[cur].threshold ? nodes_[cur].left
                                          : nodes_[cur].right;
    if (next < 0) break;
    cur = static_cast<size_t>(next);
  }
  return nodes_[cur].value;
}

Status GbdtForecaster::Fit(const std::vector<double>& train,
                           const FitContext& ctx) {
  size_t lookback =
      options_.lookback != 0
          ? options_.lookback
          : std::min<size_t>(ChooseLookback(train.size(), ctx.period_hint, 1),
                             24);
  // One-step-ahead supervision.
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd, MakeWindows(train, lookback, 1));

  std::vector<double> y(wd.targets.size());
  for (size_t i = 0; i < y.size(); ++i) y[i] = wd.targets[i][0];
  base_prediction_ = Mean(y);

  std::vector<double> residual(y.size());
  std::vector<double> current(y.size(), base_prediction_);
  trees_.clear();
  trees_.reserve(options_.num_trees);
  RegressionTree::Options topt;
  topt.max_depth = options_.max_depth;
  topt.min_samples_leaf = options_.min_samples_leaf;
  // Split searches sort every node's rows per feature — milliseconds apiece
  // on long series — so the checker uses a small stride and is shared with
  // Build so an expired deadline also cuts the current tree short.
  DeadlineChecker deadline(ctx.deadline, 4);
  topt.cancel = &deadline;

  for (size_t m = 0; m < options_.num_trees; ++m) {
    if (deadline.Expired()) {
      trees_.clear();
      fitted_ = false;
      return Status::DeadlineExceeded("gbdt fit aborted mid-boosting");
    }
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - current[i];
    RegressionTree tree;
    tree.Fit(wd.inputs, residual, topt);
    for (size_t i = 0; i < y.size(); ++i) {
      current[i] += options_.learning_rate * tree.Predict(wd.inputs[i]);
    }
    trees_.push_back(std::move(tree));
  }
  lookback_ = lookback;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

double GbdtForecaster::PredictOne(const std::vector<double>& features) const {
  double out = base_prediction_;
  for (const auto& tree : trees_) {
    out += options_.learning_rate * tree.Predict(features);
  }
  return out;
}

Result<std::vector<double>> GbdtForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, 1, horizon,
      [this](const std::vector<double>& w) {
        return std::vector<double>{PredictOne(w)};
      });
}

Result<std::vector<double>> GbdtForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, 1, horizon,
      [this](const std::vector<double>& w) {
        return std::vector<double>{PredictOne(w)};
      });
}

}  // namespace easytime::methods
