#include "methods/deep.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "nn/loss.h"

namespace easytime::methods {

namespace {

/// Subsamples window indices deterministically when there are too many.
std::vector<size_t> SelectWindows(size_t total, size_t max_windows,
                                  Rng* rng) {
  std::vector<size_t> idx(total);
  for (size_t i = 0; i < total; ++i) idx[i] = i;
  if (total > max_windows) {
    rng->Shuffle(&idx);
    idx.resize(max_windows);
    std::sort(idx.begin(), idx.end());
  }
  return idx;
}

/// Normalizes a window by its last value (NLinear-style) for stable deep
/// training across levels; returns the offset to add back to outputs.
/// Writes into \p out so per-window loops reuse one buffer.
void NormalizeWindowInto(const std::vector<double>& w, double* offset,
                         std::vector<double>* out) {
  *offset = w.empty() ? 0.0 : w.back();
  out->resize(w.size());
  for (size_t i = 0; i < w.size(); ++i) (*out)[i] = w[i] - *offset;
}

std::vector<double> NormalizeWindow(const std::vector<double>& w,
                                    double* offset) {
  std::vector<double> out;
  NormalizeWindowInto(w, offset, &out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------- MLP

Status MlpForecaster::Fit(const std::vector<double>& train,
                          const FitContext& ctx) {
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = options_.lookback != 0
                        ? options_.lookback
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd,
                            MakeWindows(train, lookback, horizon));
  Rng rng(ctx.seed);

  net_ = std::make_unique<nn::Sequential>();
  net_->Add(std::make_unique<nn::Linear>(lookback, options_.hidden, &rng));
  net_->Add(std::make_unique<nn::ReLU>());
  net_->Add(std::make_unique<nn::Linear>(options_.hidden, options_.hidden,
                                         &rng));
  net_->Add(std::make_unique<nn::ReLU>());
  net_->Add(std::make_unique<nn::Linear>(options_.hidden, horizon, &rng));

  std::vector<size_t> idx =
      SelectWindows(wd.inputs.size(), options_.max_windows, &rng);

  // Batch matrices (all selected windows at once — the MLP is batch-capable).
  nn::Matrix x(idx.size(), lookback), y(idx.size(), horizon);
  std::vector<double> wnorm;
  for (size_t r = 0; r < idx.size(); ++r) {
    double off = 0.0;
    NormalizeWindowInto(wd.inputs[idx[r]], &off, &wnorm);
    for (size_t c = 0; c < lookback; ++c) x.at(r, c) = wnorm[c];
    for (size_t c = 0; c < horizon; ++c) {
      y.at(r, c) = wd.targets[idx[r]][c] - off;
    }
  }

  nn::Adam opt(net_->Params(), options_.learning_rate);
  nn::Matrix pred, grad, grad_in;
  // One full-batch epoch easily exceeds a millisecond, so check every epoch.
  DeadlineChecker deadline(ctx.deadline, 1);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    if (deadline.Expired()) {
      net_.reset();
      fitted_ = false;
      return Status::DeadlineExceeded("mlp fit aborted mid-training");
    }
    net_->ForwardInto(x, &pred);
    nn::MseLossInto(pred, y, &grad);
    net_->BackwardInto(grad, &grad_in);
    opt.ClipGradNorm(options_.grad_clip);
    opt.Step();
    opt.ZeroGrad();
  }

  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> MlpForecaster::PredictWindow(
    const std::vector<double>& window) const {
  double off = 0.0;
  std::vector<double> wnorm = NormalizeWindow(window, &off);
  nn::Matrix x = nn::Matrix::FromVector(wnorm);
  nn::Matrix pred;
  net_->ForwardConst(x, &pred);
  std::vector<double> out = pred.Row(0);
  for (auto& v : out) v += off;
  return out;
}

Result<std::vector<double>> MlpForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> MlpForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

// ---------------------------------------------------------------- GRU

Status GruForecaster::Fit(const std::vector<double>& train,
                          const FitContext& ctx) {
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = options_.lookback != 0
                        ? options_.lookback
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  lookback = std::min<size_t>(lookback, 64);  // bound BPTT length
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd,
                            MakeWindows(train, lookback, horizon));
  Rng rng(ctx.seed);

  gru_ = std::make_unique<nn::Gru>(1, options_.hidden, &rng);
  head_ = std::make_unique<nn::Linear>(options_.hidden, horizon, &rng);

  std::vector<size_t> idx = SelectWindows(
      wd.inputs.size(), std::min<size_t>(options_.max_windows, 96), &rng);

  std::vector<nn::Param*> params = gru_->Params();
  auto hp = head_->Params();
  params.insert(params.end(), hp.begin(), hp.end());
  nn::Adam opt(params, options_.learning_rate);

  // Per-window buffers, reused across the whole training run.
  std::vector<double> wnorm;
  nn::Matrix seq, hidden, last(1, options_.hidden), pred, target(1, horizon);
  nn::Matrix grad, dlast, dhidden, dseq;

  // A GRU window (BPTT over <=64 steps) runs tens of microseconds; a stride
  // of 8 keeps the check rate around one clock read per ~1ms of training.
  DeadlineChecker deadline(ctx.deadline, 8);
  size_t epochs = std::max<size_t>(8, options_.epochs / 2);
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t r : idx) {
      if (deadline.Expired()) {
        gru_.reset();
        head_.reset();
        fitted_ = false;
        return Status::DeadlineExceeded("gru fit aborted mid-training");
      }
      double off = 0.0;
      NormalizeWindowInto(wd.inputs[r], &off, &wnorm);
      seq.Resize(lookback, 1);
      for (size_t t = 0; t < lookback; ++t) seq.at(t, 0) = wnorm[t];

      gru_->ForwardInto(seq, &hidden);                 // (T x H)
      for (size_t j = 0; j < options_.hidden; ++j) {
        last.at(0, j) = hidden.at(lookback - 1, j);
      }
      head_->ForwardInto(last, &pred);                 // (1 x horizon)
      for (size_t c = 0; c < horizon; ++c) {
        target.at(0, c) = wd.targets[r][c] - off;
      }
      nn::MseLossInto(pred, target, &grad);
      head_->BackwardInto(grad, &dlast);
      dhidden.Resize(lookback, options_.hidden);
      dhidden.Fill(0.0);
      for (size_t j = 0; j < options_.hidden; ++j) {
        dhidden.at(lookback - 1, j) = dlast.at(0, j);
      }
      gru_->BackwardInto(dhidden, &dseq);
      opt.ClipGradNorm(options_.grad_clip);
      opt.Step();
      opt.ZeroGrad();
    }
  }

  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> GruForecaster::PredictWindow(
    const std::vector<double>& window) const {
  double off = 0.0;
  std::vector<double> wnorm = NormalizeWindow(window, &off);
  nn::Matrix seq(wnorm.size(), 1);
  for (size_t t = 0; t < wnorm.size(); ++t) seq.at(t, 0) = wnorm[t];
  nn::Matrix hidden;
  gru_->ForwardConst(seq, &hidden);
  nn::Matrix last(1, gru_->hidden_size());
  for (size_t j = 0; j < gru_->hidden_size(); ++j) {
    last.at(0, j) = hidden.at(hidden.rows() - 1, j);
  }
  nn::Matrix pred;
  head_->ForwardConst(last, &pred);
  std::vector<double> out = pred.Row(0);
  for (auto& v : out) v += off;
  return out;
}

Result<std::vector<double>> GruForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> GruForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

// ---------------------------------------------------------------- TCN

Status TcnForecaster::Fit(const std::vector<double>& train,
                          const FitContext& ctx) {
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = options_.lookback != 0
                        ? options_.lookback
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  lookback = std::min<size_t>(lookback, 96);
  EASYTIME_ASSIGN_OR_RETURN(WindowedData wd,
                            MakeWindows(train, lookback, horizon));
  Rng rng(ctx.seed);

  size_t ch = std::max<size_t>(8, options_.hidden / 2);
  encoder_ = std::make_unique<nn::Sequential>();
  encoder_->Add(std::make_unique<nn::ResidualConvBlock>(1, ch, 3, 1, &rng));
  encoder_->Add(std::make_unique<nn::ResidualConvBlock>(ch, ch, 3, 2, &rng));
  encoder_->Add(std::make_unique<nn::ResidualConvBlock>(ch, ch, 3, 4, &rng));
  head_ = std::make_unique<nn::Linear>(ch, horizon, &rng);

  std::vector<size_t> idx = SelectWindows(
      wd.inputs.size(), std::min<size_t>(options_.max_windows, 96), &rng);

  std::vector<nn::Param*> params = encoder_->Params();
  auto hp = head_->Params();
  params.insert(params.end(), hp.begin(), hp.end());
  nn::Adam opt(params, options_.learning_rate);

  // Per-window buffers, reused across the whole training run.
  std::vector<double> wnorm;
  nn::Matrix seq, feats, last(1, ch), pred, target(1, horizon);
  nn::Matrix grad, dlast, dfeats, dseq;

  // Conv windows cost the same order as GRU windows; same stride.
  DeadlineChecker deadline(ctx.deadline, 8);
  size_t epochs = std::max<size_t>(8, options_.epochs / 2);
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t r : idx) {
      if (deadline.Expired()) {
        encoder_.reset();
        head_.reset();
        fitted_ = false;
        return Status::DeadlineExceeded("tcn fit aborted mid-training");
      }
      double off = 0.0;
      NormalizeWindowInto(wd.inputs[r], &off, &wnorm);
      seq.Resize(lookback, 1);
      for (size_t t = 0; t < lookback; ++t) seq.at(t, 0) = wnorm[t];

      encoder_->ForwardInto(seq, &feats);  // (T x ch)
      for (size_t j = 0; j < ch; ++j) last.at(0, j) = feats.at(lookback - 1, j);
      head_->ForwardInto(last, &pred);
      for (size_t c = 0; c < horizon; ++c) {
        target.at(0, c) = wd.targets[r][c] - off;
      }
      nn::MseLossInto(pred, target, &grad);
      head_->BackwardInto(grad, &dlast);
      dfeats.Resize(lookback, ch);
      dfeats.Fill(0.0);
      for (size_t j = 0; j < ch; ++j) {
        dfeats.at(lookback - 1, j) = dlast.at(0, j);
      }
      encoder_->BackwardInto(dfeats, &dseq);
      opt.ClipGradNorm(options_.grad_clip);
      opt.Step();
      opt.ZeroGrad();
    }
  }

  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> TcnForecaster::PredictWindow(
    const std::vector<double>& window) const {
  double off = 0.0;
  std::vector<double> wnorm = NormalizeWindow(window, &off);
  nn::Matrix seq(wnorm.size(), 1);
  for (size_t t = 0; t < wnorm.size(); ++t) seq.at(t, 0) = wnorm[t];
  nn::Matrix feats;
  encoder_->ForwardConst(seq, &feats);
  size_t ch = feats.cols();
  nn::Matrix last(1, ch);
  for (size_t j = 0; j < ch; ++j) {
    last.at(0, j) = feats.at(feats.rows() - 1, j);
  }
  nn::Matrix pred;
  head_->ForwardConst(last, &pred);
  std::vector<double> out = pred.Row(0);
  for (auto& v : out) v += off;
  return out;
}

Result<std::vector<double>> TcnForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> TcnForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

}  // namespace easytime::methods
