#include "methods/theta.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "tsdata/characteristics.h"

namespace easytime::methods {

Status ThetaForecaster::Fit(const std::vector<double>& train,
                            const FitContext& ctx) {
  if (train.size() < 4) {
    return Status::InvalidArgument("theta needs at least 4 observations");
  }
  if (ctx.deadline.expired()) {
    fitted_ = false;
    return Status::DeadlineExceeded("theta fit aborted at entry");
  }
  n_ = train.size();

  // Deseasonalize additively when a credible period is known and the
  // seasonality is strong enough (the standard Theta preprocessing).
  period_ = ctx.period_hint;
  std::vector<double> work = train;
  seasonal_profile_.clear();
  if (period_ >= 2 && train.size() >= 2 * period_ &&
      tsdata::SeasonalStrength(train, period_) > 0.4) {
    std::vector<double> phase_sum(period_, 0.0);
    std::vector<size_t> phase_cnt(period_, 0);
    std::vector<double> trend = MovingAverage(train, period_ | 1);
    for (size_t i = 0; i < train.size(); ++i) {
      phase_sum[i % period_] += train[i] - trend[i];
      ++phase_cnt[i % period_];
    }
    seasonal_profile_.resize(period_);
    double grand = 0.0;
    for (size_t p = 0; p < period_; ++p) {
      seasonal_profile_[p] =
          phase_sum[p] / static_cast<double>(std::max<size_t>(1, phase_cnt[p]));
      grand += seasonal_profile_[p];
    }
    grand /= static_cast<double>(period_);
    for (auto& s : seasonal_profile_) s -= grand;
    for (size_t i = 0; i < work.size(); ++i) {
      work[i] -= seasonal_profile_[i % period_];
    }
  } else {
    period_ = 0;
  }

  // Theta line 0: linear trend of the deseasonalized series.
  std::tie(intercept_, slope_) = LinearTrendFit(work);

  // Theta line 2: 2*y - trendline, forecast by SES.
  std::vector<double> theta2(work.size());
  for (size_t t = 0; t < work.size(); ++t) {
    double trend_t = intercept_ + slope_ * static_cast<double>(t);
    theta2[t] = 2.0 * work[t] - trend_t;
  }
  FitContext ses_ctx;
  ses_ctx.deadline = ctx.deadline;
  Status st = ses_.Fit(theta2, ses_ctx);
  if (!st.ok()) {
    fitted_ = false;
    return st;
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ThetaForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> ses_fc,
                            ses_.Forecast(horizon));
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    double trend_fc =
        intercept_ + slope_ * static_cast<double>(n_ + h);
    out[h] = 0.5 * (ses_fc[h] + trend_fc);
    if (period_ >= 2) {
      out[h] += seasonal_profile_[(n_ + h) % period_];
    }
  }
  return out;
}

Result<IntervalForecast> ThetaForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  // The forecast is 0.5 * (ses(theta2) + trend) + seasonal, and the trend
  // and additive seasonal terms are deterministic given the fit, so the
  // one-step error is half the SES error on the theta-2 line.
  double sigma1_sq =
      0.25 * ses_.sse() / static_cast<double>(std::max<size_t>(1, n_ - 1));
  const double alpha = ses_.alpha();
  std::vector<double> sigma_h(ctx.horizon);
  for (size_t h = 0; h < ctx.horizon; ++h) {
    double var = sigma1_sq * (1.0 + static_cast<double>(h) * alpha * alpha);
    sigma_h[h] = std::sqrt(std::max(var, 0.0));
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> point, Forecast(ctx.horizon));
  return MakeNormalIntervals(std::move(point), sigma_h, confidence);
}

}  // namespace easytime::methods
